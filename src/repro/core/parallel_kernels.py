"""Chunk-parallel label-propagation kernels (Liu--Tarjan / FastSV family).

The sparse engines so far are serial *inside* one solve: the pool
(:mod:`repro.serve.executor`) and the sharded engine parallelize across
requests and shards, but a single big graph still runs its scatter-min
hot loops on one core.  The concurrent-components literature the
contracting engine already cites (Liu & Tarjan's "Simple Concurrent
Labeling Algorithms for Connected Components"; Burkhardt's log-step
label propagation) decomposes exactly along the axis we need: each round
is an **edge-partitioned scatter** (every edge proposes a lower label
for a vertex, conflicts resolved by MIN) followed by a **vertex-
partitioned pointer jump** -- both embarrassingly parallel per round,
with one barrier between phases.

This module holds the *kernels* of that decomposition: pure NumPy
functions over preallocated arrays, free of any process machinery, so
the same code runs

* inline (the serial reference path and the 1-core fallback),
* on the pre-forked shm workers of
  :class:`~repro.serve.executor.PoolExecutor` (each worker attaches the
  shared slabs by name and calls these kernels on its chunk), and
* in tests, where Hypothesis drives them against the union-find oracle.

Parallel-correctness contract
-----------------------------
Each round of every variant is a **synchronous** MIN-combine: the hook
kernels read only the round-start label array ``f`` and write candidate
minima into a *private* per-worker slab (sentinel-initialised), and the
driver combines the slabs with elementwise minima afterwards.  MIN is
associative and commutative, so any chunking of the edges -- one chunk
or fifty -- produces bit-identical rounds.  The jump kernel writes only
its assigned ``[lo, hi)`` slice of the output slab (owner-write
discipline for partitioned slabs; lint rule SHM204), so concurrent jump
chunks never overlap.

Invariants (maintained by every kernel, relied on for termination and
canonical labels): ``f[x] <= x`` pointwise, and ``f[x]`` is always the
id of a vertex in ``x``'s true component.  At a fixpoint reached by a
*deterministic* full round (see :func:`hook_partial` on the stochastic
variant), both hold with ``f`` idempotent and edge-constant, which
forces ``f[x]`` = minimum id of ``x``'s component -- the same canonical
labelling every other engine emits.

Kernels are allocation-free modulo NumPy gather temporaries of chunk
size; the driver (:mod:`repro.hirschberg.parallel`) preallocates every
persistent array once at setup.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

#: The recognised update rules, in bench/report order.
VARIANTS = ("sv", "fastsv", "stochastic")

#: ``seed`` value that disables the stochastic coin filter (the hook
#: pass then proposes every edge's update, as the deterministic
#: variants do).  Convergence must always be confirmed by a
#: deterministic round -- a quiet stochastic round only proves the
#: coins said no.
DETERMINISTIC = -1

#: splitmix64 constants for the per-round vertex coins (cheap, stateless,
#: identical in every worker -- the coin for vertex ``i`` in round ``r``
#: must not depend on which chunk computes it).
_MIX_MULT = np.uint64(0x9E3779B97F4A7C15)
_MIX_A = np.uint64(0xBF58476D1CE4E5B9)
_MIX_B = np.uint64(0x94D049BB133111EB)


def chunk_bounds(total: int, chunks: int) -> np.ndarray:
    """``chunks + 1`` balanced offsets partitioning ``range(total)``.

    More chunks than items degrade gracefully to trailing empty chunks
    (``lo == hi``) -- the kernels treat those as no-ops, so a caller may
    always partition by worker count without sizing logic.
    """
    if chunks < 1:
        raise ValueError(f"chunks must be >= 1, got {chunks}")
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    return np.linspace(0, total, chunks + 1, dtype=np.int64)


def _coins(labels: np.ndarray, seed: int) -> np.ndarray:
    """Boolean heads/tails per *label value*, identical across chunks.

    One splitmix64-style mix of ``label ^ round-seed``: stateless, so
    every worker computes the same coin for the same vertex without any
    shared RNG state crossing the barrier.
    """
    x = labels.astype(np.uint64) ^ np.uint64(seed)
    with np.errstate(over="ignore"):
        x = (x ^ (x >> np.uint64(30))) * _MIX_A
        x = (x ^ (x >> np.uint64(27))) * _MIX_B
    x ^= x >> np.uint64(31)
    return (x & np.uint64(1)).astype(bool)


def hook_partial(
    f: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    lo: int,
    hi: int,
    partial: np.ndarray,
    variant: str = "fastsv",
    seed: int = DETERMINISTIC,
) -> int:
    """One hook phase over the edge chunk ``[lo, hi)`` into ``partial``.

    Reads the round-start labels ``f`` (shared, never written) and the
    directed edge arrays; (re)initialises the private slab ``partial``
    to the sentinel ``n`` and scatter-MINs the variant's candidate
    updates into it.  Idempotent -- a retry after a worker death simply
    recomputes the same slab -- and chunk-invariant: the elementwise
    minimum of the partials over any partition of the edges equals the
    serial ``np.minimum.at`` over all of them.

    Variants (``u, v`` range over the chunk's edges; updates are
    MIN-combined):

    * ``"sv"`` -- parent hooking, Shiloach--Vishkin style:
      ``f[u] <- f[v]`` and ``f[v] <- f[u]`` proposed at the *parents*:
      ``partial[f[u]] min= f[v]``, ``partial[f[v]] min= f[u]``.
    * ``"fastsv"`` -- grandparent hooking plus self-hooking (FastSV):
      ``partial[f[u]] min= f[f[v]]``, ``partial[u] min= f[f[v]]`` and
      symmetrically.
    * ``"stochastic"`` -- Liu--Tarjan stochastic hooking: a per-round
      coin per label value; only tails-labelled parents hook onto
      heads-labelled neighbours, which keeps concurrent hook chains
      short.  ``seed == DETERMINISTIC`` disables the filter (used for
      the convergence-confirmation round).

    Returns the number of candidate updates proposed (0 for an empty
    chunk) -- a cheap progress token, not part of correctness.
    """
    if variant not in VARIANTS:
        raise ValueError(f"variant must be one of {VARIANTS}, got {variant!r}")
    n = f.shape[0]
    partial[...] = n  # sentinel: one past any label
    if hi <= lo:
        return 0
    u = src[lo:hi]
    v = dst[lo:hi]
    fu = f[u]
    fv = f[v]
    if variant == "sv":
        np.minimum.at(partial, fu, fv)
        np.minimum.at(partial, fv, fu)
        return 2 * int(u.size)
    if variant == "fastsv":
        gu = f[fu]
        gv = f[fv]
        np.minimum.at(partial, fu, gv)
        np.minimum.at(partial, fv, gu)
        np.minimum.at(partial, u, gv)
        np.minimum.at(partial, v, gu)
        return 4 * int(u.size)
    # stochastic: tails hook onto heads (coin per label value per round)
    if seed == DETERMINISTIC:
        np.minimum.at(partial, fu, fv)
        np.minimum.at(partial, fv, fu)
        return 2 * int(u.size)
    heads_u = _coins(fu, seed)
    heads_v = _coins(fv, seed)
    fwd = ~heads_u & heads_v  # tails parent f[u] hooks onto heads f[v]
    rev = ~heads_v & heads_u
    if fwd.any():
        np.minimum.at(partial, fu[fwd], fv[fwd])
    if rev.any():
        np.minimum.at(partial, fv[rev], fu[rev])
    return int(np.count_nonzero(fwd)) + int(np.count_nonzero(rev))


def combine_partials(
    f: np.ndarray, partials: Sequence[np.ndarray]
) -> bool:
    """Log-step tree combine of the per-worker partial minima into ``f``.

    Pairwise elementwise minima halve the live slab count each step
    (the frontier-merge idiom of the sharded engine, applied to whole
    label slabs), then one final ``min`` folds the surviving slab into
    the shared labels.  Mutates the partial slabs as scratch -- the
    next round's hook phase reinitialises them anyway.  Returns whether
    any label decreased.
    """
    if not partials:
        return False
    live: List[np.ndarray] = list(partials)
    while len(live) > 1:
        half = (len(live) + 1) // 2
        for i in range(len(live) - half):
            np.minimum(live[i], live[i + half], out=live[i])
        live = live[:half]
    merged = live[0]
    changed = bool((merged < f).any())
    if changed:
        np.minimum(f, merged, out=f)
    return changed


def jump_chunk(
    front: np.ndarray, back: np.ndarray, lo: int, hi: int
) -> int:
    """One pointer-jump phase over the vertex chunk ``[lo, hi)``.

    Reads the whole ``front`` labels (gathers may land anywhere) but
    writes **only** its assigned slice of ``back`` -- the owner-write
    discipline for partitioned slabs (SHM204) that lets every chunk of
    a jump phase run concurrently on one shared output slab.  Returns
    how many labels in the slice decreased.
    """
    if hi <= lo:
        return 0
    block = front[lo:hi]
    hop = front[block]
    changed = int(np.count_nonzero(hop < block))
    back[lo:hi] = np.minimum(block, hop)
    return changed


def seed_identity(labels: np.ndarray, lo: int, hi: int) -> int:
    """Initialise ``labels[lo:hi]`` to the identity (chunked setup).

    The chunk-sliced counterpart of ``np.arange`` so label slabs can be
    seeded under the same owner-write discipline as the jump phase.
    Returns the number of entries written.
    """
    if hi <= lo:
        return 0
    labels[lo:hi] = np.arange(lo, hi, dtype=labels.dtype)
    return int(hi - lo)


def serial_round(
    f: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    scratch: np.ndarray,
    back: np.ndarray,
    variant: str = "fastsv",
    seed: int = DETERMINISTIC,
) -> Tuple[bool, bool]:
    """One full round on one core, through the same kernels.

    The inline path of the parallel engine and the ground truth the
    chunked path is tested against: hook over the whole edge range into
    ``scratch``, combine, jump over the whole vertex range into
    ``back``.  The caller swaps ``f``/``back`` afterwards.  Returns
    ``(hook_changed, jump_changed)``.
    """
    hook_partial(f, src, dst, 0, src.shape[0], scratch, variant, seed)
    hook_changed = combine_partials(f, [scratch])
    jump_changed = jump_chunk(f, back, 0, f.shape[0]) > 0
    return hook_changed, jump_changed
