"""Generation-by-generation traces and the Figure 3 access patterns.

Figure 3 of the paper visualises, for ``n = 4``, which cells are *active*
in each generation and which cell each active cell reads (cells are
labelled with their linear index; active cells are shaded).  This module
reconstructs those pictures for any ``n`` from the actual rule objects, and
records full ``D``-field snapshots so a run can be replayed and rendered in
ASCII.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from repro.core.field import FieldLayout
from repro.core.schedule import ScheduledGeneration, full_schedule
from repro.core.vectorized import active_mask, apply_generation, pointer_targets
from repro.graphs.adjacency import AdjacencyMatrix
from repro.util.formatting import render_matrix

GraphLike = Union[AdjacencyMatrix, np.ndarray]


@dataclass(frozen=True)
class AccessPattern:
    """The access pattern of one generation (one Figure 3 panel).

    Attributes
    ----------
    label:
        Generation label (``"gen1"``, ``"gen3.sub0"``, ...).
    active:
        Boolean ``(n+1, n)`` mask of active cells.
    targets:
        Integer ``(n+1, n)`` matrix: for active cells the linear index of
        the cell read; ``-1`` for passive cells and for read-free
        generations.
    """

    label: str
    active: np.ndarray
    targets: np.ndarray

    @property
    def active_count(self) -> int:
        return int(self.active.sum())

    def reads_of(self, index: int) -> int:
        """How many active cells read linear cell ``index``."""
        return int((self.targets == index).sum())

    def render(self) -> str:
        """ASCII rendering in Figure 3 style: each cell shows the linear
        index of the cell it reads (``.`` for passive cells)."""
        rows, cols = self.targets.shape
        texts = []
        for r in range(rows):
            row_texts = []
            for c in range(cols):
                if self.active[r, c] and self.targets[r, c] >= 0:
                    row_texts.append(f"{self.targets[r, c]}*")
                elif self.active[r, c]:
                    row_texts.append("x")  # active, no read (generation 0)
                else:
                    row_texts.append(".")
            texts.append(row_texts)
        width = max(len(t) for row in texts for t in row)
        return "\n".join(
            " ".join(t.rjust(width) for t in row) for row in texts
        )


def access_pattern(
    sched: ScheduledGeneration, D: np.ndarray, layout: FieldLayout
) -> AccessPattern:
    """The access pattern of ``sched`` given the current field ``D``."""
    mask = active_mask(sched, layout)
    targets = np.full(mask.shape, -1, dtype=np.int64)
    flat = pointer_targets(sched, D, layout)
    if flat is not None:
        targets[mask] = flat
    return AccessPattern(label=sched.label, active=mask, targets=targets)


@dataclass
class GenerationSnapshot:
    """Field state and access pattern after one generation."""

    label: str
    step: int
    D_before: np.ndarray
    D_after: np.ndarray
    pattern: AccessPattern

    def render(self, infinity: Optional[int] = None) -> str:
        """Readable multi-line dump of the generation."""
        lines = [f"--- {self.label} (Hirschberg step {self.step}) ---"]
        lines.append("access pattern (value = linear index read, . = passive):")
        lines.append(self.pattern.render())
        lines.append("D after:")
        lines.append(render_matrix(self.D_after, infinity=infinity))
        return "\n".join(lines)


class TraceRecorder:
    """Records a full vectorised run, generation by generation."""

    def __init__(self, graph: GraphLike, iterations: Optional[int] = None):
        g = graph if isinstance(graph, AdjacencyMatrix) else AdjacencyMatrix(np.asarray(graph))
        self.graph = g
        self.layout = FieldLayout(g.n)
        self.iterations = iterations
        self.snapshots: List[GenerationSnapshot] = []
        self.labels: Optional[np.ndarray] = None

    def run(self) -> List[GenerationSnapshot]:
        """Execute the algorithm, recording every generation."""
        n = self.layout.n
        A = self.graph.matrix.astype(np.int64)
        schedule = full_schedule(n, iterations=self.iterations)
        D = np.zeros((n + 1, n), dtype=np.int64)
        self.snapshots = []
        for sched in schedule:
            pattern = access_pattern(sched, D, self.layout)
            D_after = apply_generation(sched, D, A, self.layout)
            self.snapshots.append(
                GenerationSnapshot(
                    label=sched.label,
                    step=sched.step,
                    D_before=D.copy(),
                    D_after=D_after.copy(),
                    pattern=pattern,
                )
            )
            D = D_after
        self.labels = D[:n, 0].copy()
        return self.snapshots

    def render(self) -> str:
        """The whole trace as readable text."""
        if not self.snapshots:
            self.run()
        inf = self.layout.infinity
        parts = [s.render(infinity=inf) for s in self.snapshots]
        parts.append(f"final labels: {self.labels.tolist()}")
        return "\n\n".join(parts)


def figure3_patterns(n: int = 4) -> Dict[str, AccessPattern]:
    """The access patterns of the *first iteration*, keyed by generation
    label -- the reproduction of Figure 3 (paper shows ``n = 4``).

    Data-dependent generations (10/11) are evaluated on the identity field
    (``C(i) = i``), matching the figure's schematic depiction.
    """
    layout = FieldLayout(n)
    # A neutral field where column 0 holds the identity labelling, so the
    # data-dependent pointer patterns are well-defined and deterministic.
    D = np.zeros((n + 1, n), dtype=np.int64)
    D[:, :] = np.arange(n)[None, :]
    D[:n, 0] = np.arange(n)
    patterns: Dict[str, AccessPattern] = {}
    for sched in full_schedule(n, iterations=1):
        pattern = access_pattern(sched, D, layout)
        # Strip the iteration prefix: Figure 3 names the panels gen0..gen11.
        label = sched.label.replace("it0.", "")
        patterns[label] = pattern
    return patterns
