"""Semiring matrix-vector kernels on the CC field fabric.

"Numerical algorithms" are another application class the paper lists for
the GCA.  The observation made executable here: the connected-components
field is a general *matrix fabric* -- generation 1's column broadcast,
a local combine against the per-cell constant, and generation 3's row
tree-reduction compose into a matrix-vector product, and swapping the
semiring swaps the algorithm:

=============  ==============================  ===========================
semiring       combine / reduce                y = M (x) gives
=============  ==============================  ===========================
plus_times     ``a*x`` / ``+``                 ordinary integer ``M @ x``
or_and         ``a & x`` / ``|``               one BFS frontier expansion
min_plus       ``a + x`` / ``min``             one shortest-path relaxation
=============  ==============================  ===========================

Each product costs ``2 + ceil(log2 n)`` generations on the ``n x n``
square field (broadcast, local combine, ``log n`` reduction
sub-generations) -- the exact pattern budget of the CC algorithm's steps
2-4.  On top of the kernels:

* :func:`gca_matvec` -- one product, any of the three semirings;
* :func:`gca_bfs_levels` -- BFS level labelling by repeated or-and
  products (``<= diameter`` products);
* :func:`gca_sssp` -- single-source shortest paths on non-negative
  integer weights by repeated min-plus relaxation (Bellman-Ford style);

all exact integer computations, validated against NumPy/SciPy oracles in
the tests.  The implementations are vectorised (whole-field NumPy, like
:mod:`repro.core.vectorized`) with explicit generation accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.graphs.adjacency import AdjacencyMatrix
from repro.util.intmath import ceil_log2
from repro.util.validation import check_index, check_square

GraphLike = Union[AdjacencyMatrix, np.ndarray]

SEMIRINGS = ("plus_times", "or_and", "min_plus")

#: The min-plus "no path" value (safe headroom below int64 overflow).
UNREACHED = np.int64(2**62)


def generations_per_matvec(n: int) -> int:
    """Field generations one product costs: broadcast + combine + reduce."""
    return 2 + (ceil_log2(n) if n > 1 else 0)


@dataclass
class MatvecResult:
    """One product's result plus its generation cost."""

    vector: np.ndarray
    generations: int


def _field_matvec(M: np.ndarray, x: np.ndarray, semiring: str) -> np.ndarray:
    """The three-phase field computation, vectorised.

    Phase 1 (generation-1 pattern): every row of the field receives a
    copy of ``x``.  Phase 2 (generation-2 pattern, local): each cell
    combines its matrix constant with its ``x`` entry.  Phase 3
    (generation-3 pattern): each row tree-reduces to column 0.
    """
    n = M.shape[0]
    field = np.broadcast_to(x, (n, n)).copy()          # phase 1
    if semiring == "plus_times":
        field = M * field                               # phase 2
        reduce_op = np.add
    elif semiring == "or_and":
        field = (M != 0) & (field != 0)                 # phase 2 (boolean)
        field = field.astype(np.int64)
        reduce_op = np.maximum                          # OR on 0/1
    elif semiring == "min_plus":
        with np.errstate(over="ignore"):
            field = np.where(M >= UNREACHED, UNREACHED,
                             np.minimum(M + field, UNREACHED))  # phase 2
        reduce_op = np.minimum
    else:
        raise ValueError(f"semiring must be one of {SEMIRINGS}, got {semiring!r}")

    # phase 3: strided tree reduction, the generation-3 ladder
    width = n
    stride = 1
    while stride < width:
        left = field[:, 0:width:2 * stride]
        right_cols = np.arange(stride, width, 2 * stride)
        if right_cols.size:
            right = field[:, right_cols]
            k = right.shape[1]
            field[:, 0:width:2 * stride][:, :k] = reduce_op(left[:, :k], right)
        stride *= 2
    return field[:, 0].copy()


def gca_matvec(
    matrix: np.ndarray, vector: np.ndarray, semiring: str = "plus_times"
) -> MatvecResult:
    """One semiring matrix-vector product on the field fabric."""
    M = check_square("matrix", np.asarray(matrix)).astype(np.int64)
    x = np.asarray(vector, dtype=np.int64)
    if x.shape != (M.shape[0],):
        raise ValueError(
            f"vector must have shape ({M.shape[0]},), got {x.shape}"
        )
    y = _field_matvec(M, x, semiring)
    return MatvecResult(vector=y, generations=generations_per_matvec(M.shape[0]))


def gca_bfs_levels(
    graph: GraphLike, source: int, max_products: Optional[int] = None
) -> Tuple[np.ndarray, int]:
    """BFS levels from ``source`` by repeated or-and products.

    Returns ``(levels, generations)`` where ``levels[i]`` is the hop
    distance (``-1`` unreachable).  Each product expands the reachable
    frontier one hop; the loop stops at the fixpoint.
    """
    g = graph if isinstance(graph, AdjacencyMatrix) else AdjacencyMatrix(np.asarray(graph))
    n = g.n
    check_index("source", source, n)
    M = g.matrix.astype(np.int64)
    reached = np.zeros(n, dtype=np.int64)
    reached[source] = 1
    levels = np.full(n, -1, dtype=np.int64)
    levels[source] = 0
    generations = 0
    limit = max_products if max_products is not None else n
    for level in range(1, limit + 1):
        step = gca_matvec(M, reached, semiring="or_and")
        generations += step.generations
        new_reached = np.maximum(reached, step.vector)
        freshly = (new_reached == 1) & (reached == 0)
        if not freshly.any():
            break
        levels[freshly] = level
        reached = new_reached
    return levels, generations


def gca_sssp(
    weights: np.ndarray, source: int, max_products: Optional[int] = None
) -> Tuple[np.ndarray, int]:
    """Single-source shortest paths by repeated min-plus relaxation.

    ``weights`` is an ``n x n`` matrix of non-negative integer edge
    weights with ``0`` meaning "no edge" (off-diagonal); it is symmetrised
    (undirected).  Returns ``(distances, generations)`` with
    ``UNREACHED`` marking unreachable nodes.
    """
    W = check_square("weights", np.asarray(weights)).astype(np.int64)
    if (W < 0).any():
        raise ValueError("weights must be non-negative")
    n = W.shape[0]
    check_index("source", source, n)
    W = np.maximum(W, W.T)                        # undirected
    M = np.where(W > 0, W, UNREACHED)
    np.fill_diagonal(M, 0)                        # staying put is free
    dist = np.full(n, UNREACHED, dtype=np.int64)
    dist[source] = 0
    generations = 0
    limit = max_products if max_products is not None else max(1, n - 1)
    for _ in range(limit):
        step = gca_matvec(M, dist, semiring="min_plus")
        generations += step.generations
        if np.array_equal(step.vector, dist):
            break
        dist = step.vector
    return dist, generations


def repeated_matvec(
    matrix: np.ndarray,
    vector: np.ndarray,
    products: int,
    semiring: str = "plus_times",
) -> MatvecResult:
    """``M^k (x)`` by ``k`` successive products (e.g. counting length-k
    walks under plus-times)."""
    if products < 0:
        raise ValueError(f"products must be >= 0, got {products}")
    x = np.asarray(vector, dtype=np.int64)
    generations = 0
    for _ in range(products):
        step = gca_matvec(matrix, x, semiring=semiring)
        x = step.vector
        generations += step.generations
    return MatvecResult(vector=x, generations=generations)
