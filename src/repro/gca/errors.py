"""Exception hierarchy of the GCA engine.

All engine-level failures derive from :class:`GCAError` so callers can
catch model violations separately from ordinary ``ValueError``/``TypeError``
argument problems.
"""

from __future__ import annotations


class GCAError(Exception):
    """Base class for Global-Cellular-Automaton model violations."""


class HandednessViolation(GCAError):
    """A cell attempted more global reads in one generation than the
    automaton's handedness permits (the paper's algorithm is one-handed:
    a single ``(d*, p*)`` access per cell per generation)."""


class PointerRangeError(GCAError):
    """A pointer operation produced a target outside the cell field."""


class OwnerWriteViolation(GCAError):
    """A rule attempted to write the state of a foreign cell.  The GCA is a
    CROW model: concurrent reads are free, writes are owner-only."""


class RuleResultError(GCAError):
    """A rule returned a malformed :class:`~repro.gca.cell.CellUpdate`."""
