"""Cell-level value types of the GCA engine.

The state of a GCA cell consists of a *data part* and an *access
information part* (Figure 1 of the paper).  In this implementation the
access part is a single pointer (the paper's algorithms are one-handed),
and cells may additionally carry immutable per-cell constants -- the
adjacency bit ``a`` in the connected-components algorithm.

These types are deliberately tiny and immutable: the engine stores the
whole field in NumPy arrays; :class:`CellView` and :class:`CellUpdate` are
the per-cell façade the rule interface works with.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping, Optional


@dataclass(frozen=True)
class CellView:
    """Read-only snapshot of one cell at the start of a generation.

    Attributes
    ----------
    index:
        The cell's linear index in the field.
    data:
        The data part ``d``.
    pointer:
        The access part ``p`` (target linear index of the global neighbour).
    aux:
        Immutable per-cell constants (e.g. the adjacency bit ``a``); empty
        mapping when the automaton declares no auxiliary planes.
    generation:
        The number of completed generations before this one (0-based).
    """

    index: int
    data: int
    pointer: int
    aux: Mapping[str, int]
    generation: int

    @staticmethod
    def make(
        index: int,
        data: int,
        pointer: int,
        aux: Optional[Mapping[str, int]] = None,
        generation: int = 0,
    ) -> "CellView":
        """Build a view with a defensively wrapped aux mapping."""
        return CellView(
            index=index,
            data=data,
            pointer=pointer,
            aux=MappingProxyType(dict(aux or {})),
            generation=generation,
        )


@dataclass(frozen=True)
class Neighbor:
    """The global information ``(d*, p*)`` read from a neighbour cell."""

    index: int
    data: int
    pointer: int


@dataclass(frozen=True)
class CellUpdate:
    """The new state a rule computes for its own cell.

    ``None`` fields keep the current value; the engine never lets a rule
    touch another cell (owner-write).
    """

    data: Optional[int] = None
    pointer: Optional[int] = None

    @property
    def is_noop(self) -> bool:
        """``True`` iff the update changes nothing."""
        return self.data is None and self.pointer is None


KEEP = CellUpdate()
"""The canonical "cell stays passive this generation" update."""
