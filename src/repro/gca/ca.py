"""Classical cellular automata on top of the GCA engine.

The paper positions the GCA as "an universal extension of the CA model":
a CA is a GCA whose access pattern is static and local.  This module makes
that embedding executable -- a :class:`CellularAutomaton` runs any local
rule on a 2-D grid by configuring the generic engine with fixed multi-handed
reads.  It serves as a baseline/demo substrate and as evidence that the
engine's handedness generalisation is sound.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.gca.automaton import GlobalCellularAutomaton
from repro.gca.cell import CellUpdate, CellView, Neighbor
from repro.gca.neighborhood import MOORE, Offset, wrap_neighbors
from repro.gca.rules import Rule
from repro.util.validation import check_positive

LocalRule = Callable[[int, Sequence[int]], int]
"""A classical CA rule: (own state, neighbour states) -> next state."""


class _LocalRuleAdapter(Rule):
    """Runs a local rule through the GCA engine with static global reads."""

    def __init__(self, rows: int, cols: int, offsets: Sequence[Offset], fn: LocalRule):
        self._rows = rows
        self._cols = cols
        self._offsets = tuple(offsets)
        self._fn = fn
        # Neighbour targets are static; precompute them once.
        self._targets = [
            wrap_neighbors(i, rows, cols, self._offsets)
            for i in range(rows * cols)
        ]

    def pointer(self, cell: CellView) -> int:  # pragma: no cover - unused path
        return self._targets[cell.index][0]

    def update(self, cell: CellView, neighbor: Neighbor) -> CellUpdate:  # pragma: no cover
        raise NotImplementedError("adapter overrides step() directly")

    def step(self, cell: CellView, read) -> CellUpdate:
        states = [read(t).data for t in self._targets[cell.index]]
        new = self._fn(cell.data, states)
        if new == cell.data:
            # Returning the value unchanged still counts as an update in a
            # hardware CA, but for instrumentation purposes we mirror the
            # paper's "active = modifying" convention.
            return CellUpdate()
        return CellUpdate(data=new)


class CellularAutomaton:
    """A classical synchronous CA on a toroidal ``rows x cols`` grid.

    Parameters
    ----------
    rows, cols:
        Grid shape.
    rule:
        Local transition function ``(state, neighbour_states) -> state``.
    offsets:
        The fixed neighbourhood (default: Moore 8-neighbourhood).
    initial:
        Initial grid (2-D array), defaults to all zeros.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        rule: LocalRule,
        offsets: Sequence[Offset] = MOORE,
        initial: np.ndarray = None,
    ):
        self._rows = check_positive("rows", rows)
        self._cols = check_positive("cols", cols)
        if initial is None:
            initial = np.zeros((rows, cols), dtype=np.int64)
        initial = np.asarray(initial, dtype=np.int64)
        if initial.shape != (rows, cols):
            raise ValueError(
                f"initial grid must have shape ({rows}, {cols}), got {initial.shape}"
            )
        self._adapter = _LocalRuleAdapter(rows, cols, offsets, rule)
        self._engine = GlobalCellularAutomaton(
            size=rows * cols,
            initial_data=initial.ravel(),
            initial_pointer=0,
            hands=len(tuple(offsets)),
            record_access=False,
        )

    @property
    def grid(self) -> np.ndarray:
        """Current grid as a 2-D array."""
        return self._engine.data.reshape(self._rows, self._cols)

    @property
    def generation(self) -> int:
        """Completed generations."""
        return self._engine.generation

    def step(self, generations: int = 1) -> np.ndarray:
        """Advance ``generations`` steps; return the resulting grid."""
        check_positive("generations", generations)
        for _ in range(generations):
            self._engine.step(self._adapter, label=f"ca{self._engine.generation}")
        return self.grid


def game_of_life_rule(state: int, neighbors: Sequence[int]) -> int:
    """Conway's Game of Life (B3/S23) as a :data:`LocalRule`."""
    alive = sum(1 for s in neighbors if s)
    if state:
        return 1 if alive in (2, 3) else 0
    return 1 if alive == 3 else 0


def majority_rule(state: int, neighbors: Sequence[int]) -> int:
    """Binary majority vote over the cell and its neighbourhood."""
    votes = sum(neighbors) + state
    total = len(neighbors) + 1
    return 1 if 2 * votes > total else 0
