"""Access instrumentation: active cells, read accesses and congestion.

The paper's Table 1 characterises each generation by

* the number of **active cells** (cells modifying their state),
* the number of cells **with read access** (cells being read), and
* the **congestion** δ -- the number of concurrent read accesses each of
  those cells receives.  The duration of a GCA step on real hardware is
  bounded from below by the maximum congestion of any cell in the step.

:class:`GenerationStats` captures all three for one generation;
:class:`AccessLog` accumulates them over a run and exposes the histogram
view Table 1 reports (pairs of ``#cells`` / ``δ``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


class GenerationStats:
    """Measured access behaviour of a single generation.

    The per-cell read counts can be supplied either as a ready-made
    ``reads_per_cell`` mapping (the interpreter's path) or as a dense
    ``read_counts`` array -- typically the ``np.bincount`` over the read
    targets that the vectorised engines already compute.  In the latter
    case the mapping is materialised lazily on first access, so hot loops
    that only aggregate (``total_reads``, ``max_congestion``, ...) never
    pay for building a Python dict.

    Attributes
    ----------
    label:
        Diagnostic name, e.g. ``"gen2"`` or ``"gen3.sub1"``.
    active_cells:
        Number of cells that modified their state.
    reads_per_cell:
        ``reads_per_cell[i]`` = number of concurrent reads cell ``i``
        received this generation (only cells with at least one read are
        listed).
    """

    __slots__ = ("label", "active_cells", "_reads_dict", "_read_counts")

    def __init__(
        self,
        label: str,
        active_cells: int,
        reads_per_cell: Optional[Dict[int, int]] = None,
        read_counts: Optional[np.ndarray] = None,
    ) -> None:
        if reads_per_cell is not None and read_counts is not None:
            raise ValueError("pass reads_per_cell or read_counts, not both")
        self.label = label
        self.active_cells = active_cells
        self._read_counts = read_counts
        if reads_per_cell is not None:
            self._reads_dict: Optional[Dict[int, int]] = reads_per_cell
        elif read_counts is None:
            self._reads_dict = {}
        else:
            self._reads_dict = None

    @property
    def reads_per_cell(self) -> Dict[int, int]:
        """The per-cell read counts as a mapping (materialised lazily)."""
        if self._reads_dict is None:
            counts = self._read_counts
            self._reads_dict = {
                int(i): int(counts[i]) for i in np.flatnonzero(counts)
            }
        return self._reads_dict

    @property
    def total_reads(self) -> int:
        """Total number of global read accesses issued this generation."""
        if self._reads_dict is None:
            return int(self._read_counts.sum())
        return sum(self._reads_dict.values())

    @property
    def cells_read(self) -> int:
        """Number of distinct cells that were read at least once."""
        if self._reads_dict is None:
            return int(np.count_nonzero(self._read_counts))
        return len(self._reads_dict)

    @property
    def max_congestion(self) -> int:
        """The generation's congestion bound: max reads into any one cell."""
        if self._reads_dict is None:
            counts = self._read_counts
            return int(counts.max()) if counts.size else 0
        return max(self._reads_dict.values(), default=0)

    def congestion_histogram(self) -> List[Tuple[int, int]]:
        """Histogram as ``(#cells, δ)`` pairs, highest δ first.

        This is the exact shape of Table 1's last two columns: e.g.
        generation 1 yields ``[(n, n+1)]`` -- ``n`` cells are each read by
        ``n+1`` readers.
        """
        if self._reads_dict is None:
            counts = self._read_counts
            deltas, cells = np.unique(counts[counts > 0], return_counts=True)
            return [
                (int(c), int(d)) for c, d in zip(cells[::-1], deltas[::-1])
            ]
        counter = Counter(self._reads_dict.values())
        return sorted(
            ((count, delta) for delta, count in counter.items()),
            key=lambda pair: -pair[1],
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GenerationStats):
            return NotImplemented
        return (
            self.label == other.label
            and self.active_cells == other.active_cells
            and self.reads_per_cell == other.reads_per_cell
        )

    def __repr__(self) -> str:  # pragma: no cover - diagnostic only
        return (
            f"GenerationStats(label={self.label!r}, "
            f"active_cells={self.active_cells}, "
            f"cells_read={self.cells_read}, "
            f"max_congestion={self.max_congestion})"
        )


@dataclass
class AccessLog:
    """Accumulated per-generation statistics for a whole run."""

    generations: List[GenerationStats] = field(default_factory=list)

    def record(self, stats: GenerationStats) -> None:
        """Append one generation's statistics."""
        self.generations.append(stats)

    def __len__(self) -> int:
        return len(self.generations)

    def __iter__(self):
        return iter(self.generations)

    def by_label(self, label: str) -> List[GenerationStats]:
        """All generations whose label equals or starts with ``label``.

        Sub-generations are labelled ``"<label>.sub<k>"``, so
        ``by_label("gen3")`` returns the whole reduction ladder.
        """
        return [
            g
            for g in self.generations
            if g.label == label or g.label.startswith(label + ".")
        ]

    @property
    def total_generations(self) -> int:
        """Number of recorded generations (sub-generations count singly,
        matching the paper's generation total ``1 + log n (3 log n + 8)``)."""
        return len(self.generations)

    @property
    def total_reads(self) -> int:
        """Total global reads across the run."""
        return sum(g.total_reads for g in self.generations)

    @property
    def total_active(self) -> int:
        """Total active-cell count across the run (GCA 'work')."""
        return sum(g.active_cells for g in self.generations)

    @property
    def peak_congestion(self) -> int:
        """Maximum congestion over all generations."""
        return max((g.max_congestion for g in self.generations), default=0)

    def summary_rows(self) -> List[Tuple[str, int, int, int]]:
        """Rows ``(label, active, cells_read, max_congestion)`` per
        generation -- the raw material of the Table 1 bench."""
        return [
            (g.label, g.active_cells, g.cells_read, g.max_congestion)
            for g in self.generations
        ]


def merge_stats(label: str, parts: Sequence[GenerationStats]) -> GenerationStats:
    """Aggregate sub-generation statistics into one logical generation.

    Active-cell counts add up; per-cell read counts add up (a cell read in
    two sub-generations shows the summed δ).  Used when comparing against
    Table 1, which reports the reduction generations 3/7 as single rows.
    """
    merged: GenerationStats = GenerationStats(label=label, active_cells=0)
    for part in parts:
        merged.active_cells += part.active_cells
        for cell, reads in part.reads_per_cell.items():
            merged.reads_per_cell[cell] = merged.reads_per_cell.get(cell, 0) + reads
    return merged


class ReadRecorder:
    """Mutable per-generation read counter used inside the engine loop."""

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}

    def note(self, target: int) -> None:
        """Record one read of cell ``target``."""
        self._counts[target] = self._counts.get(target, 0) + 1

    def finish(self, label: str, active_cells: int) -> GenerationStats:
        """Freeze the counts into a :class:`GenerationStats`."""
        stats = GenerationStats(
            label=label, active_cells=active_cells, reads_per_cell=self._counts
        )
        return stats
