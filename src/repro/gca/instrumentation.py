"""Access instrumentation: active cells, read accesses and congestion.

The paper's Table 1 characterises each generation by

* the number of **active cells** (cells modifying their state),
* the number of cells **with read access** (cells being read), and
* the **congestion** δ -- the number of concurrent read accesses each of
  those cells receives.  The duration of a GCA step on real hardware is
  bounded from below by the maximum congestion of any cell in the step.

:class:`GenerationStats` captures all three for one generation;
:class:`AccessLog` accumulates them over a run and exposes the histogram
view Table 1 reports (pairs of ``#cells`` / ``δ``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class GenerationStats:
    """Measured access behaviour of a single generation.

    Attributes
    ----------
    label:
        Diagnostic name, e.g. ``"gen2"`` or ``"gen3.sub1"``.
    active_cells:
        Number of cells that modified their state.
    reads_per_cell:
        ``reads_per_cell[i]`` = number of concurrent reads cell ``i``
        received this generation (only cells with at least one read are
        listed).
    """

    label: str
    active_cells: int
    reads_per_cell: Dict[int, int] = field(default_factory=dict)

    @property
    def total_reads(self) -> int:
        """Total number of global read accesses issued this generation."""
        return sum(self.reads_per_cell.values())

    @property
    def cells_read(self) -> int:
        """Number of distinct cells that were read at least once."""
        return len(self.reads_per_cell)

    @property
    def max_congestion(self) -> int:
        """The generation's congestion bound: max reads into any one cell."""
        return max(self.reads_per_cell.values(), default=0)

    def congestion_histogram(self) -> List[Tuple[int, int]]:
        """Histogram as ``(#cells, δ)`` pairs, highest δ first.

        This is the exact shape of Table 1's last two columns: e.g.
        generation 1 yields ``[(n, n+1)]`` -- ``n`` cells are each read by
        ``n+1`` readers.
        """
        counter = Counter(self.reads_per_cell.values())
        return sorted(
            ((count, delta) for delta, count in counter.items()),
            key=lambda pair: -pair[1],
        )


@dataclass
class AccessLog:
    """Accumulated per-generation statistics for a whole run."""

    generations: List[GenerationStats] = field(default_factory=list)

    def record(self, stats: GenerationStats) -> None:
        """Append one generation's statistics."""
        self.generations.append(stats)

    def __len__(self) -> int:
        return len(self.generations)

    def __iter__(self):
        return iter(self.generations)

    def by_label(self, label: str) -> List[GenerationStats]:
        """All generations whose label equals or starts with ``label``.

        Sub-generations are labelled ``"<label>.sub<k>"``, so
        ``by_label("gen3")`` returns the whole reduction ladder.
        """
        return [
            g
            for g in self.generations
            if g.label == label or g.label.startswith(label + ".")
        ]

    @property
    def total_generations(self) -> int:
        """Number of recorded generations (sub-generations count singly,
        matching the paper's generation total ``1 + log n (3 log n + 8)``)."""
        return len(self.generations)

    @property
    def total_reads(self) -> int:
        """Total global reads across the run."""
        return sum(g.total_reads for g in self.generations)

    @property
    def total_active(self) -> int:
        """Total active-cell count across the run (GCA 'work')."""
        return sum(g.active_cells for g in self.generations)

    @property
    def peak_congestion(self) -> int:
        """Maximum congestion over all generations."""
        return max((g.max_congestion for g in self.generations), default=0)

    def summary_rows(self) -> List[Tuple[str, int, int, int]]:
        """Rows ``(label, active, cells_read, max_congestion)`` per
        generation -- the raw material of the Table 1 bench."""
        return [
            (g.label, g.active_cells, g.cells_read, g.max_congestion)
            for g in self.generations
        ]


def merge_stats(label: str, parts: Sequence[GenerationStats]) -> GenerationStats:
    """Aggregate sub-generation statistics into one logical generation.

    Active-cell counts add up; per-cell read counts add up (a cell read in
    two sub-generations shows the summed δ).  Used when comparing against
    Table 1, which reports the reduction generations 3/7 as single rows.
    """
    merged: GenerationStats = GenerationStats(label=label, active_cells=0)
    for part in parts:
        merged.active_cells += part.active_cells
        for cell, reads in part.reads_per_cell.items():
            merged.reads_per_cell[cell] = merged.reads_per_cell.get(cell, 0) + reads
    return merged


class ReadRecorder:
    """Mutable per-generation read counter used inside the engine loop."""

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}

    def note(self, target: int) -> None:
        """Record one read of cell ``target``."""
        self._counts[target] = self._counts.get(target, 0) + 1

    def finish(self, label: str, active_cells: int) -> GenerationStats:
        """Freeze the counts into a :class:`GenerationStats`."""
        stats = GenerationStats(
            label=label, active_cells=active_cells, reads_per_cell=self._counts
        )
        return stats
