"""Neighbourhood helpers: from classical CA neighbourhoods to global access.

The GCA generalises the classical CA: a CA's fixed local neighbourhood is
just the special case of pointers that never change and always address
nearby cells.  These helpers translate 2-D grid neighbourhoods into linear
pointer targets so classical automata can run on the
:class:`~repro.gca.automaton.GlobalCellularAutomaton` engine, and provide
the row/column address arithmetic the paper's field layout uses.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.util.validation import check_index, check_positive

Offset = Tuple[int, int]

VON_NEUMANN: Sequence[Offset] = ((-1, 0), (1, 0), (0, -1), (0, 1))
"""The 4-neighbourhood of the classical CA."""

MOORE: Sequence[Offset] = (
    (-1, -1), (-1, 0), (-1, 1),
    (0, -1), (0, 1),
    (1, -1), (1, 0), (1, 1),
)
"""The 8-neighbourhood of the classical CA."""


def linear_index(row: int, col: int, cols: int) -> int:
    """Row-major linear index of grid position ``(row, col)``."""
    check_positive("cols", cols)
    if col < 0 or col >= cols:
        raise IndexError(f"col must be in [0, {cols}), got {col}")
    if row < 0:
        raise IndexError(f"row must be >= 0, got {row}")
    return row * cols + col


def row_of(index: int, cols: int) -> int:
    """Row of linear ``index`` in a grid with ``cols`` columns."""
    check_positive("cols", cols)
    if index < 0:
        raise IndexError(f"index must be >= 0, got {index}")
    return index // cols


def col_of(index: int, cols: int) -> int:
    """Column of linear ``index`` in a grid with ``cols`` columns."""
    check_positive("cols", cols)
    if index < 0:
        raise IndexError(f"index must be >= 0, got {index}")
    return index % cols


def wrap_neighbors(
    index: int, rows: int, cols: int, offsets: Sequence[Offset]
) -> List[int]:
    """Toroidally wrapped neighbour indices of ``index`` on a grid."""
    check_positive("rows", rows)
    check_positive("cols", cols)
    check_index("index", index, rows * cols)
    r, c = index // cols, index % cols
    return [((r + dr) % rows) * cols + ((c + dc) % cols) for dr, dc in offsets]


def clamp_neighbors(
    index: int, rows: int, cols: int, offsets: Sequence[Offset]
) -> List[int]:
    """Neighbour indices with out-of-grid offsets dropped (open boundary)."""
    check_positive("rows", rows)
    check_positive("cols", cols)
    check_index("index", index, rows * cols)
    r, c = index // cols, index % cols
    result = []
    for dr, dc in offsets:
        nr, nc = r + dr, c + dc
        if 0 <= nr < rows and 0 <= nc < cols:
            result.append(nr * cols + nc)
    return result
