"""Rule abstractions of the GCA engine.

A *rule* describes what one cell does during one generation.  The paper
factors every generation into

* a **pointer operation** -- compute the global neighbour's address from the
  cell's own state and position ("actual access pattern"), and
* a **data operation** -- combine the own state with the neighbour's
  ``(d*, p*)`` into the next state.

:class:`Rule` captures exactly that split.  Uniform automata use one rule
for every cell (``GlobalCellularAutomaton(rule=...)``); non-uniform automata
supply a rule per cell via :class:`RuleTable`.

Rules never see a mutable field: the engine hands them immutable
:class:`~repro.gca.cell.CellView`/:class:`~repro.gca.cell.Neighbor` values
and applies the returned :class:`~repro.gca.cell.CellUpdate` to the cell
itself only, enforcing the CROW (concurrent-read, owner-write) discipline.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Optional, Sequence

from repro.gca.cell import KEEP, CellUpdate, CellView, Neighbor


class Rule(ABC):
    """One generation's behaviour of a cell."""

    def is_active(self, cell: CellView) -> bool:
        """Whether the cell *modifies its state* this generation.

        Passive cells perform no global read and no write; the paper's
        Table 1 counts only active cells.  Default: active.
        """
        return True

    @abstractmethod
    def pointer(self, cell: CellView) -> int:
        """The pointer operation: the linear index of the global neighbour."""

    @abstractmethod
    def update(self, cell: CellView, neighbor: Neighbor) -> CellUpdate:
        """The data operation: the cell's next state given ``(d*, p*)``."""

    def step(self, cell: CellView, read: Callable[[int], Neighbor]) -> CellUpdate:
        """Execute this rule for ``cell``.

        The default implementation performs the canonical one-handed
        sequence (compute pointer, read neighbour, update).  Multi-handed
        rules may override this to issue several reads through ``read``;
        the engine enforces the automaton's declared handedness.
        """
        if not self.is_active(cell):
            return KEEP
        target = self.pointer(cell)
        neighbor = read(target)
        return self.update(cell, neighbor)


class FunctionRule(Rule):
    """Adapter building a :class:`Rule` from three callables.

    Parameters
    ----------
    pointer_fn:
        ``cell -> int`` pointer operation.
    update_fn:
        ``(cell, neighbor) -> CellUpdate`` data operation.
    active_fn:
        optional ``cell -> bool`` activity predicate (default: always on).
    name:
        diagnostic label used in traces and error messages.
    """

    def __init__(
        self,
        pointer_fn: Callable[[CellView], int],
        update_fn: Callable[[CellView, Neighbor], CellUpdate],
        active_fn: Optional[Callable[[CellView], bool]] = None,
        name: str = "<anonymous>",
    ):
        self._pointer_fn = pointer_fn
        self._update_fn = update_fn
        self._active_fn = active_fn
        self.name = name

    def is_active(self, cell: CellView) -> bool:
        return True if self._active_fn is None else bool(self._active_fn(cell))

    def pointer(self, cell: CellView) -> int:
        return self._pointer_fn(cell)

    def update(self, cell: CellView, neighbor: Neighbor) -> CellUpdate:
        return self._update_fn(cell, neighbor)

    def __repr__(self) -> str:
        return f"FunctionRule({self.name})"


class IdentityRule(Rule):
    """A rule under which every cell keeps its state and reads nothing.

    Useful as the padding entry of a :class:`RuleTable` and in tests.
    """

    def is_active(self, cell: CellView) -> bool:
        return False

    def pointer(self, cell: CellView) -> int:  # pragma: no cover - inactive
        return cell.index

    def update(self, cell: CellView, neighbor: Neighbor) -> CellUpdate:  # pragma: no cover
        return KEEP


class RuleTable(Rule):
    """Non-uniform automaton support: a rule per cell.

    The paper's hardware implementation distinguishes *standard* cells from
    *extended* cells (data-dependent neighbour choice); a :class:`RuleTable`
    expresses such per-position behaviour while keeping the engine uniform.
    """

    def __init__(self, rules: Sequence[Rule]):
        if not rules:
            raise ValueError("RuleTable requires at least one rule")
        self._rules = list(rules)

    def __len__(self) -> int:
        return len(self._rules)

    def rule_for(self, index: int) -> Rule:
        """The rule assigned to cell ``index``."""
        if not 0 <= index < len(self._rules):
            raise IndexError(
                f"no rule for cell {index}; table covers 0..{len(self._rules) - 1}"
            )
        return self._rules[index]

    def is_active(self, cell: CellView) -> bool:
        return self.rule_for(cell.index).is_active(cell)

    def pointer(self, cell: CellView) -> int:
        return self.rule_for(cell.index).pointer(cell)

    def update(self, cell: CellView, neighbor: Neighbor) -> CellUpdate:
        return self.rule_for(cell.index).update(cell, neighbor)

    def step(self, cell: CellView, read: Callable[[int], Neighbor]) -> CellUpdate:
        return self.rule_for(cell.index).step(cell, read)
