"""A library of classic GCA algorithms on the generic engine.

The paper lists the GCA's application classes: "graph algorithms,
hypercube algorithms, logic simulation, numerical algorithms, ...".  This
module implements representative members of those classes directly on the
:class:`~repro.gca.automaton.GlobalCellularAutomaton`, demonstrating the
engine's generality beyond the connected-components mapping and providing
comparison material for the PRAM primitives of
:mod:`repro.pram.program`:

* :func:`gca_reduce` -- hypercube tree reduction (min/max/sum) in
  ``ceil(log2 n)`` generations;
* :func:`gca_prefix_sum` -- Hillis-Steele prefix sums by distance
  doubling;
* :func:`gca_list_ranking` -- Wyllie pointer jumping, the very mechanism
  of the CC algorithm's generation 10;
* :func:`gca_bitonic_sort` -- Batcher's bitonic sorter, the canonical
  hypercube algorithm: ``O(log^2 n)`` generations of compare-exchange
  with partners at hypercube distances.

Every algorithm is a *uniform, one-handed* GCA: each cell issues exactly
one global read per generation and writes only itself.  The compare-
exchange of the bitonic sorter works under owner-write because both
partners read each other and each keeps min or max according to its own
position -- the standard trick that also powers the paper's CROW claim.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.gca.automaton import GlobalCellularAutomaton
from repro.gca.cell import CellUpdate, CellView, Neighbor
from repro.gca.rules import FunctionRule
from repro.util.intmath import ceil_log2, is_power_of_two
from repro.util.validation import check_positive


def _engine(values: Sequence[int], record_access: bool = False) -> GlobalCellularAutomaton:
    data = np.asarray(list(values), dtype=np.int64)
    check_positive("n", data.size)
    return GlobalCellularAutomaton(
        size=data.size, initial_data=data, record_access=record_access
    )


# ----------------------------------------------------------------------
# reduction
# ----------------------------------------------------------------------

_OPS: dict = {
    "min": min,
    "max": max,
    "sum": lambda a, b: a + b,
}


def gca_reduce(values: Sequence[int], op_name: str = "min") -> int:
    """Reduce ``values`` to one result in ``ceil(log2 n)`` generations.

    Generation ``s`` lets the cells aligned to ``2^(s+1)`` read their
    partner at stride ``2^s`` -- exactly the access pattern of the CC
    algorithm's generations 3/7, lifted out as a standalone kernel.
    The result lands in cell 0.
    """
    if op_name not in _OPS:
        raise ValueError(f"op_name must be one of {sorted(_OPS)}, got {op_name!r}")
    op = _OPS[op_name]
    engine = _engine(values)
    n = engine.size
    for s in range(ceil_log2(n) if n > 1 else 0):
        stride = 1 << s

        def active(cell: CellView, _stride=stride) -> bool:
            return cell.index % (2 * _stride) == 0 and cell.index + _stride < n

        def pointer(cell: CellView, _stride=stride) -> int:
            return cell.index + _stride

        def update(cell: CellView, nb: Neighbor, _op=op) -> CellUpdate:
            return CellUpdate(data=_op(cell.data, nb.data))

        engine.step(FunctionRule(pointer, update, active, name=f"reduce{s}"))
    return int(engine.data[0])


# ----------------------------------------------------------------------
# prefix sums
# ----------------------------------------------------------------------

def gca_prefix_sum(values: Sequence[int]) -> List[int]:
    """Inclusive prefix sums by distance doubling (``ceil(log2 n)``
    generations; cell ``i`` reads cell ``i - 2^s`` while it exists)."""
    engine = _engine(values)
    n = engine.size
    for s in range(ceil_log2(n) if n > 1 else 0):
        stride = 1 << s

        def active(cell: CellView, _stride=stride) -> bool:
            return cell.index >= _stride

        def pointer(cell: CellView, _stride=stride) -> int:
            return cell.index - _stride

        def update(cell: CellView, nb: Neighbor) -> CellUpdate:
            return CellUpdate(data=cell.data + nb.data)

        engine.step(FunctionRule(pointer, update, active, name=f"scan{s}"))
    return engine.data.tolist()


# ----------------------------------------------------------------------
# list ranking
# ----------------------------------------------------------------------

def gca_list_ranking(successors: Sequence[int]) -> List[int]:
    """Rank a linked list (tail self-loops) by pointer jumping.

    The cell state uses the *pointer part* as the list link -- the GCA's
    access mechanism IS the data structure -- and the data part as the
    accumulated rank; each generation performs
    ``rank += rank(next); next = next(next)`` in one read of ``(d*, p*)``.
    """
    successors = list(successors)
    n = len(successors)
    check_positive("n", n)
    for i, nxt in enumerate(successors):
        if not 0 <= nxt < n:
            raise ValueError(f"successor of {i} out of range: {nxt}")
    ranks = [0 if successors[i] == i else 1 for i in range(n)]
    engine = GlobalCellularAutomaton(size=n, initial_data=ranks,
                                     initial_pointer=successors)

    def pointer(cell: CellView) -> int:
        return cell.pointer

    def update(cell: CellView, nb: Neighbor) -> CellUpdate:
        return CellUpdate(data=cell.data + nb.data, pointer=nb.pointer)

    rule = FunctionRule(pointer, update, name="jump")
    for _ in range(ceil_log2(n) if n > 1 else 0):
        engine.step(rule)
    return engine.data.tolist()


# ----------------------------------------------------------------------
# bitonic sort
# ----------------------------------------------------------------------

def gca_bitonic_sort(values: Sequence[int]) -> List[int]:
    """Sort ``values`` ascending with Batcher's bitonic network.

    Requires ``len(values)`` to be a power of two (the classical
    hypercube formulation).  Runs ``log n (log n + 1) / 2`` generations;
    in each, every cell reads its partner at hypercube distance ``2^s``
    and keeps the minimum or maximum according to its position and the
    block's direction -- a uniform one-handed rule.
    """
    data = list(values)
    n = len(data)
    check_positive("n", n)
    if not is_power_of_two(n):
        raise ValueError(f"bitonic sort requires a power-of-two size, got {n}")
    engine = _engine(data)
    log = ceil_log2(n)
    for stage in range(1, log + 1):
        for sub in range(stage - 1, -1, -1):
            stride = 1 << sub

            def pointer(cell: CellView, _stride=stride) -> int:
                return cell.index ^ _stride

            def update(cell: CellView, nb: Neighbor,
                       _stride=stride, _stage=stage) -> CellUpdate:
                ascending = (cell.index >> _stage) & 1 == 0
                is_low = cell.index & _stride == 0
                keep_small = ascending == is_low
                if keep_small:
                    return CellUpdate(data=min(cell.data, nb.data))
                return CellUpdate(data=max(cell.data, nb.data))

            engine.step(
                FunctionRule(pointer, update, name=f"bitonic{stage}.{sub}")
            )
    return engine.data.tolist()


def bitonic_generations(n: int) -> int:
    """Generation count of the bitonic sorter: ``log n (log n + 1) / 2``."""
    check_positive("n", n)
    if not is_power_of_two(n):
        raise ValueError(f"bitonic sort requires a power-of-two size, got {n}")
    log = ceil_log2(n)
    return log * (log + 1) // 2
