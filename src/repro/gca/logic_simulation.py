"""Gate-level logic simulation on the GCA (application class of Sec. 1).

The paper lists "logic simulation [11]" among the GCA's typical
applications (Wiegand, Siemers, Richter: "Definition of a Configurable
Architecture for Implementation of Global Cellular Automaton", 2004).
The mapping is natural: one cell per gate, the cell's *pointers* are the
gate's input nets, the data part is the gate's output value, and one
synchronous generation evaluates every gate once.  A combinational
circuit settles after ``depth`` generations; sequential behaviour falls
out of the synchronous update (every cell doubles as a register, so the
simulated circuit is automatically pipelined at gate granularity).

This module provides

* :class:`Circuit` -- a small netlist builder (inputs, NOT/AND/OR/XOR/
  NAND/NOR gates, named outputs) with cycle detection and depth
  computation;
* :class:`LogicSimulator` -- the circuit compiled onto a two-handed
  :class:`~repro.gca.automaton.GlobalCellularAutomaton`;
* :func:`ripple_carry_adder` -- a generator for the classic test
  circuit.

The tests validate the simulator against direct Boolean evaluation over
exhaustive and random input vectors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.gca.automaton import GlobalCellularAutomaton
from repro.gca.cell import KEEP, CellUpdate, CellView
from repro.gca.rules import Rule
from repro.util.validation import check_type


class GateKind(enum.Enum):
    """Supported gate types (INPUT is a constant-driving pseudo gate)."""

    INPUT = "input"
    NOT = "not"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NAND = "nand"
    NOR = "nor"


_ARITY = {
    GateKind.INPUT: 0,
    GateKind.NOT: 1,
    GateKind.AND: 2,
    GateKind.OR: 2,
    GateKind.XOR: 2,
    GateKind.NAND: 2,
    GateKind.NOR: 2,
}

_EVAL = {
    GateKind.NOT: lambda a, b: 1 - a,
    GateKind.AND: lambda a, b: a & b,
    GateKind.OR: lambda a, b: a | b,
    GateKind.XOR: lambda a, b: a ^ b,
    GateKind.NAND: lambda a, b: 1 - (a & b),
    GateKind.NOR: lambda a, b: 1 - (a | b),
}


@dataclass(frozen=True)
class Gate:
    """One netlist node."""

    index: int
    kind: GateKind
    inputs: Tuple[int, ...]
    name: Optional[str] = None


class Circuit:
    """A combinational netlist under construction.

    Gates are referenced by the integer ids the builder methods return;
    primary inputs are gates of kind INPUT.  The netlist must stay acyclic
    (checked on :meth:`depth` / simulation).
    """

    def __init__(self) -> None:
        self._gates: List[Gate] = []
        self._outputs: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def input(self, name: Optional[str] = None) -> int:
        """Add a primary input; returns its gate id."""
        return self._add(GateKind.INPUT, (), name)

    def gate(self, kind: GateKind, *inputs: int, name: Optional[str] = None) -> int:
        """Add a gate of ``kind`` over ``inputs``; returns its id."""
        check_type("kind", kind, GateKind)
        if len(inputs) != _ARITY[kind]:
            raise ValueError(
                f"{kind.value} takes {_ARITY[kind]} inputs, got {len(inputs)}"
            )
        for src in inputs:
            if not 0 <= src < len(self._gates):
                raise IndexError(f"unknown gate id {src}")
        return self._add(kind, tuple(inputs), name)

    def not_(self, a: int, name: Optional[str] = None) -> int:
        return self.gate(GateKind.NOT, a, name=name)

    def and_(self, a: int, b: int, name: Optional[str] = None) -> int:
        return self.gate(GateKind.AND, a, b, name=name)

    def or_(self, a: int, b: int, name: Optional[str] = None) -> int:
        return self.gate(GateKind.OR, a, b, name=name)

    def xor_(self, a: int, b: int, name: Optional[str] = None) -> int:
        return self.gate(GateKind.XOR, a, b, name=name)

    def output(self, name: str, gate_id: int) -> None:
        """Declare gate ``gate_id`` as the named output ``name``."""
        if not 0 <= gate_id < len(self._gates):
            raise IndexError(f"unknown gate id {gate_id}")
        self._outputs[name] = gate_id

    def _add(self, kind: GateKind, inputs: Tuple[int, ...], name: Optional[str]) -> int:
        gate = Gate(index=len(self._gates), kind=kind, inputs=inputs, name=name)
        self._gates.append(gate)
        return gate.index

    # ------------------------------------------------------------------
    @property
    def gates(self) -> List[Gate]:
        return list(self._gates)

    @property
    def size(self) -> int:
        """Number of gates including primary inputs."""
        return len(self._gates)

    @property
    def input_ids(self) -> List[int]:
        return [g.index for g in self._gates if g.kind is GateKind.INPUT]

    @property
    def outputs(self) -> Dict[str, int]:
        return dict(self._outputs)

    def depth(self) -> int:
        """Longest input-to-output path in gates (0 for pure inputs).

        Raises ``ValueError`` on combinational cycles.
        """
        depths: Dict[int, int] = {}
        visiting: set = set()

        def visit(idx: int) -> int:
            if idx in depths:
                return depths[idx]
            if idx in visiting:
                raise ValueError(f"combinational cycle through gate {idx}")
            visiting.add(idx)
            gate = self._gates[idx]
            d = 0 if gate.kind is GateKind.INPUT else 1 + max(
                (visit(src) for src in gate.inputs), default=0
            )
            visiting.discard(idx)
            depths[idx] = d
            return d

        return max((visit(g.index) for g in self._gates), default=0)

    def evaluate(self, inputs: Mapping[int, int]) -> Dict[str, int]:
        """Direct recursive evaluation (the oracle for the simulator)."""
        values: Dict[int, int] = {}

        def value(idx: int) -> int:
            if idx in values:
                return values[idx]
            gate = self._gates[idx]
            if gate.kind is GateKind.INPUT:
                if idx not in inputs:
                    raise ValueError(f"input gate {idx} not assigned")
                result = int(bool(inputs[idx]))
            else:
                operands = [value(src) for src in gate.inputs]
                a = operands[0]
                b = operands[1] if len(operands) > 1 else 0
                result = _EVAL[gate.kind](a, b)
            values[idx] = result
            return result

        self.depth()  # cycle check
        return {name: value(idx) for name, idx in self._outputs.items()}


class _GateRule(Rule):
    """Evaluates each gate cell from its (up to two) input cells."""

    def __init__(self, circuit: Circuit):
        self._gates = circuit.gates

    def pointer(self, cell: CellView) -> int:  # pragma: no cover - step() used
        gate = self._gates[cell.index]
        return gate.inputs[0] if gate.inputs else cell.index

    def update(self, cell: CellView, neighbor) -> CellUpdate:  # pragma: no cover
        raise NotImplementedError

    def step(self, cell: CellView, read) -> CellUpdate:
        gate = self._gates[cell.index]
        if gate.kind is GateKind.INPUT:
            return KEEP                      # inputs hold their value
        a = read(gate.inputs[0]).data
        b = read(gate.inputs[1]).data if len(gate.inputs) > 1 else 0
        return CellUpdate(data=_EVAL[gate.kind](a, b))


class LogicSimulator:
    """A circuit compiled onto the GCA engine (two-handed cells).

    One generation evaluates every gate once from the previous
    generation's net values; after ``circuit.depth()`` generations all
    outputs are settled.
    """

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self._depth = circuit.depth()       # also validates acyclicity
        self._rule = _GateRule(circuit)
        self.engine = GlobalCellularAutomaton(
            size=max(1, circuit.size),
            initial_data=0,
            hands=2,
            record_access=False,
        )

    @property
    def depth(self) -> int:
        """Generations needed to settle the outputs."""
        return self._depth

    def run(self, inputs: Mapping[int, int]) -> Dict[str, int]:
        """Apply ``inputs`` (gate id -> 0/1), settle, and read the outputs."""
        data = self.engine.data
        data[:] = 0
        for idx in self.circuit.input_ids:
            if idx not in inputs:
                raise ValueError(f"input gate {idx} not assigned")
            data[idx] = int(bool(inputs[idx]))
        self.engine.load(data=data)
        for _ in range(self._depth):
            self.engine.step(self._rule)
        values = self.engine.data
        return {name: int(values[idx]) for name, idx in self.circuit.outputs.items()}


def ripple_carry_adder(bits: int) -> Tuple[Circuit, List[int], List[int], int]:
    """Build a ``bits``-bit ripple-carry adder.

    Returns ``(circuit, a_inputs, b_inputs, carry_in)``; outputs are named
    ``sum0..sum{bits-1}`` and ``carry_out``.
    """
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    c = Circuit()
    a = [c.input(name=f"a{i}") for i in range(bits)]
    b = [c.input(name=f"b{i}") for i in range(bits)]
    carry = c.input(name="cin")
    cin = carry
    for i in range(bits):
        axb = c.xor_(a[i], b[i])
        s = c.xor_(axb, cin)
        c.output(f"sum{i}", s)
        and1 = c.and_(a[i], b[i])
        and2 = c.and_(axb, cin)
        cin = c.or_(and1, and2)
    c.output("carry_out", cin)
    return c, a, b, carry
