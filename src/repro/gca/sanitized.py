"""The CROW write barrier: a sanitizing interpreter engine.

This is the *runtime* half of the CROW rules in :mod:`repro.check`
(CROW001-003 prove the discipline syntactically; this module enforces
it on live planes).  It lives in :mod:`repro.gca` rather than
:mod:`repro.check` because it subclasses the interpreter engine --
the check layer itself is closed over stdlib+numpy (rule ARCH601) and
re-exports these names lazily via :mod:`repro.check.sanitizer`.

* :class:`SanitizedAutomaton` is the interpreter engine with a
  **write barrier** on its state planes.  While a cell's rule executes,
  the planes are locked to that cell: any store to a foreign index --
  however deviously reached (``engine._data[j] = x`` from inside a
  rule, a leaked snapshot, a mutated aux view) -- raises
  :class:`~repro.gca.errors.OwnerWriteViolation` at the exact write,
  turning the paper's CROW contract from documentation into an
  assertion.  It also re-counts every global read independently of the
  engine's :class:`~repro.gca.instrumentation.ReadRecorder` and raises
  :class:`SanitizerMismatch` when the two disagree -- a cross-check of
  the Table 1 congestion accounting itself.

Entry points: ``connected_components(..., sanitize=True)`` and
:func:`run_sanitized`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.gca.automaton import GlobalCellularAutomaton
from repro.gca.cell import CellUpdate, CellView, Neighbor
from repro.gca.errors import GCAError, OwnerWriteViolation
from repro.gca.instrumentation import GenerationStats
from repro.gca.rules import Rule


class SanitizerMismatch(GCAError):
    """The sanitizer's independent read tally disagrees with the
    engine's congestion instrumentation -- one of the two is lying."""


# ----------------------------------------------------------------------
# the CROW write barrier
# ----------------------------------------------------------------------
class _Guard:
    """Shared write-lock state of one automaton's planes.

    ``owner is None`` -- unlocked (engine bookkeeping between cells and
    between generations).  ``owner == i`` -- only element ``i`` may be
    stored; everything else raises.
    """

    __slots__ = ("owner",)

    def __init__(self) -> None:
        self.owner: Optional[int] = None


class GuardedArray(np.ndarray):
    """An int64 plane whose ``__setitem__`` enforces owner-only writes.

    The guard propagates through views (``__array_finalize__``) and the
    anchor records the plane's buffer span, so a write through *any*
    alias -- ``engine._pointer[1:]``, a reversed view, a smuggled
    slice -- is mapped back to the absolute cell index it lands on
    before the owner check.  Copies are private memory and exempt: a
    rule may scratch on them freely, and the moment a result is stored
    back into a real plane the barrier sees it.
    """

    _guard: Optional[_Guard] = None
    _anchor: Optional[Tuple[int, int]] = None  # plane buffer [start, end)

    def __array_finalize__(self, obj) -> None:
        if obj is not None:
            self._guard = getattr(obj, "_guard", None)
            self._anchor = getattr(obj, "_anchor", None)

    def __setitem__(self, key, value) -> None:
        guard = self._guard
        if (
            guard is not None
            and guard.owner is not None
            and self._overlaps_plane()
        ):
            self._check_owner_write(key, guard.owner)
        super().__setitem__(key, value)

    def _overlaps_plane(self) -> bool:
        """Whether this array's data lives inside the guarded plane.

        Copies allocate fresh memory outside the anchored span -- they
        are scratch space, not shared state.  Missing provenance stays
        conservative."""
        anchor = self._anchor
        if anchor is None:
            return True
        start, end = anchor
        addr = int(self.__array_interface__["data"][0])
        return start <= addr < end

    def _check_owner_write(self, key, owner: int) -> None:
        if isinstance(key, (int, np.integer)):
            index = int(key)
            if index < 0:
                index += self.shape[0]
            anchor = self._anchor
            if anchor is not None and self.ndim == 1:
                # map the view-local index to the absolute plane index
                addr = int(self.__array_interface__["data"][0])
                addr += index * self.strides[0]
                index = (addr - anchor[0]) // self.itemsize
            if index == owner:
                return
            raise OwnerWriteViolation(
                f"write to cell {index} while cell {owner} executes; "
                "CROW permits a cell to write only its own state"
            )
        raise OwnerWriteViolation(
            f"non-scalar write ({key!r}) to a guarded plane while cell "
            f"{owner} executes; CROW permits only the owner's element"
        )


def _guarded(arr: np.ndarray, guard: _Guard) -> GuardedArray:
    out = np.asarray(arr).view(GuardedArray)
    out._guard = guard
    start = int(out.__array_interface__["data"][0])
    out._anchor = (start, start + out.nbytes)
    return out


class _SanitizingRule(Rule):
    """Wraps the scheduled rule: locks the guard to the executing cell
    and re-counts reads independently of the engine's recorder."""

    def __init__(self, inner: Rule, guard: _Guard, tally: Dict[int, int]):
        self._inner = inner
        self._guard = guard
        self._tally = tally

    def is_active(self, cell: CellView) -> bool:
        return self._inner.is_active(cell)

    def pointer(self, cell: CellView) -> int:
        return self._inner.pointer(cell)

    def update(self, cell: CellView, neighbor: Neighbor) -> CellUpdate:
        return self._inner.update(cell, neighbor)

    def step(
        self, cell: CellView, read: Callable[[int], Neighbor]
    ) -> CellUpdate:
        # the wrapper is the barrier mechanism itself, not a GCA rule:
        # arming the guard and tallying reads is its entire job
        self._guard.owner = cell.index  # repro-check: allow[CROW002]
        tally = self._tally

        def counted_read(target: int) -> Neighbor:
            neighbor = read(target)
            tally[neighbor.index] = tally.get(neighbor.index, 0) + 1
            return neighbor

        return self._inner.step(cell, counted_read)


@dataclass
class SanitizerReport:
    """What a sanitized run observed (attached to the result)."""

    generations: int = 0
    total_reads: int = 0
    peak_congestion: int = 0
    mismatches: List[str] = field(default_factory=list)

    def note_generation(
        self, stats: GenerationStats, tally: Dict[int, int]
    ) -> None:
        self.generations += 1
        self.total_reads += sum(tally.values())
        self.peak_congestion = max(
            self.peak_congestion, max(tally.values(), default=0)
        )

    def summary(self) -> str:
        return (
            f"sanitizer: {self.generations} generations verified, "
            f"{self.total_reads} reads cross-checked, "
            f"peak congestion {self.peak_congestion}, "
            f"{len(self.mismatches)} mismatches"
        )


class SanitizedAutomaton(GlobalCellularAutomaton):
    """The interpreter engine with the CROW write barrier armed.

    Drop-in for :class:`~repro.gca.automaton.GlobalCellularAutomaton`
    (pass as ``engine_factory`` to
    :class:`~repro.core.machine.GCAConnectedComponents`).  Each
    :meth:`step` additionally cross-validates the generation's
    per-cell read counts against the engine's own recorder.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._guard = _Guard()
        self._data = _guarded(self._data, self._guard)
        self._pointer = _guarded(self._pointer, self._guard)
        self.sanitizer_report = SanitizerReport()

    def step(self, rule: Rule, label: Optional[str] = None) -> GenerationStats:
        tally: Dict[int, int] = {}
        wrapped = _SanitizingRule(rule, self._guard, tally)
        try:
            stats = super().step(wrapped, label=label)
        finally:
            self._guard.owner = None
            # the commit swapped in freshly-copied planes whose anchors
            # still describe the previous buffers; re-anchor so the next
            # generation guards the planes that are actually live
            self._data = _guarded(self._data, self._guard)
            self._pointer = _guarded(self._pointer, self._guard)
        if stats.reads_per_cell != tally:
            raise SanitizerMismatch(
                f"generation {stats.label!r}: engine recorded "
                f"{stats.total_reads} reads (max congestion "
                f"{stats.max_congestion}), sanitizer counted "
                f"{sum(tally.values())} (max "
                f"{max(tally.values(), default=0)})"
            )
        self.sanitizer_report.note_generation(stats, tally)
        return stats

    def load(self, data=None, pointers=None) -> None:
        super().load(data, pointers)
        self._data = _guarded(self._data, self._guard)
        self._pointer = _guarded(self._pointer, self._guard)


def run_sanitized(graph, iterations: Optional[int] = None):
    """Run the full interpreter solve under the CROW write barrier.

    Returns the usual
    :class:`~repro.core.machine.InterpreterResult`, with
    :attr:`~repro.core.machine.InterpreterResult.sanitizer` holding the
    :class:`SanitizerReport`.
    """
    from repro.core.machine import GCAConnectedComponents

    machine = GCAConnectedComponents(
        graph, iterations=iterations, engine_factory=SanitizedAutomaton
    )
    result = machine.run()
    # hand back a plain ndarray, not the guarded view
    result.labels = np.array(result.labels, dtype=np.int64)
    return result
