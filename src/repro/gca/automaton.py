"""The synchronous GCA engine.

A :class:`GlobalCellularAutomaton` owns a linear field of cells, each with a
data part ``d``, a pointer part ``p`` and optional immutable auxiliary
planes (per-cell constants such as the adjacency bit ``a``).  One call to
:meth:`GlobalCellularAutomaton.step` executes one *generation*:

1. every cell is shown an immutable snapshot of the field taken at the
   start of the generation,
2. active cells compute their pointer, read their global neighbour's
   ``(d*, p*)`` **from the snapshot**, and compute their next state,
3. all updates are committed at once.

Because reads come from the snapshot and writes go only to the cell itself,
the engine realises exactly the CROW (concurrent-read owner-write)
semantics the paper relies on; write conflicts are impossible by
construction and attempted violations raise
:class:`~repro.gca.errors.OwnerWriteViolation`-family errors.

The engine is deliberately an *interpreter*: it trades speed for
per-generation observability (active cells, read targets, congestion),
which is what the Table-1 reproduction needs.  The fast path for large
fields is :mod:`repro.core.vectorized`, which is cross-validated against
this interpreter.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.gca.cell import CellUpdate, CellView, Neighbor
from repro.gca.errors import (
    HandednessViolation,
    PointerRangeError,
    RuleResultError,
)
from repro.gca.instrumentation import AccessLog, GenerationStats, ReadRecorder
from repro.gca.rules import Rule
from repro.util.validation import check_positive


class GlobalCellularAutomaton:
    """A field of GCA cells plus the synchronous stepping machinery.

    Parameters
    ----------
    size:
        Number of cells in the (linearised) field.
    initial_data, initial_pointer:
        Initial values of the ``d`` and ``p`` planes; scalars broadcast.
    aux:
        Mapping from plane name to an integer array of length ``size``.
        Auxiliary planes are constants: rules can read them through
        :attr:`~repro.gca.cell.CellView.aux` but never write them.
    hands:
        Maximum number of global reads one cell may issue per generation
        (the paper's algorithms are one-handed, the default).
    record_access:
        Keep per-generation :class:`~repro.gca.instrumentation.GenerationStats`
        in :attr:`access_log`.  Costs memory proportional to reads; disable
        for pure-throughput runs.
    """

    def __init__(
        self,
        size: int,
        initial_data: object = 0,
        initial_pointer: object = 0,
        aux: Optional[Mapping[str, np.ndarray]] = None,
        hands: int = 1,
        record_access: bool = True,
    ):
        self._size = check_positive("size", size)
        self._hands = check_positive("hands", hands)
        self._data = self._plane("initial_data", initial_data)
        self._pointer = self._plane("initial_pointer", initial_pointer)
        self._check_pointers(self._pointer)
        self._aux: Dict[str, np.ndarray] = {}
        for name, plane in (aux or {}).items():
            arr = np.asarray(plane, dtype=np.int64)
            if arr.shape != (self._size,):
                raise ValueError(
                    f"aux plane {name!r} must have shape ({self._size},), "
                    f"got {arr.shape}"
                )
            arr = arr.copy()
            arr.setflags(write=False)
            self._aux[name] = arr
        self._generation = 0
        self._record_access = record_access
        self.access_log = AccessLog()
        # Aux planes are immutable: build each cell's aux mapping once
        # instead of per cell per generation (the interpreter's hot loop).
        from types import MappingProxyType

        self._aux_cache = [
            MappingProxyType(
                {name: int(plane[index]) for name, plane in self._aux.items()}
            )
            for index in range(self._size)
        ]

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _plane(self, name: str, value: object) -> np.ndarray:
        arr = np.asarray(value, dtype=np.int64)
        if arr.ndim == 0:
            return np.full(self._size, int(arr), dtype=np.int64)
        if arr.shape != (self._size,):
            raise ValueError(
                f"{name} must be a scalar or shape ({self._size},), got {arr.shape}"
            )
        return arr.copy()

    def _check_pointers(self, pointers: np.ndarray) -> None:
        bad = (pointers < 0) | (pointers >= self._size)
        if bad.any():
            first = int(np.flatnonzero(bad)[0])
            raise PointerRangeError(
                f"pointer of cell {first} is {int(pointers[first])}, "
                f"outside the field [0, {self._size})"
            )

    # ------------------------------------------------------------------
    # state access
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of cells."""
        return self._size

    @property
    def hands(self) -> int:
        """Declared handedness (max reads per cell per generation)."""
        return self._hands

    @property
    def generation(self) -> int:
        """Number of completed generations."""
        return self._generation

    @property
    def data(self) -> np.ndarray:
        """Copy of the data plane ``d``."""
        return self._data.copy()

    @property
    def pointers(self) -> np.ndarray:
        """Copy of the pointer plane ``p``."""
        return self._pointer.copy()

    def aux_plane(self, name: str) -> np.ndarray:
        """The (read-only) auxiliary plane ``name``."""
        if name not in self._aux:
            raise KeyError(
                f"unknown aux plane {name!r}; have {sorted(self._aux)}"
            )
        return self._aux[name]

    def view(self, index: int) -> CellView:
        """Immutable snapshot of cell ``index`` in the current state."""
        if not 0 <= index < self._size:
            raise IndexError(f"cell index {index} out of range [0, {self._size})")
        return CellView.make(
            index=index,
            data=int(self._data[index]),
            pointer=int(self._pointer[index]),
            aux={name: int(plane[index]) for name, plane in self._aux.items()},
            generation=self._generation,
        )

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def step(self, rule: Rule, label: Optional[str] = None) -> GenerationStats:
        """Execute one synchronous generation under ``rule``.

        Returns the generation's access statistics (also appended to
        :attr:`access_log` when ``record_access`` is enabled).
        """
        old_data = self._data
        old_pointer = self._pointer
        new_data = old_data.copy()
        new_pointer = old_pointer.copy()
        recorder = ReadRecorder()
        active = 0

        for index in range(self._size):
            cell = CellView(
                index=index,
                data=int(old_data[index]),
                pointer=int(old_pointer[index]),
                aux=self._aux_cache[index],
                generation=self._generation,
            )
            reads_left = [self._hands]

            def read(target: int, _reads_left=reads_left, _index=index) -> Neighbor:
                if _reads_left[0] <= 0:
                    raise HandednessViolation(
                        f"cell {_index} exceeded the {self._hands}-handed "
                        f"read budget in generation {self._generation}"
                    )
                _reads_left[0] -= 1
                if not 0 <= target < self._size:
                    raise PointerRangeError(
                        f"cell {_index} computed pointer {target}, outside "
                        f"the field [0, {self._size})"
                    )
                recorder.note(target)
                return Neighbor(
                    index=target,
                    data=int(old_data[target]),
                    pointer=int(old_pointer[target]),
                )

            update = rule.step(cell, read)
            if update is None or not isinstance(update, CellUpdate):
                raise RuleResultError(
                    f"rule returned {update!r} for cell {index}; expected a "
                    "CellUpdate"
                )
            if update.is_noop:
                continue
            active += 1
            if update.data is not None:
                new_data[index] = update.data
            if update.pointer is not None:
                if not 0 <= update.pointer < self._size:
                    raise PointerRangeError(
                        f"cell {index} stored pointer {update.pointer}, "
                        f"outside the field [0, {self._size})"
                    )
                new_pointer[index] = update.pointer

        self._data = new_data
        self._pointer = new_pointer
        self._generation += 1
        stats = recorder.finish(
            label=label or f"generation{self._generation - 1}",
            active_cells=active,
        )
        if self._record_access:
            self.access_log.record(stats)
        return stats

    def run(self, schedule: Sequence, labels: Optional[Sequence[str]] = None) -> List[GenerationStats]:
        """Execute a sequence of rules, one generation each."""
        if labels is not None and len(labels) != len(schedule):
            raise ValueError(
                f"got {len(labels)} labels for {len(schedule)} rules"
            )
        results = []
        for k, rule in enumerate(schedule):
            results.append(self.step(rule, label=labels[k] if labels else None))
        return results

    # ------------------------------------------------------------------
    # direct state manipulation (testing / initialisation)
    # ------------------------------------------------------------------
    def load(self, data: Optional[np.ndarray] = None, pointers: Optional[np.ndarray] = None) -> None:
        """Overwrite the ``d`` and/or ``p`` planes (initialisation hook)."""
        if data is not None:
            self._data = self._plane("data", data)
        if pointers is not None:
            pointers = self._plane("pointers", pointers)
            self._check_pointers(pointers)
            self._pointer = pointers

    def __repr__(self) -> str:
        return (
            f"GlobalCellularAutomaton(size={self._size}, hands={self._hands}, "
            f"generation={self._generation})"
        )
