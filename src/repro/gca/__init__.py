"""The Global Cellular Automaton (GCA) engine.

The GCA model [Hoffmann et al. 2000/2001] extends the classical CA: cells
still update synchronously under a local rule, but each cell carries an
*access information part* (here: one pointer) through which it may read the
state of **any** cell in the field, and the pointer may change from
generation to generation.  Reads are concurrent, writes are owner-only
(CROW semantics).

Public surface:

* :class:`~repro.gca.automaton.GlobalCellularAutomaton` -- the synchronous
  interpreter with full access instrumentation;
* :class:`~repro.gca.rules.Rule` / :class:`~repro.gca.rules.FunctionRule` /
  :class:`~repro.gca.rules.RuleTable` -- the pointer-operation /
  data-operation rule abstraction of the paper's Figure 2;
* :class:`~repro.gca.cell.CellView`, :class:`~repro.gca.cell.Neighbor`,
  :class:`~repro.gca.cell.CellUpdate` -- the per-cell value types;
* :mod:`~repro.gca.instrumentation` -- active-cell / read-access /
  congestion accounting (Table 1);
* :mod:`~repro.gca.ca` -- classical CAs embedded in the GCA engine.
"""

from repro.gca.algorithms import (
    gca_bitonic_sort,
    gca_list_ranking,
    gca_prefix_sum,
    gca_reduce,
)
from repro.gca.automaton import GlobalCellularAutomaton
from repro.gca.ca import CellularAutomaton, game_of_life_rule, majority_rule
from repro.gca.cell import KEEP, CellUpdate, CellView, Neighbor
from repro.gca.errors import (
    GCAError,
    HandednessViolation,
    OwnerWriteViolation,
    PointerRangeError,
    RuleResultError,
)
from repro.gca.instrumentation import AccessLog, GenerationStats, merge_stats
from repro.gca.numerical import (
    UNREACHED,
    gca_bfs_levels,
    gca_matvec,
    gca_sssp,
    generations_per_matvec,
    repeated_matvec,
)
from repro.gca.logic_simulation import (
    Circuit,
    GateKind,
    LogicSimulator,
    ripple_carry_adder,
)
from repro.gca.rules import FunctionRule, IdentityRule, Rule, RuleTable

__all__ = [
    "GlobalCellularAutomaton",
    "gca_bitonic_sort",
    "gca_list_ranking",
    "gca_prefix_sum",
    "gca_reduce",
    "CellularAutomaton",
    "game_of_life_rule",
    "majority_rule",
    "KEEP",
    "CellUpdate",
    "CellView",
    "Neighbor",
    "GCAError",
    "HandednessViolation",
    "OwnerWriteViolation",
    "PointerRangeError",
    "RuleResultError",
    "AccessLog",
    "UNREACHED",
    "gca_bfs_levels",
    "gca_matvec",
    "gca_sssp",
    "generations_per_matvec",
    "repeated_matvec",
    "Circuit",
    "GateKind",
    "LogicSimulator",
    "ripple_carry_adder",
    "GenerationStats",
    "merge_stats",
    "FunctionRule",
    "IdentityRule",
    "Rule",
    "RuleTable",
]
