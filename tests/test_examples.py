"""Smoke tests: every example script must run clean.

Examples are part of the public deliverable; this keeps them from rotting.
Each is executed in-process (``runpy``) with stdout captured, and its key
output markers are asserted.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

EXPECTED_MARKERS = {
    "quickstart.py": ["components:", "matches the union-find oracle: yes"],
    "image_labeling.py": ["foreground regions", "sanity checks passed"],
    "social_network.py": ["recovered 8 communities", "same_component"],
    "pram_vs_gca.py": ["CROW run: ok", "EREW run: rejected"],
    "hardware_explorer.py": ["23,051", "replication ablation"],
    "generation_trace.py": ["access patterns", "final labels"],
    "classical_ca.py": ["glider translation verified", "majority vote"],
    "reachability.py": ["transitive closure", "spanning forest"],
    "logic_circuit.py": ["ripple-carry adder", "all additions verified"],
    "full_reproduction.py": ["Table 1 reproduction", "Section 4 synthesis"],
    "shortest_paths.py": ["street grid", "sanity checks passed"],
}


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / name
    assert path.exists(), f"example {name} missing"
    runpy.run_path(str(path), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.parametrize("name", sorted(EXPECTED_MARKERS))
def test_example_runs(name, capsys):
    out = run_example(name, capsys)
    for marker in EXPECTED_MARKERS[name]:
        assert marker in out, f"{name}: missing output marker {marker!r}"


def test_every_example_is_covered():
    """A new example script must be added to the marker table."""
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXPECTED_MARKERS), (
        "examples on disk and the smoke-test table diverge"
    )
