"""Unit tests for the PRAM cost model."""

import pytest

from repro.pram.accounting import CostModel, StepCharge


class TestStepCharge:
    def test_work_equals_virtual(self):
        assert StepCharge(label=None, virtual_processors=7, time_units=2).work == 7


class TestCostModel:
    def test_accumulation(self):
        cm = CostModel(processors=4)
        cm.charge_step(8, 2, label="a")
        cm.charge_step(4, 1)
        assert cm.steps == 2
        assert cm.time == 3
        assert cm.work == 12
        assert cm.cost == 12  # 4 * 3

    def test_validation(self):
        cm = CostModel(processors=4)
        with pytest.raises(ValueError):
            cm.charge_step(-1, 1)
        with pytest.raises(ValueError):
            cm.charge_step(1, 0)

    def test_speedup_and_efficiency(self):
        cm = CostModel(processors=4)
        cm.charge_step(4, 1)
        cm.charge_step(4, 1)
        assert cm.speedup(8) == 4.0
        assert cm.efficiency(8) == 1.0

    def test_speedup_requires_time(self):
        with pytest.raises(ZeroDivisionError):
            CostModel(processors=1).speedup(10)

    def test_summary_mentions_figures(self):
        cm = CostModel(processors=2)
        cm.charge_step(2, 1)
        s = cm.summary()
        assert "p=2" in s and "work=2" in s
