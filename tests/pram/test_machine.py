"""Unit tests for the PRAM machine."""

import numpy as np
import pytest

from repro.pram.errors import ProgramError, WriteConflictError
from repro.pram.machine import PRAM
from repro.pram.memory import AccessMode, SharedMemory


def make_machine(p=4, mode=AccessMode.CREW, size=8):
    mem = SharedMemory(mode)
    mem.allocate("A", size, initial=list(range(size)), owners=np.arange(size))
    return PRAM(processors=p, memory=mem)


class TestParallelStep:
    def test_simd_body(self):
        m = make_machine()
        m.parallel_step(range(8), lambda ctx: ctx.write("A", ctx.pid, ctx.pid * 10))
        assert m.memory.array("A").tolist() == [i * 10 for i in range(8)]

    def test_synchronous_reads(self):
        # parallel prefix-style shift: A[i] <- A[i+1] must read old values
        m = make_machine()

        def body(ctx):
            ctx.write("A", ctx.pid, ctx.read("A", ctx.pid + 1))

        m.parallel_step(range(7), body)
        assert m.memory.array("A").tolist() == [1, 2, 3, 4, 5, 6, 7, 7]

    def test_subset_of_processors(self):
        m = make_machine()
        m.parallel_step([2, 5], lambda ctx: ctx.write("A", ctx.pid, -1))
        assert m.memory.array("A").tolist() == [0, 1, -1, 3, 4, -1, 6, 7]

    def test_negative_pid_rejected(self):
        m = make_machine()
        with pytest.raises(ProgramError):
            m.parallel_step([-1], lambda ctx: None)

    def test_conflicts_surface(self):
        m = make_machine()

        def body(ctx):
            ctx.write("A", 0, ctx.pid)

        with pytest.raises(WriteConflictError):
            m.parallel_step(range(2), body)

    def test_step_stats_recorded(self):
        m = make_machine()
        m.parallel_step(range(4), lambda ctx: ctx.read("A", 0) and None)
        assert len(m.step_stats) == 1
        assert m.step_stats[0].max_read_congestion == 4


class TestCostAccounting:
    def test_time_with_enough_processors(self):
        m = make_machine(p=8)
        m.parallel_step(range(8), lambda ctx: None)
        assert m.cost.time == 1
        assert m.cost.work == 8

    def test_brent_time_inflation(self):
        m = make_machine(p=2)
        m.parallel_step(range(8), lambda ctx: None)
        assert m.cost.time == 4  # ceil(8/2)

    def test_empty_step_costs_one(self):
        m = make_machine()
        m.parallel_step([], lambda ctx: None)
        assert m.cost.time == 1
        assert m.cost.work == 0

    def test_step_labels(self):
        m = make_machine()
        m.parallel_step(range(2), lambda ctx: None, label="phase1")
        assert m.cost.charges[0].label == "phase1"

    def test_sequential_helper(self):
        m = make_machine()
        holder = []
        m.sequential(lambda: holder.append(1))
        assert holder == [1]
        assert m.cost.steps == 0  # not charged

    def test_repr(self):
        assert "p=4" in repr(make_machine())


class TestProcessorsValidation:
    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            PRAM(processors=0)

    def test_default_memory(self):
        m = PRAM(processors=2)
        assert m.memory.mode is AccessMode.CREW
