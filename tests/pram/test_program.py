"""Tests for the PRAM program abstraction and the classic primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pram.machine import PRAM
from repro.pram.memory import AccessMode, SharedMemory
from repro.pram.errors import ReadConflictError
from repro.pram.program import (
    Program,
    list_ranking_program,
    prefix_sum_program,
    reduction_program,
    run_list_ranking,
    run_prefix_sum,
    run_reduction,
)
from repro.util.intmath import ceil_log2


class TestProgramAbstraction:
    def test_chaining_and_depth(self):
        prog = Program("p").add("a", [0], lambda ctx: None).add("b", [0, 1], lambda ctx: None)
        assert prog.depth == 2
        assert prog.work == 3

    def test_run_labels_cost(self):
        mem = SharedMemory()
        mem.allocate("X", 2)
        machine = PRAM(processors=2, memory=mem)
        Program("demo").add("s0", range(2), lambda ctx: None).run(machine)
        assert machine.cost.charges[0].label == "demo.s0"


class TestReduction:
    @pytest.mark.parametrize("op,expected", [("min", 1), ("max", 9), ("sum", 22)])
    def test_ops(self, op, expected):
        result, _ = run_reduction([4, 1, 9, 8], op_name=op)
        assert result == expected

    def test_single_element(self):
        result, machine = run_reduction([7])
        assert result == 7
        assert machine.cost.steps == 0

    def test_depth_is_log(self):
        for n in (2, 5, 8, 16, 33):
            assert reduction_program(n).depth == ceil_log2(n)

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            reduction_program(4, "median")

    def test_crow_clean(self):
        """Aligned tree reduction is owner-write: runs under CROW."""
        result, _ = run_reduction([5, 3, 8, 1], op_name="min", mode=AccessMode.CROW)
        assert result == 1

    def test_erew_clean(self):
        """Each element is touched by at most one processor per level."""
        result, _ = run_reduction([5, 3, 8, 1], op_name="min", mode=AccessMode.EREW)
        assert result == 1

    @given(st.lists(st.integers(-10**6, 10**6), min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_matches_builtin(self, values):
        assert run_reduction(values, "min")[0] == min(values)
        assert run_reduction(values, "sum")[0] == sum(values)


class TestPrefixSum:
    def test_known(self):
        sums, _ = run_prefix_sum([3, 1, 4, 1, 5])
        assert sums == [3, 4, 8, 9, 14]

    def test_depth(self):
        assert prefix_sum_program(16).depth == 4

    def test_erew_violation(self):
        """Hillis-Steele reads X[i] twice per step across neighbours --
        concurrent reads, so EREW rejects it while CREW accepts."""
        with pytest.raises(ReadConflictError):
            run_prefix_sum([1, 1, 1], mode=AccessMode.EREW)
        sums, _ = run_prefix_sum([1, 1, 1], mode=AccessMode.CREW)
        assert sums == [1, 2, 3]

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_matches_cumsum(self, values):
        sums, _ = run_prefix_sum(values)
        assert sums == np.cumsum(values).tolist()


class TestListRanking:
    def test_chain(self):
        # list 0 -> 1 -> 2 -> 3 (tail), ranks = hops to tail
        ranks, _ = run_list_ranking([1, 2, 3, 3])
        assert ranks == [3, 2, 1, 0]

    def test_reversed_chain(self):
        ranks, _ = run_list_ranking([0, 0, 1, 2])
        assert ranks == [0, 1, 2, 3]

    def test_singleton(self):
        ranks, _ = run_list_ranking([0])
        assert ranks == [0]

    def test_depth_logarithmic(self):
        n = 64
        machine = run_list_ranking(list(range(1, n)) + [n - 1])[1]
        assert machine.cost.steps == ceil_log2(n)

    @given(st.integers(min_value=1, max_value=64), st.randoms())
    @settings(max_examples=25, deadline=None)
    def test_random_permuted_lists(self, n, rnd):
        """Rank a list whose nodes are arbitrarily renumbered."""
        order = list(range(n))
        rnd.shuffle(order)
        successors = [0] * n
        for pos, node in enumerate(order[:-1]):
            successors[node] = order[pos + 1]
        successors[order[-1]] = order[-1]
        ranks, _ = run_list_ranking(successors)
        for pos, node in enumerate(order):
            assert ranks[node] == n - 1 - pos

    def test_rejects_bad_successor(self):
        with pytest.raises(ValueError):
            run_list_ranking([2, 0])
