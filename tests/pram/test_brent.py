"""Unit tests for Brent scheduling."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pram.brent import (
    block_schedule,
    brent_time_bound,
    round_robin_schedule,
    simulated_step_time,
)


class TestRoundRobin:
    def test_paper_round_robin(self):
        sched = round_robin_schedule(5, 2)
        assert [(a.virtual_pid, a.physical_pid, a.sub_round) for a in sched] == [
            (0, 0, 0), (1, 1, 0), (2, 0, 1), (3, 1, 1), (4, 0, 2),
        ]

    def test_empty(self):
        assert round_robin_schedule(0, 3) == []

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            round_robin_schedule(-1, 2)
        with pytest.raises(ValueError):
            round_robin_schedule(4, 0)

    @given(st.integers(0, 200), st.integers(1, 16))
    def test_every_virtual_assigned_once(self, v, p):
        sched = round_robin_schedule(v, p)
        assert sorted(a.virtual_pid for a in sched) == list(range(v))

    @given(st.integers(0, 200), st.integers(1, 16))
    def test_no_physical_double_booking(self, v, p):
        sched = round_robin_schedule(v, p)
        slots = [(a.physical_pid, a.sub_round) for a in sched]
        assert len(slots) == len(set(slots))

    @given(st.integers(1, 200), st.integers(1, 16))
    def test_rounds_match_ceiling(self, v, p):
        sched = round_robin_schedule(v, p)
        assert max(a.sub_round for a in sched) + 1 == simulated_step_time(v, p)


class TestBlockSchedule:
    def test_contiguity(self):
        sched = block_schedule(6, 2)  # 3 per processor
        by_phys = {}
        for a in sched:
            by_phys.setdefault(a.physical_pid, []).append(a.virtual_pid)
        assert by_phys == {0: [0, 1, 2], 1: [3, 4, 5]}

    @given(st.integers(0, 100), st.integers(1, 10))
    def test_complete_assignment(self, v, p):
        sched = block_schedule(v, p)
        assert sorted(a.virtual_pid for a in sched) == list(range(v))


class TestTimes:
    def test_simulated_step_time(self):
        assert [simulated_step_time(v, 4) for v in (0, 1, 4, 5, 8)] == [1, 1, 1, 2, 2]

    def test_brent_bound(self):
        assert brent_time_bound(100, 10, 10) == 20

    def test_bound_validation(self):
        with pytest.raises(ValueError):
            brent_time_bound(-1, 0, 1)

    @given(st.integers(0, 10**6), st.integers(0, 1000), st.integers(1, 64))
    def test_bound_at_least_depth(self, w, d, p):
        assert brent_time_bound(w, d, p) >= d
