"""Unit tests for the PRAM shared memory and access-mode enforcement."""

import numpy as np
import pytest

from repro.pram.errors import (
    OwnershipError,
    ProgramError,
    ReadConflictError,
    WriteConflictError,
)
from repro.pram.memory import AccessMode, CombinePolicy, SharedMemory


def fresh(mode=AccessMode.CREW, combine=CombinePolicy.ARBITRARY):
    mem = SharedMemory(mode=mode, combine=combine)
    mem.allocate("X", 4, owners=np.arange(4))
    return mem


class TestAllocation:
    def test_scalar_initial(self):
        mem = SharedMemory()
        mem.allocate("A", 3, initial=7)
        assert mem.array("A").tolist() == [7, 7, 7]

    def test_array_initial(self):
        mem = SharedMemory()
        mem.allocate("A", 3, initial=[1, 2, 3])
        assert mem.array("A").tolist() == [1, 2, 3]

    def test_duplicate_name_rejected(self):
        mem = fresh()
        with pytest.raises(ProgramError):
            mem.allocate("X", 2)

    def test_size_mismatch_rejected(self):
        mem = SharedMemory()
        with pytest.raises(ProgramError):
            mem.allocate("A", 3, initial=[1, 2])

    def test_owner_size_checked(self):
        mem = SharedMemory()
        with pytest.raises(ProgramError):
            mem.allocate("A", 3, owners=np.arange(2))

    def test_unknown_array(self):
        with pytest.raises(ProgramError):
            fresh().array("nope")

    def test_names(self):
        assert fresh().names() == ["X"]

    def test_mode_type_checked(self):
        with pytest.raises(TypeError):
            SharedMemory(mode="CREW")


class TestStepSemantics:
    def test_reads_see_step_start(self):
        mem = fresh()
        txn = mem.begin_step()
        txn.write(0, "X", 0, 99)
        assert txn.read(1, "X", 0) == 0      # buffered write invisible
        txn.commit()
        assert mem.array("X")[0] == 99        # visible after commit

    def test_swap_two_locations(self):
        mem = SharedMemory()
        mem.allocate("A", 2, initial=[1, 2])
        txn = mem.begin_step()
        txn.write(0, "A", 0, txn.read(0, "A", 1))
        txn.write(1, "A", 1, txn.read(1, "A", 0))
        txn.commit()
        assert mem.array("A").tolist() == [2, 1]

    def test_out_of_range_read(self):
        txn = fresh().begin_step()
        with pytest.raises(ProgramError):
            txn.read(0, "X", 4)

    def test_out_of_range_write(self):
        txn = fresh().begin_step()
        with pytest.raises(ProgramError):
            txn.write(0, "X", -1, 0)

    def test_stats(self):
        mem = fresh()
        txn = mem.begin_step()
        txn.read(0, "X", 2)
        txn.read(1, "X", 2)
        txn.write(3, "X", 3, 1)
        stats = txn.commit()
        assert stats.total_reads == 2
        assert stats.max_read_congestion == 2
        assert stats.total_writes == 1


class TestEREW:
    def test_concurrent_read_rejected(self):
        mem = fresh(AccessMode.EREW)
        txn = mem.begin_step()
        txn.read(0, "X", 1)
        txn.read(1, "X", 1)
        with pytest.raises(ReadConflictError):
            txn.commit()

    def test_exclusive_read_ok(self):
        mem = fresh(AccessMode.EREW)
        txn = mem.begin_step()
        txn.read(0, "X", 0)
        txn.read(1, "X", 1)
        txn.commit()

    def test_concurrent_write_rejected(self):
        mem = fresh(AccessMode.EREW)
        txn = mem.begin_step()
        txn.write(0, "X", 1, 5)
        txn.write(1, "X", 1, 6)
        with pytest.raises(WriteConflictError):
            txn.commit()


class TestCREW:
    def test_concurrent_read_ok(self):
        mem = fresh(AccessMode.CREW)
        txn = mem.begin_step()
        txn.read(0, "X", 1)
        txn.read(1, "X", 1)
        txn.commit()

    def test_concurrent_write_rejected(self):
        mem = fresh(AccessMode.CREW)
        txn = mem.begin_step()
        txn.write(0, "X", 1, 5)
        txn.write(1, "X", 1, 6)
        with pytest.raises(WriteConflictError):
            txn.commit()


class TestCROW:
    def test_owner_write_ok(self):
        mem = fresh(AccessMode.CROW)
        txn = mem.begin_step()
        txn.write(2, "X", 2, 5)
        txn.commit()
        assert mem.array("X")[2] == 5

    def test_foreign_write_rejected(self):
        mem = fresh(AccessMode.CROW)
        txn = mem.begin_step()
        txn.write(0, "X", 2, 5)
        with pytest.raises(OwnershipError):
            txn.commit()

    def test_unowned_array_rejected(self):
        mem = SharedMemory(AccessMode.CROW)
        mem.allocate("Y", 2)  # no owner map
        txn = mem.begin_step()
        txn.write(0, "Y", 0, 1)
        with pytest.raises(OwnershipError):
            txn.commit()

    def test_concurrent_reads_allowed(self):
        mem = fresh(AccessMode.CROW)
        txn = mem.begin_step()
        for pid in range(4):
            txn.read(pid, "X", 0)
        txn.commit()


class TestCRCW:
    def test_arbitrary_policy_deterministic(self):
        mem = fresh(AccessMode.CRCW, CombinePolicy.ARBITRARY)
        txn = mem.begin_step()
        txn.write(0, "X", 1, 100)
        txn.write(3, "X", 1, 300)
        txn.commit()
        assert mem.array("X")[1] == 300  # highest pid wins (documented)

    def test_priority_policy(self):
        mem = fresh(AccessMode.CRCW, CombinePolicy.PRIORITY)
        txn = mem.begin_step()
        txn.write(2, "X", 1, 200)
        txn.write(0, "X", 1, 100)
        txn.commit()
        assert mem.array("X")[1] == 100  # lowest pid wins

    def test_min_policy(self):
        mem = fresh(AccessMode.CRCW, CombinePolicy.MIN)
        txn = mem.begin_step()
        txn.write(0, "X", 1, 42)
        txn.write(1, "X", 1, 7)
        txn.commit()
        assert mem.array("X")[1] == 7
