"""Golden-output regression tests.

These pin the *exact rendered text* of the most important reports for one
small instance, so formatting or accounting regressions surface as crisp
diffs rather than as silently shifted numbers in the archived results.
The graph is deterministic (a fixed edge set), so every figure below is
fully reproducible.
"""

import textwrap

import numpy as np

from repro.analysis import (
    compare_table2,
    measured_total,
    render_table2,
    render_totals,
)
from repro.core.machine import connected_components_interpreter
from repro.core.trace import TraceRecorder
from repro.graphs.generators import from_edges
from repro.hardware import paper_report, synthesize

#: 4 nodes, two components {0,1,3} and {2}.
GRAPH = from_edges(4, [(0, 1), (1, 3)])


def run():
    return connected_components_interpreter(GRAPH)


class TestGoldenTables:
    def test_table2_render(self):
        res = run()
        expected = textwrap.dedent("""\
            Table 2 reproduction, n = 4
            step |      paper formula | predicted | measured | match
            -----+--------------------+-----------+----------+------
               1 |                  1 |         1 |        1 |   yes
               2 | 1 + log(n) + 1 + 1 |         5 |        5 |   yes
               3 | 1 + log(n) + 1 + 1 |         5 |        5 |   yes
               4 |                  1 |         1 |        1 |   yes
               5 |             log(n) |         2 |        2 |   yes
               6 |                  1 |         1 |        1 |   yes""")
        assert render_table2(4, compare_table2(4, res.access_log)) == expected

    def test_totals_render(self):
        res = run()
        expected = textwrap.dedent("""\
            Total generations: 1 + log(n) * (3 log(n) + 8)
            n | log n | iters | gens/iter | 1+log n(3log n+8) | measured | match
            --+-------+-------+-----------+-------------------+----------+------
            4 |     2 |     2 |        14 |                29 |       29 |   yes""")
        assert render_totals([measured_total(4, res.access_log)]) == expected

    def test_synthesis_summary(self):
        line = synthesize(16).summary()
        assert line == (
            "N x (N+1) = 272 cells; logic elements = 23,051; "
            "register bits = 2,192; clock frequency = 71 MHz"
        )
        assert line == paper_report().summary()


class TestGoldenTrace:
    def test_final_field_state(self):
        """The complete final D matrix of the deterministic instance."""
        rec = TraceRecorder(GRAPH)
        rec.run()
        final = rec.snapshots[-1].D_after
        # components {0,1,3} -> 0 and {2} -> 2; T archived in D_N
        assert final[:4, 0].tolist() == [0, 0, 2, 0]
        assert rec.labels.tolist() == [0, 0, 2, 0]

    def test_gen2_masking_snapshot(self):
        """After generation 2 the square holds the candidate sets:
        row j keeps C(i) only where A(j,i) = 1."""
        rec = TraceRecorder(GRAPH)
        rec.run()
        snap = next(s for s in rec.snapshots if s.label == "it0.gen2")
        inf = 20
        assert snap.D_after[:4, :].tolist() == [
            [inf, 1, inf, inf],     # node 0: neighbour 1
            [0, inf, inf, 3],       # node 1: neighbours 0, 3
            [inf, inf, inf, inf],   # node 2: isolated
            [inf, 1, inf, inf],     # node 3: neighbour 1
        ]

    def test_first_iteration_labels(self):
        """One iteration already merges the path 0-1-3."""
        rec = TraceRecorder(GRAPH)
        rec.run()
        snap = next(s for s in rec.snapshots if s.label == "it0.gen11")
        assert snap.D_after[:4, 0].tolist() == [0, 0, 2, 0]


class TestGoldenAccessCounts:
    def test_per_generation_summary(self):
        """(label, active, cells-read, max-delta) rows of iteration 0."""
        res = run()
        rows = [
            r for r in res.access_log.summary_rows()
            if r[0].startswith("it0.") or r[0] == "gen0"
        ]
        expected = [
            ("gen0", 20, 0, 0),
            ("it0.gen1", 20, 4, 5),
            ("it0.gen2", 16, 4, 4),
            ("it0.gen3.sub0", 8, 8, 1),
            ("it0.gen3.sub1", 4, 4, 1),
            ("it0.gen4", 4, 4, 1),
            ("it0.gen5", 20, 4, 5),
            ("it0.gen6", 16, 4, 4),
            ("it0.gen7.sub0", 8, 8, 1),
            ("it0.gen7.sub1", 4, 4, 1),
            ("it0.gen8", 4, 4, 1),
            ("it0.gen9", 20, 4, 5),
            ("it0.gen10.sub0", 4, 3, 2),
            ("it0.gen10.sub1", 4, 3, 2),
            ("it0.gen11", 4, 3, 2),
        ]
        assert rows == expected
