"""Tests for the butterfly router and Ranade-style combining."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.butterfly import (
    ButterflyNetwork,
    route_read_pattern,
)
from repro.util.intmath import ceil_log2


class TestConstruction:
    def test_stage_count(self):
        assert ButterflyNetwork(1).stages == 0
        assert ButterflyNetwork(8).stages == 3
        assert ButterflyNetwork(256).stages == 8

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            ButterflyNetwork(6)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ButterflyNetwork(0)


class TestDelivery:
    def test_single_request(self):
        r = ButterflyNetwork(8).route([(3, 5)])
        assert r.delivered == {5: 1}
        assert r.cycles == 4  # stages + ejection

    def test_identity_requests(self):
        p = 16
        r = ButterflyNetwork(p).route([(i, i) for i in range(p)])
        assert r.delivered == {i: 1 for i in range(p)}

    def test_conservation(self):
        """Every injected request is delivered exactly once (combining
        preserves weights)."""
        reqs = [(0, 3), (1, 3), (2, 3), (4, 7), (5, 3)]
        for combining in (True, False):
            r = ButterflyNetwork(8, combining=combining).route(reqs)
            assert r.delivered == {3: 4, 7: 1}
            assert r.total_requests == len(reqs)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ButterflyNetwork(4).route([(0, 9)])

    def test_trivial_network(self):
        r = ButterflyNetwork(1).route([(0, 0), (0, 0)])
        assert r.delivered == {0: 2}

    def test_empty_batch(self):
        r = ButterflyNetwork(8).route([])
        assert r.cycles == 0
        assert r.delivered == {}

    @given(st.integers(2, 5), st.data())
    @settings(max_examples=30, deadline=None)
    def test_random_batches_conserved(self, k, data):
        p = 1 << k
        count = data.draw(st.integers(1, 3 * p))
        reqs = [
            (data.draw(st.integers(0, p - 1)), data.draw(st.integers(0, p - 1)))
            for _ in range(count)
        ]
        expected: dict = {}
        for _s, d in reqs:
            expected[d] = expected.get(d, 0) + 1
        for combining in (True, False):
            r = ButterflyNetwork(p, combining=combining).route(reqs)
            assert r.delivered == expected


class TestRanadeClaim:
    """The Section 1 claim: combining turns broadcast reads from Theta(p)
    into Theta(log p) network cycles."""

    @pytest.mark.parametrize("p", [8, 16, 64, 256])
    def test_broadcast_with_combining_is_logarithmic(self, p):
        reqs = [(s, 0) for s in range(p)]
        r = ButterflyNetwork(p, combining=True).route(reqs)
        assert r.cycles <= ceil_log2(p) + 1

    @pytest.mark.parametrize("p", [8, 16, 64])
    def test_broadcast_without_combining_is_linear(self, p):
        reqs = [(s, 0) for s in range(p)]
        r = ButterflyNetwork(p, combining=False).route(reqs)
        assert r.cycles >= p  # the destination edge serialises

    def test_combining_never_slower(self):
        import random

        rnd = random.Random(0)
        p = 32
        for _ in range(5):
            reqs = [(s, rnd.randrange(p)) for s in range(p)]
            with_c = ButterflyNetwork(p, combining=True).route(reqs)
            without = ButterflyNetwork(p, combining=False).route(reqs)
            assert with_c.cycles <= without.cycles

    def test_permutation_is_fast_either_way(self):
        p = 64
        perm = [(i, (i * 7 + 3) % p) for i in range(p)]
        for combining in (True, False):
            r = ButterflyNetwork(p, combining=combining).route(perm)
            assert r.cycles <= 3 * ceil_log2(p)


class TestReadPatternBridge:
    def test_gca_generation_pattern(self):
        """Route a real generation's reads (gen 1 on n = 8)."""
        from repro.core.machine import connected_components_interpreter
        from repro.graphs.generators import path_graph

        log = connected_components_interpreter(path_graph(8)).access_log
        gen1 = log.by_label("it0.gen1")[0]
        with_c = route_read_pattern(gen1.reads_per_cell, combining=True)
        without = route_read_pattern(gen1.reads_per_cell, combining=False)
        assert with_c.total_requests == gen1.total_reads
        assert with_c.cycles < without.cycles

    def test_empty_pattern(self):
        r = route_read_pattern({})
        assert r.cycles == 0

    def test_explicit_ports(self):
        r = route_read_pattern({0: 3}, ports=8)
        assert r.ports == 8
        assert r.delivered == {0: 3}
