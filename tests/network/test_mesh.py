"""Tests for the mesh router."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.butterfly import ButterflyNetwork
from repro.network.mesh import MeshNetwork, square_mesh


class TestConstruction:
    def test_ports(self):
        assert MeshNetwork(3, 5).ports == 15

    def test_square_mesh_rounds_up(self):
        assert square_mesh(16).ports == 16
        assert square_mesh(17).ports == 25

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            MeshNetwork(0, 4)


class TestXYRouting:
    def test_next_hop_fixes_column_first(self):
        mesh = MeshNetwork(4, 4)
        # from (0,0) to (2,3): move along the row first
        assert mesh._next_hop(0, 11) == 1
        # column aligned: move along the column
        assert mesh._next_hop(3, 11) == 7

    def test_single_request_hop_count(self):
        mesh = MeshNetwork(4, 4)
        r = mesh.route([(0, 15)])  # corner to corner: 6 hops + ejection
        assert r.delivered == {15: 1}
        assert r.cycles == 7

    def test_local_delivery(self):
        r = MeshNetwork(2, 2).route([(3, 3)])
        assert r.cycles == 1
        assert r.delivered == {3: 1}


class TestDeliveryConservation:
    @given(st.integers(2, 4), st.integers(2, 4), st.data())
    @settings(max_examples=25, deadline=None)
    def test_random_batches(self, rows, cols, data):
        mesh_ports = rows * cols
        count = data.draw(st.integers(1, 2 * mesh_ports))
        reqs = [
            (data.draw(st.integers(0, mesh_ports - 1)),
             data.draw(st.integers(0, mesh_ports - 1)))
            for _ in range(count)
        ]
        expected: dict = {}
        for _s, d in reqs:
            expected[d] = expected.get(d, 0) + 1
        for combining in (True, False):
            r = MeshNetwork(rows, cols, combining=combining).route(reqs)
            assert r.delivered == expected

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            MeshNetwork(2, 2).route([(0, 7)])


class TestNetworkComparison:
    """The Section 1 performance ordering for broadcast reads:
    static wiring (1) < butterfly+combining (log p) < mesh+combining
    (sqrt p) << any network without combining (p)."""

    @pytest.mark.parametrize("p", [16, 64, 256])
    def test_broadcast_ordering(self, p):
        reqs = [(s, 0) for s in range(p)]
        bfly = ButterflyNetwork(p, combining=True).route(reqs).cycles
        mesh = square_mesh(p, combining=True).route(reqs).cycles
        plain = square_mesh(p, combining=False).route(reqs).cycles
        assert 1 < bfly < mesh < plain
        side = int(math.isqrt(p))
        assert mesh <= 2 * side          # Theta(sqrt p)
        assert plain >= p                # serialised at the destination

    def test_mesh_combining_never_slower(self):
        p = 36
        reqs = [(s, (s * 5) % p) for s in range(p)]
        with_c = square_mesh(p, combining=True).route(reqs).cycles
        without = square_mesh(p, combining=False).route(reqs).cycles
        assert with_c <= without
