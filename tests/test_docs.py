"""Documentation consistency tests.

Docs rot silently; these tests tie README/DESIGN/EXPERIMENTS/docs/ to the
code: every ``repro.*`` dotted module path mentioned must import, every
referenced bench file must exist, and the experiment index must map to
real bench modules.
"""

import importlib
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).parent.parent
DOC_FILES = [
    ROOT / "README.md",
    ROOT / "DESIGN.md",
    ROOT / "EXPERIMENTS.md",
    ROOT / "docs" / "gca_model.md",
    ROOT / "docs" / "algorithm_walkthrough.md",
    ROOT / "docs" / "api_guide.md",
]

MODULE_PATTERN = re.compile(r"`(repro(?:\.[a-z_0-9]+)+)`")
BENCH_PATTERN = re.compile(r"benchmarks/(bench_[a-z_0-9]+\.py)")


def mentioned_modules():
    names = set()
    for doc in DOC_FILES:
        for match in MODULE_PATTERN.finditer(doc.read_text()):
            names.add(match.group(1))
    return sorted(names)


def mentioned_benches():
    names = set()
    for doc in DOC_FILES:
        for match in BENCH_PATTERN.finditer(doc.read_text()):
            names.add(match.group(1))
    return sorted(names)


class TestDocFilesExist:
    @pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
    def test_present_and_nonempty(self, doc):
        assert doc.exists(), doc
        assert len(doc.read_text()) > 200

    def test_metadata_files(self):
        for name in ("LICENSE", "CITATION.cff", "CHANGELOG.md", "pyproject.toml"):
            assert (ROOT / name).exists(), name


class TestModuleReferences:
    def test_some_modules_are_mentioned(self):
        assert len(mentioned_modules()) >= 15

    @pytest.mark.parametrize("name", mentioned_modules())
    def test_mentioned_module_imports(self, name):
        # strip trailing attribute access like repro.core.field.FieldLayout
        parts = name.split(".")
        for cut in range(len(parts), 1, -1):
            candidate = ".".join(parts[:cut])
            try:
                importlib.import_module(candidate)
                return
            except ModuleNotFoundError:
                continue
        pytest.fail(f"documented path {name!r} resolves to no module")


class TestBenchReferences:
    def test_some_benches_are_mentioned(self):
        assert len(mentioned_benches()) >= 10

    @pytest.mark.parametrize("name", mentioned_benches())
    def test_mentioned_bench_exists(self, name):
        assert (ROOT / "benchmarks" / name).exists(), name

    def test_every_bench_is_documented(self):
        on_disk = {p.name for p in (ROOT / "benchmarks").glob("bench_*.py")}
        documented = set(mentioned_benches())
        missing = on_disk - documented
        assert not missing, f"benches missing from the docs: {sorted(missing)}"


class TestExperimentIndex:
    def test_design_ids_match_experiments(self):
        design = (ROOT / "DESIGN.md").read_text()
        experiments = (ROOT / "EXPERIMENTS.md").read_text()
        design_ids = set(re.findall(r"\| (E\d+) \|", design))
        experiment_ids = set(re.findall(r"## (E\d+) ", experiments))
        assert design_ids, "DESIGN.md lost its experiment table"
        # every DESIGN experiment with a paper artefact appears in EXPERIMENTS
        assert design_ids <= experiment_ids | design_ids
        assert experiment_ids <= design_ids, (
            f"EXPERIMENTS.md describes unknown ids: {experiment_ids - design_ids}"
        )
