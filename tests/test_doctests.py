"""Execute the library's docstring examples.

Several low-level modules carry ``>>>`` examples in their docstrings;
this test runs them so the documented behaviour cannot silently drift
from the implementation.
"""

import doctest

import pytest

import repro.graphs.adjacency
import repro.pram.brent
import repro.util.formatting
import repro.util.intmath
import repro.util.sentinels

MODULES = [
    repro.util.intmath,
    repro.util.sentinels,
    repro.util.formatting,
    repro.pram.brent,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its doctests"
    assert results.failed == 0, f"{module.__name__}: {results.failed} doctest failures"
