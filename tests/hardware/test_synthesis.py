"""Tests for the synthesis-report facade."""

from repro.hardware.synthesis import (
    EP2C70_LOGIC_ELEMENTS,
    largest_feasible_n,
    paper_report,
    sweep,
    synthesize,
)


class TestPaperReport:
    def test_published_values(self):
        r = paper_report()
        assert r.n == 16
        assert r.cells == 272
        assert r.logic_elements == 23051
        assert r.register_bits == 2192
        assert r.fmax_mhz == 71.0
        assert r.source == "paper"

    def test_summary_format(self):
        s = paper_report().summary()
        assert "272 cells" in s
        assert "23,051" in s
        assert "71 MHz" in s


class TestModelReport:
    def test_model_matches_paper_at_16(self):
        model, paper = synthesize(16), paper_report()
        assert model.cells == paper.cells
        assert model.logic_elements == paper.logic_elements
        assert model.register_bits == paper.register_bits
        assert model.fmax_mhz == paper.fmax_mhz

    def test_source_marked(self):
        assert synthesize(8).source == "model"

    def test_utilisation(self):
        assert 0.3 < synthesize(16).device_utilisation < 0.4  # 23051/68416


class TestSweep:
    def test_rows(self):
        reports = sweep([4, 8, 16])
        assert [r.n for r in reports] == [4, 8, 16]
        assert all(r.source == "model" for r in reports)


class TestFeasibility:
    def test_largest_feasible(self):
        n_max = largest_feasible_n()
        assert synthesize(n_max).logic_elements <= EP2C70_LOGIC_ELEMENTS
        assert synthesize(n_max + 1).logic_elements > EP2C70_LOGIC_ELEMENTS

    def test_paper_design_fits(self):
        assert largest_feasible_n() >= 16

    def test_custom_budget(self):
        small = largest_feasible_n(max_logic_elements=1000)
        assert small < largest_feasible_n()
