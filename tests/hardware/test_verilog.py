"""Tests for the Verilog generator (structural validation)."""

import pytest

from repro.hardware.cells import CellKind, count_cells, mux_input_summary
from repro.hardware.cost_model import data_width
from repro.hardware.verilog import (
    GENERATION_STATES,
    VerilogDesign,
    design_statistics,
    generate_verilog,
)


@pytest.fixture(scope="module")
def design4() -> VerilogDesign:
    return generate_verilog(4)


class TestStructure:
    def test_four_modules(self, design4):
        assert design_statistics(design4)["modules"] == 4
        for name in ("gca_cell_standard", "gca_cell_extended",
                     "gca_controller", "gca_field"):
            assert f"module {name}" in design4.source

    def test_instance_counts_match_cell_split(self, design4):
        stats = design_statistics(design4)
        counts = count_cells(4)
        assert stats["standard_instances"] == counts[CellKind.STANDARD]
        assert stats["extended_instances"] == counts[CellKind.EXTENDED]

    def test_case_arms(self, design4):
        stats = design_statistics(design4)
        # standard cells implement generations 0-9; extended all 12
        assert stats["case_arms_standard"] == 10
        assert stats["case_arms_extended"] == len(GENERATION_STATES)

    def test_register_width_matches_cost_model(self, design4):
        assert f"parameter WIDTH = {data_width(4)}" in design4.module("gca_cell_standard")

    def test_mux_arity_matches_analysis(self):
        for n in (4, 8):
            design = generate_verilog(n)
            expected = mux_input_summary(n)[CellKind.EXTENDED]
            assert f"parameter SOURCES = {expected}" in design.module("gca_cell_extended")

    def test_controller_log_parameter(self, design4):
        assert "parameter LOG_N = 2" in design4.module("gca_controller")

    def test_unknown_module_rejected(self, design4):
        with pytest.raises(KeyError):
            design4.module("missing")


class TestSemanticsMarkers:
    """The generated data operations must encode the Figure 2 semantics."""

    def test_standard_operations_present(self, design4):
        cell = design4.module("gca_cell_standard")
        assert "d_next = ROW;" in cell                       # gen 0
        assert "(a_bit && d != d_n)" in cell                 # gen 2
        assert "(d_star < d) ? d_star : d" in cell           # gens 3/7
        assert "(d == INF) ? d_n : d" in cell                # gens 4/8
        assert "(d_n == ROW && d != ROW)" in cell            # gen 6

    def test_extended_jump_operations(self, design4):
        cell = design4.module("gca_cell_extended")
        assert "column_c[d*WIDTH +: WIDTH]" in cell          # gen 10
        assert "(jump_t < d) ? jump_t : d" in cell           # gen 11

    def test_field_exports_first_column(self, design4):
        field = design4.module("gca_field")
        assert "assign labels" in field
        # first-column cells at linear indices 0, 4, 8, 12 for n = 4
        for idx in (0, 4, 8, 12):
            assert f"d[{idx}]" in field

    def test_controller_loops(self, design4):
        ctrl = design4.module("gca_controller")
        assert "sub_generation == LOG_N - 1" in ctrl
        assert "iteration == LOG_N - 1" in ctrl
        assert "done <= 1'b1" in ctrl


class TestScaling:
    def test_design_grows_quadratically(self):
        lines4 = design_statistics(generate_verilog(4))["lines"]
        lines8 = design_statistics(generate_verilog(8))["lines"]
        # cell instances dominate: 72/20 cells -> ~3x the lines
        assert 2.0 < lines8 / lines4 < 5.0

    def test_determinism(self):
        assert generate_verilog(4).source == generate_verilog(4).source

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            generate_verilog(0)
