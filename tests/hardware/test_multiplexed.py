"""Tests for the time-multiplexed architecture model."""

import pytest

from repro.core.schedule import total_generations
from repro.hardware.multiplexed import (
    best_cost_performance,
    estimate_multiplexed,
    frontier,
    generation_active_counts,
)
from repro.hardware.cost_model import estimate


class TestActiveCounts:
    def test_length_matches_schedule(self):
        assert len(generation_active_counts(8)) == total_generations(8)

    def test_known_values(self):
        counts = generation_active_counts(4)
        assert counts[0] == 20           # generation 0
        assert counts[1] == 20           # generation 1
        assert counts[2] == 16           # generation 2
        assert counts[3] == 8            # generation 3.sub0


class TestEstimates:
    def test_fully_parallel_limit(self):
        n = 8
        cells = n * (n + 1)
        est = estimate_multiplexed(n, cells)
        # one cycle per generation when every cell has its own unit
        assert est.total_cycles == total_generations(n)
        assert est.bram_bits == 0
        assert est.register_bits == estimate(n).register_bits

    def test_single_unit_limit(self):
        n = 8
        est = estimate_multiplexed(n, 1)
        # one cycle per active cell
        assert est.total_cycles == sum(generation_active_counts(n))
        assert est.bram_bits > 0

    def test_units_clamped_to_cells(self):
        n = 4
        huge = estimate_multiplexed(n, 10_000)
        full = estimate_multiplexed(n, n * (n + 1))
        assert huge.units == full.units

    def test_cycles_monotone_in_units(self):
        n = 16
        cycles = [estimate_multiplexed(n, p).total_cycles for p in (1, 4, 16, 64, 272)]
        assert cycles == sorted(cycles, reverse=True)

    def test_logic_monotone_in_units(self):
        n = 16
        les = [estimate_multiplexed(n, p).logic_elements for p in (1, 4, 16, 64)]
        assert les == sorted(les)

    def test_runtime_derived(self):
        est = estimate_multiplexed(8, 8)
        assert est.runtime_us == pytest.approx(est.total_cycles / est.fmax_mhz)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            estimate_multiplexed(0, 1)
        with pytest.raises(ValueError):
            estimate_multiplexed(4, 0)


class TestFrontier:
    def test_default_sweep_covers_extremes(self):
        points = frontier(8)
        units = [p.units for p in points]
        assert units[0] == 1
        assert units[-1] == 72

    def test_custom_units(self):
        points = frontier(8, unit_counts=[2, 9])
        assert [p.units for p in points] == [2, 9]

    def test_best_point_interior_or_extreme(self):
        best = best_cost_performance(16)
        assert 1 <= best.units <= 272
        all_points = frontier(16)
        assert best.cost_performance == min(p.cost_performance for p in all_points)

    def test_tradeoff_shape(self):
        """More units: strictly more logic, no more cycles -- a genuine
        Pareto frontier."""
        points = frontier(16)
        for a, b in zip(points, points[1:]):
            assert b.logic_elements > a.logic_elements
            assert b.total_cycles <= a.total_cycles
