"""Tests for the replication/rotation congestion optimisation."""

import numpy as np
import pytest

from repro.core.machine import connected_components_interpreter
from repro.graphs.generators import complete_graph, random_graph
from repro.hardware.replication import (
    ReadStrategy,
    ablation,
    build_replicas,
    generation_cycles,
    replica_congestion,
    replication_cost,
    rotated_position,
    run_cycles,
)


class TestRotation:
    def test_rotated_position_layout(self):
        # row i stores C(k) at column (i + k) mod n
        assert rotated_position(0, 3, 4) == 3
        assert rotated_position(2, 3, 4) == 1
        assert rotated_position(3, 0, 4) == 3

    def test_range_checked(self):
        with pytest.raises(IndexError):
            rotated_position(4, 0, 4)

    def test_build_replicas_contents(self):
        values = np.array([10, 20, 30, 40])
        R = build_replicas(values)
        for i in range(4):
            for k in range(4):
                assert R[i, rotated_position(i, k, 4)] == values[k]

    def test_each_row_is_permutation(self):
        R = build_replicas(np.arange(5))
        for row in R:
            assert sorted(row.tolist()) == list(range(5))

    def test_no_column_collision(self):
        """The rotation guarantees each row offset holds a distinct source,
        so per-row lookups never collide -- congestion 1."""
        n = 6
        for i in range(n):
            cols = [rotated_position(i, k, n) for k in range(n)]
            assert sorted(cols) == list(range(n))

    def test_replica_congestion_is_one(self):
        assert replica_congestion(16) == 1


class TestGenerationCycles:
    def test_serial(self):
        assert generation_cycles(0, ReadStrategy.SERIAL) == 1
        assert generation_cycles(1, ReadStrategy.SERIAL) == 1
        assert generation_cycles(9, ReadStrategy.SERIAL) == 9

    def test_tree(self):
        assert generation_cycles(1, ReadStrategy.TREE) == 1
        assert generation_cycles(8, ReadStrategy.TREE) == 4
        assert generation_cycles(9, ReadStrategy.TREE) == 5

    def test_replicated(self):
        assert generation_cycles(100, ReadStrategy.REPLICATED) == 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            generation_cycles(-1, ReadStrategy.SERIAL)


class TestRunCycles:
    def run_log(self, n=6):
        return connected_components_interpreter(random_graph(n, 0.4, seed=0)).access_log

    def test_strategy_ordering(self):
        """serial >= tree >= replicated on any real run."""
        log = self.run_log()
        serial = run_cycles(log, ReadStrategy.SERIAL)
        tree = run_cycles(log, ReadStrategy.TREE)
        replicated = run_cycles(log, ReadStrategy.REPLICATED)
        assert serial >= tree >= replicated

    def test_replicated_equals_generations(self):
        log = self.run_log()
        assert run_cycles(log, ReadStrategy.REPLICATED) == log.total_generations

    def test_serial_hurts_on_broadcast(self):
        """The broadcast generations (delta = n+1) dominate serial cost."""
        log = connected_components_interpreter(complete_graph(8)).access_log
        serial = run_cycles(log, ReadStrategy.SERIAL)
        assert serial > 2 * log.total_generations


class TestReplicationCost:
    def test_register_overhead(self):
        cost = replication_cost(16)
        # two arrays x n^2 entries x width
        assert cost.extra_register_bits == 2 * 256 * 8

    def test_all_cells_extended(self):
        cost = replication_cost(8)
        assert cost.replicated_extended_cells == 72
        assert cost.baseline_extended_cells == 8
        assert cost.extended_cell_increase == 64


class TestAblation:
    def test_rows_complete(self):
        log = connected_components_interpreter(random_graph(6, 0.4, seed=1)).access_log
        rows = ablation(log, 6)
        assert {r.strategy for r in rows} == set(ReadStrategy)

    def test_tradeoff_visible(self):
        """Replication wins cycles but costs registers and extended cells."""
        log = connected_components_interpreter(complete_graph(8)).access_log
        rows = {r.strategy: r for r in ablation(log, 8)}
        assert rows[ReadStrategy.REPLICATED].total_cycles < rows[ReadStrategy.SERIAL].total_cycles
        assert rows[ReadStrategy.REPLICATED].extra_register_bits > 0
        assert rows[ReadStrategy.SERIAL].extra_register_bits == 0
        assert rows[ReadStrategy.REPLICATED].extended_cells > rows[ReadStrategy.SERIAL].extended_cells
