"""Tests for cell classification and static source analysis."""

from repro.core.field import FieldLayout
from repro.hardware.cells import (
    CellKind,
    analyze_static_sources,
    cell_kind,
    count_cells,
    mux_input_summary,
)


class TestCellKind:
    def test_counts_match_section4(self):
        counts = count_cells(16)
        assert counts[CellKind.STANDARD] == 256
        assert counts[CellKind.EXTENDED] == 16
        assert sum(counts.values()) == 272  # the paper's N x (N+1)

    def test_extended_cells_are_first_column(self):
        lay = FieldLayout(4)
        for idx in range(lay.size):
            kind = cell_kind(lay, idx)
            if lay.is_first_column(idx) and not lay.is_last_row(idx):
                assert kind is CellKind.EXTENDED
            else:
                assert kind is CellKind.STANDARD


class TestStaticSources:
    def test_structure_count(self):
        structures = analyze_static_sources(4)
        assert len(structures) == 20

    def test_sources_within_field(self):
        lay = FieldLayout(8)
        for s in analyze_static_sources(8):
            for src in s.static_sources:
                assert 0 <= src < lay.size

    def test_extended_cells_have_data_mux(self):
        for s in analyze_static_sources(4):
            if s.kind is CellKind.EXTENDED:
                assert s.data_mux_inputs == 4
            else:
                assert s.data_mux_inputs == 0

    def test_every_cell_has_static_sources(self):
        """Every cell participates in at least the broadcast generations."""
        for s in analyze_static_sources(4):
            assert s.generation_mux_inputs >= 1

    def test_sources_grow_logarithmically(self):
        """The generation mux grows with log n (reduction strides), not n."""
        small = mux_input_summary(4)[CellKind.STANDARD]
        large = mux_input_summary(16)[CellKind.STANDARD]
        assert large <= small + 2  # + two extra reduction strides

    def test_mux_summary_keys(self):
        summary = mux_input_summary(8)
        assert set(summary) == {CellKind.STANDARD, CellKind.EXTENDED}
        assert summary[CellKind.EXTENDED] >= summary[CellKind.STANDARD] - 1
