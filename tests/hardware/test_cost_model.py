"""Tests for the calibrated FPGA cost model."""

import pytest

from repro.hardware.cost_model import (
    PAPER_CELLS,
    PAPER_FMAX_MHZ,
    PAPER_LOGIC_ELEMENTS,
    PAPER_N,
    PAPER_REGISTER_BITS,
    CostEstimate,
    critical_path_levels,
    data_width,
    estimate,
    fmax_mhz,
    logic_elements,
    logic_units,
    register_bits,
    total_logic_units,
)


class TestCalibrationPoint:
    """The model must reproduce the published n = 16 synthesis exactly."""

    def test_cells(self):
        assert estimate(PAPER_N).cells == PAPER_CELLS == 272

    def test_register_bits(self):
        assert register_bits(PAPER_N) == PAPER_REGISTER_BITS == 2192

    def test_logic_elements(self):
        assert logic_elements(PAPER_N) == PAPER_LOGIC_ELEMENTS == 23051

    def test_fmax(self):
        assert round(fmax_mhz(PAPER_N), 1) == PAPER_FMAX_MHZ == 71.0


class TestScalingShape:
    def test_cells_quadratic(self):
        assert estimate(8).cells == 72
        assert estimate(32).cells == 1056

    def test_register_bits_monotone(self):
        values = [register_bits(n) for n in (2, 4, 8, 16, 32, 64)]
        assert values == sorted(values)
        assert values[-1] > values[0]

    def test_logic_elements_monotone(self):
        values = [logic_elements(n) for n in (4, 8, 16, 32, 64)]
        assert values == sorted(values)

    def test_le_superlinear_in_cells(self):
        """LEs grow at least as fast as the cell count."""
        le_ratio = logic_elements(32) / logic_elements(16)
        cell_ratio = estimate(32).cells / estimate(16).cells
        assert le_ratio >= cell_ratio * 0.9

    def test_fmax_degrades_slowly(self):
        f4, f64 = fmax_mhz(4), fmax_mhz(64)
        assert f64 < f4
        assert f64 > f4 / 3  # logarithmic, not catastrophic

    def test_critical_path_grows_with_n(self):
        assert critical_path_levels(64) > critical_path_levels(4)


class TestComponents:
    def test_data_width(self):
        assert data_width(16) == 8
        assert data_width(4) == 4
        assert data_width(1) >= 2

    def test_logic_units_breakdown(self):
        units = logic_units(8)
        assert set(units) == {"generation_mux", "data_mux", "datapath", "control"}
        assert all(v > 0 for v in units.values())
        assert sum(units.values()) == total_logic_units(8)

    def test_datapath_dominated_by_cells(self):
        units = logic_units(16)
        assert units["generation_mux"] > units["control"]

    def test_estimate_dataclass(self):
        est = estimate(8)
        assert isinstance(est, CostEstimate)
        assert est.standard_cells + est.extended_cells == est.cells
        assert est.le_per_cell > 0

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            estimate(0)
