"""Exhaustive small-graph verification.

Property-based testing samples; this suite *enumerates*: every undirected
graph on up to 5 nodes (1 + 2 + 8 + 64 + 1024 = 1099 graphs) runs through
the vectorised GCA, the edge-list variant, the CRCW min-hooking variant
and the n-cell row machine, each checked against union-find.  Within this
universe the reproduction is not "tested" -- it is verified.
"""

import itertools

import numpy as np
import pytest

from repro.core.row_machine import connected_components_row_gca
from repro.core.vectorized import connected_components_vectorized
from repro.graphs.adjacency import AdjacencyMatrix
from repro.graphs.components import canonical_labels
from repro.hirschberg.edgelist import connected_components_edgelist
from repro.hirschberg.fastsv import fastsv_reference


def all_graphs(n: int):
    """Yield every undirected graph on ``n`` labelled nodes."""
    pairs = list(itertools.combinations(range(n), 2))
    for bits in range(1 << len(pairs)):
        m = np.zeros((n, n), dtype=np.int8)
        for k, (i, j) in enumerate(pairs):
            if bits >> k & 1:
                m[i, j] = m[j, i] = 1
        yield AdjacencyMatrix(m)


COUNTS = {1: 1, 2: 2, 3: 8, 4: 64, 5: 1024}


class TestEnumeration:
    @pytest.mark.parametrize("n,count", sorted(COUNTS.items()))
    def test_universe_size(self, n, count):
        assert sum(1 for _ in all_graphs(n)) == count


class TestExhaustiveCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_all_engines_all_graphs(self, n):
        for g in all_graphs(n):
            oracle = canonical_labels(g)
            assert np.array_equal(connected_components_vectorized(g), oracle), g.edge_list()
            assert np.array_equal(
                connected_components_edgelist(g).labels, oracle
            ), g.edge_list()
            assert np.array_equal(fastsv_reference(g).labels, oracle), g.edge_list()
            assert np.array_equal(connected_components_row_gca(g), oracle), g.edge_list()

    def test_all_five_node_graphs_vectorized(self):
        """All 1024 graphs on 5 nodes through the primary engine."""
        for g in all_graphs(5):
            assert np.array_equal(
                connected_components_vectorized(g), canonical_labels(g)
            ), g.edge_list()

    def test_all_five_node_graphs_edgelist(self):
        for g in all_graphs(5):
            assert np.array_equal(
                connected_components_edgelist(g).labels, canonical_labels(g)
            ), g.edge_list()


class TestExhaustiveClosure:
    def test_all_four_node_closures(self):
        from repro.extensions.transitive_closure import (
            transitive_closure_gca,
            transitive_closure_reference,
        )

        for g in all_graphs(4):
            got = transitive_closure_gca(g, record_access=False).closure
            assert np.array_equal(got, transitive_closure_reference(g)), g.edge_list()


class TestExhaustiveForest:
    def test_all_four_node_forests(self):
        from repro.extensions.spanning_forest import spanning_forest
        from repro.graphs.components import count_components
        from repro.graphs.union_find import UnionFind

        for g in all_graphs(4):
            res = spanning_forest(g)
            uf = UnionFind(4)
            for a, b in res.edges:
                assert g.has_edge(a, b)
                assert uf.union(a, b)
            assert res.edge_count == 4 - count_components(g), g.edge_list()
