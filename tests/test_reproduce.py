"""Tests for the acceptance harness (repro.reproduce)."""

import pytest

from repro.reproduce import CHECKS, CheckResult, render, run_all


class TestRegistry:
    def test_all_twenty_experiments(self):
        ids = [c[0] for c in CHECKS]
        assert ids == [f"E{k}" for k in range(1, 21)]

    def test_titles_unique(self):
        titles = [c[1] for c in CHECKS]
        assert len(titles) == len(set(titles))


class TestRunAll:
    def test_everything_passes(self):
        results = run_all()
        failures = [r for r in results if not r.passed]
        assert not failures, [f"{r.experiment}: {r.detail}" for r in failures]
        assert len(results) == 20

    def test_only_filter(self):
        results = run_all(only=["E3", "e6"])
        assert [r.experiment for r in results] == ["E3", "E6"]
        assert all(r.passed for r in results)

    def test_unknown_filter_yields_nothing(self):
        assert run_all(only=["E99"]) == []

    def test_crash_is_failure_not_abort(self, monkeypatch):
        import repro.reproduce as rp

        def boom():
            raise RuntimeError("injected")

        monkeypatch.setattr(
            rp, "CHECKS", [("EX", "exploding check", boom)]
        )
        results = rp.run_all()
        assert len(results) == 1
        assert not results[0].passed
        assert "injected" in results[0].detail


class TestRender:
    def test_pass_banner(self):
        results = [CheckResult("E1", "t", True, "ok", 0.001)]
        assert "ALL EXPERIMENTS PASS" in render(results)

    def test_fail_banner(self):
        results = [
            CheckResult("E1", "t", True, "ok", 0.0),
            CheckResult("E2", "u", False, "broken", 0.0),
        ]
        out = render(results)
        assert "1 EXPERIMENT(S) FAILED" in out
        assert "FAIL" in out


class TestCli:
    def test_reproduce_subset(self, capsys):
        from repro.cli import main

        assert main(["reproduce", "--only", "E3,E4,E14"]) == 0
        out = capsys.readouterr().out
        assert "E3" in out and "E14" in out and "PASS" in out

    def test_reproduce_empty_filter_fails(self, capsys):
        from repro.cli import main

        assert main(["reproduce", "--only", "E99"]) == 1
