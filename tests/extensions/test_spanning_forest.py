"""Tests for the spanning-forest extension."""

import numpy as np
from hypothesis import given, settings

from repro.extensions.spanning_forest import spanning_forest
from repro.graphs.components import canonical_labels, count_components
from repro.graphs.generators import (
    complete_graph,
    empty_graph,
    from_edges,
    path_graph,
    random_graph,
    worst_case_pairing,
)
from repro.graphs.union_find import UnionFind
from tests.conftest import adjacency_matrices


def assert_valid_forest(graph, result):
    """A valid spanning forest: edges of the graph, acyclic, spanning."""
    uf = UnionFind(graph.n)
    for a, b in result.edges:
        assert graph.has_edge(a, b), (a, b)
        assert uf.union(a, b), f"cycle through edge ({a}, {b})"
    assert uf.canonical_labels().tolist() == canonical_labels(graph).tolist()
    assert result.edge_count == graph.n - count_components(graph)


class TestKnownGraphs:
    def test_k2(self):
        res = spanning_forest(from_edges(2, [(0, 1)]))
        assert res.edges == [(0, 1)]

    def test_empty(self):
        res = spanning_forest(empty_graph(5))
        assert res.edges == []
        assert res.component_count == 5

    def test_path(self):
        g = path_graph(6)
        res = spanning_forest(g)
        assert_valid_forest(g, res)
        assert res.edge_count == 5

    def test_complete(self):
        g = complete_graph(7)
        res = spanning_forest(g)
        assert_valid_forest(g, res)
        assert res.edge_count == 6

    def test_pairing_resolves_mutual_hooks(self):
        """Every component is a mutual pair: only one edge per pair may
        survive (the smaller side's)."""
        g = worst_case_pairing(10)
        res = spanning_forest(g)
        assert_valid_forest(g, res)
        assert res.edges == [(0, 1), (2, 3), (4, 5), (6, 7), (8, 9)]


class TestStructure:
    def test_labels_match_reference(self, corpus_graph):
        res = spanning_forest(corpus_graph)
        assert np.array_equal(res.labels, canonical_labels(corpus_graph))

    def test_per_iteration_partition(self):
        g = random_graph(12, 0.2, seed=3)
        res = spanning_forest(g)
        flattened = [e for it in res.per_iteration_edges for e in it]
        assert flattened == res.edges

    def test_most_merging_in_first_iteration(self):
        """On the complete graph all hooking happens in iteration 1."""
        res = spanning_forest(complete_graph(8))
        assert len(res.per_iteration_edges[0]) == 7
        assert all(not it for it in res.per_iteration_edges[1:])


class TestProperties:
    @given(adjacency_matrices(max_n=16))
    @settings(max_examples=50)
    def test_always_valid_forest(self, g):
        assert_valid_forest(g, spanning_forest(g))

    @given(adjacency_matrices(max_n=12))
    @settings(max_examples=30)
    def test_edge_count_formula(self, g):
        res = spanning_forest(g)
        assert res.edge_count == g.n - count_components(g)
