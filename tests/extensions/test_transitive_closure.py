"""Tests for the transitive-closure extension."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.extensions.transitive_closure import (
    closure_generations,
    reachability_matrix,
    transitive_closure_gca,
    transitive_closure_reference,
)
from repro.graphs.components import canonical_labels
from repro.graphs.generators import (
    complete_graph,
    empty_graph,
    from_edges,
    path_graph,
    random_graph,
    union_of_cliques,
)
from tests.conftest import adjacency_matrices


class TestReference:
    def test_path_reaches_everything(self):
        B = transitive_closure_reference(path_graph(5))
        assert B.all()

    def test_empty_graph_identity(self):
        B = transitive_closure_reference(empty_graph(4))
        assert np.array_equal(B, np.eye(4, dtype=bool))

    def test_block_structure(self):
        B = transitive_closure_reference(union_of_cliques([2, 3]))
        assert B[0, 1] and not B[0, 2]
        assert B[2, 4] and not B[4, 1]

    def test_alias(self):
        g = path_graph(3)
        assert np.array_equal(
            reachability_matrix(g), transitive_closure_reference(g)
        )


class TestGCAClosure:
    def test_corpus(self, corpus_graph):
        res = transitive_closure_gca(corpus_graph, record_access=False)
        assert np.array_equal(
            res.closure, transitive_closure_reference(corpus_graph)
        )

    @given(adjacency_matrices(max_n=14))
    @settings(max_examples=40)
    def test_random(self, g):
        res = transitive_closure_gca(g, record_access=False)
        assert np.array_equal(res.closure, transitive_closure_reference(g))

    def test_reachable_query(self):
        res = transitive_closure_gca(from_edges(4, [(0, 1), (2, 3)]))
        assert res.reachable(0, 1)
        assert not res.reachable(1, 2)

    def test_components_from_closure(self):
        """Hirschberg'76's other direction: components follow from the
        closure by a row minimum."""
        g = random_graph(10, 0.2, seed=5)
        res = transitive_closure_gca(g, record_access=False)
        assert np.array_equal(res.component_labels(), canonical_labels(g))

    def test_generation_count(self):
        for n in (2, 4, 8, 9):
            res = transitive_closure_gca(path_graph(n))
            assert res.total_generations == closure_generations(n)

    def test_closure_generations_formula(self):
        assert closure_generations(8) == 3 * 9
        assert closure_generations(1) == 0

    def test_squarings_override(self):
        # one squaring covers paths of length <= 2 only
        g = path_graph(5)
        res = transitive_closure_gca(g, squarings=1, record_access=False)
        assert res.closure[0, 2] and not res.closure[0, 4]

    def test_rejects_negative_squarings(self):
        with pytest.raises(ValueError):
            transitive_closure_gca(path_graph(3), squarings=-1)


class TestAccessBalance:
    def test_rotation_balances_reads(self):
        """Every cell is read exactly twice per multiply sub-generation --
        the rotated middle index removes hot spots entirely."""
        res = transitive_closure_gca(complete_graph(6))
        for stats in res.access_log:
            if ".k" in stats.label:
                assert stats.max_congestion == 2, stats.label
                assert stats.total_reads == 2 * 36

    def test_monotonicity(self):
        """The closure only grows across squarings."""
        g = path_graph(9)
        prev = transitive_closure_gca(g, squarings=0, record_access=False).closure
        for s in range(1, 4):
            cur = transitive_closure_gca(g, squarings=s, record_access=False).closure
            assert (prev <= cur).all()
            prev = cur
