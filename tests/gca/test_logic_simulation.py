"""Tests for the GCA logic simulator."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gca.logic_simulation import (
    Circuit,
    GateKind,
    LogicSimulator,
    ripple_carry_adder,
)


def simple_circuit():
    """out = (a AND b) XOR (NOT c)"""
    c = Circuit()
    a, b, cc = c.input("a"), c.input("b"), c.input("c")
    g1 = c.and_(a, b)
    g2 = c.not_(cc)
    c.output("out", c.xor_(g1, g2))
    return c, (a, b, cc)


class TestCircuitBuilder:
    def test_gate_ids_sequential(self):
        c = Circuit()
        assert c.input() == 0
        assert c.not_(0) == 1
        assert c.and_(0, 1) == 2

    def test_arity_checked(self):
        c = Circuit()
        a = c.input()
        with pytest.raises(ValueError):
            c.gate(GateKind.NOT, a, a)
        with pytest.raises(ValueError):
            c.gate(GateKind.AND, a)

    def test_unknown_input_rejected(self):
        c = Circuit()
        with pytest.raises(IndexError):
            c.not_(5)

    def test_output_validation(self):
        c = Circuit()
        with pytest.raises(IndexError):
            c.output("x", 3)

    def test_depth(self):
        c, _ = simple_circuit()
        assert c.depth() == 2

    def test_depth_input_only(self):
        c = Circuit()
        c.input()
        assert c.depth() == 0

    def test_evaluate_oracle(self):
        c, (a, b, cc) = simple_circuit()
        assert c.evaluate({a: 1, b: 1, cc: 1})["out"] == 1  # 1 XOR 0
        assert c.evaluate({a: 0, b: 1, cc: 0})["out"] == 1  # 0 XOR 1
        assert c.evaluate({a: 1, b: 1, cc: 0})["out"] == 0  # 1 XOR 1

    def test_missing_input_rejected(self):
        c, (a, b, cc) = simple_circuit()
        with pytest.raises(ValueError):
            c.evaluate({a: 1})


class TestSimulator:
    def test_matches_oracle_exhaustively(self):
        c, inputs = simple_circuit()
        sim = LogicSimulator(c)
        for bits in itertools.product((0, 1), repeat=3):
            assignment = dict(zip(inputs, bits))
            assert sim.run(assignment) == c.evaluate(assignment), bits

    def test_depth_generations(self):
        c, _ = simple_circuit()
        assert LogicSimulator(c).depth == 2

    def test_all_gate_kinds(self):
        c = Circuit()
        a, b = c.input(), c.input()
        c.output("and", c.gate(GateKind.AND, a, b))
        c.output("or", c.gate(GateKind.OR, a, b))
        c.output("xor", c.gate(GateKind.XOR, a, b))
        c.output("nand", c.gate(GateKind.NAND, a, b))
        c.output("nor", c.gate(GateKind.NOR, a, b))
        c.output("not", c.gate(GateKind.NOT, a))
        sim = LogicSimulator(c)
        out = sim.run({a: 1, b: 0})
        assert out == {"and": 0, "or": 1, "xor": 1, "nand": 1, "nor": 0, "not": 0}

    def test_resimulation_with_new_inputs(self):
        c, inputs = simple_circuit()
        sim = LogicSimulator(c)
        first = sim.run(dict(zip(inputs, (1, 1, 1))))   # 1 XOR 0 = 1
        second = sim.run(dict(zip(inputs, (1, 1, 0))))  # 1 XOR 1 = 0
        assert first != second  # state fully re-initialised

    def test_missing_input(self):
        c, inputs = simple_circuit()
        with pytest.raises(ValueError):
            LogicSimulator(c).run({inputs[0]: 1})


class TestRippleCarryAdder:
    @pytest.mark.parametrize("bits", [1, 2, 4])
    def test_exhaustive(self, bits):
        c, a, b, cin = ripple_carry_adder(bits)
        sim = LogicSimulator(c)
        for av in range(2**bits):
            for bv in range(2**bits):
                for cv in (0, 1):
                    inputs = {a[i]: (av >> i) & 1 for i in range(bits)}
                    inputs.update({b[i]: (bv >> i) & 1 for i in range(bits)})
                    inputs[cin] = cv
                    out = sim.run(inputs)
                    got = sum(out[f"sum{i}"] << i for i in range(bits))
                    got += out["carry_out"] << bits
                    assert got == av + bv + cv

    def test_depth_linear_in_bits(self):
        d2 = LogicSimulator(ripple_carry_adder(2)[0]).depth
        d6 = LogicSimulator(ripple_carry_adder(6)[0]).depth
        assert d6 > d2
        assert d6 <= 2 + 2 * 6 + 1

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            ripple_carry_adder(0)


class TestRandomCircuits:
    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_random_dags_match_oracle(self, data):
        """Random acyclic circuits: simulator == recursive evaluation."""
        c = Circuit()
        rng_inputs = [c.input() for _ in range(data.draw(st.integers(1, 4)))]
        ids = list(rng_inputs)
        for _ in range(data.draw(st.integers(1, 12))):
            kind = data.draw(st.sampled_from(
                [GateKind.NOT, GateKind.AND, GateKind.OR, GateKind.XOR,
                 GateKind.NAND, GateKind.NOR]
            ))
            if kind is GateKind.NOT:
                src = data.draw(st.sampled_from(ids))
                ids.append(c.gate(kind, src))
            else:
                s1 = data.draw(st.sampled_from(ids))
                s2 = data.draw(st.sampled_from(ids))
                ids.append(c.gate(kind, s1, s2))
        c.output("out", ids[-1])
        assignment = {
            i: data.draw(st.integers(0, 1)) for i in rng_inputs
        }
        sim = LogicSimulator(c)
        assert sim.run(assignment) == c.evaluate(assignment)
