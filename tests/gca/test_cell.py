"""Unit tests for repro.gca.cell."""

import pytest

from repro.gca.cell import KEEP, CellUpdate, CellView, Neighbor


class TestCellView:
    def test_make_defaults(self):
        v = CellView.make(index=3, data=7, pointer=1)
        assert (v.index, v.data, v.pointer, v.generation) == (3, 7, 1, 0)
        assert dict(v.aux) == {}

    def test_aux_immutable(self):
        v = CellView.make(0, 0, 0, aux={"a": 1})
        with pytest.raises(TypeError):
            v.aux["a"] = 2

    def test_aux_defensive_copy(self):
        src = {"a": 1}
        v = CellView.make(0, 0, 0, aux=src)
        src["a"] = 99
        assert v.aux["a"] == 1

    def test_frozen(self):
        v = CellView.make(0, 0, 0)
        with pytest.raises(AttributeError):
            v.data = 5


class TestCellUpdate:
    def test_noop_detection(self):
        assert CellUpdate().is_noop
        assert KEEP.is_noop
        assert not CellUpdate(data=1).is_noop
        assert not CellUpdate(pointer=1).is_noop

    def test_data_zero_is_not_noop(self):
        assert not CellUpdate(data=0).is_noop


class TestNeighbor:
    def test_fields(self):
        nb = Neighbor(index=4, data=9, pointer=2)
        assert (nb.index, nb.data, nb.pointer) == (4, 9, 2)
