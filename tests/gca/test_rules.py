"""Unit tests for repro.gca.rules."""

import pytest

from repro.gca.cell import KEEP, CellUpdate, CellView, Neighbor
from repro.gca.rules import FunctionRule, IdentityRule, Rule, RuleTable


def view(index=0, data=0, pointer=0):
    return CellView.make(index=index, data=data, pointer=pointer)


def fake_read(target):
    return Neighbor(index=target, data=100 + target, pointer=0)


class CopyRule(Rule):
    """Reads cell 0 and copies its data."""

    def pointer(self, cell):
        return 0

    def update(self, cell, neighbor):
        return CellUpdate(data=neighbor.data)


class TestRuleProtocol:
    def test_default_active(self):
        assert CopyRule().is_active(view())

    def test_step_sequence(self):
        update = CopyRule().step(view(index=3), fake_read)
        assert update.data == 100

    def test_inactive_skips_read(self):
        calls = []

        def recording_read(t):
            calls.append(t)
            return fake_read(t)

        rule = FunctionRule(
            pointer_fn=lambda c: 0,
            update_fn=lambda c, nb: CellUpdate(data=nb.data),
            active_fn=lambda c: False,
        )
        assert rule.step(view(), recording_read) is KEEP
        assert calls == []


class TestFunctionRule:
    def test_behaviour(self):
        rule = FunctionRule(
            pointer_fn=lambda c: c.index + 1,
            update_fn=lambda c, nb: CellUpdate(data=nb.data + c.data),
            name="shift",
        )
        update = rule.step(view(index=2, data=5), fake_read)
        assert update.data == 100 + 3 + 5

    def test_repr_contains_name(self):
        assert "shift" in repr(FunctionRule(lambda c: 0, lambda c, nb: KEEP, name="shift"))


class TestIdentityRule:
    def test_never_active(self):
        rule = IdentityRule()
        assert not rule.is_active(view())
        assert rule.step(view(), fake_read) is KEEP


class TestRuleTable:
    def test_per_cell_dispatch(self):
        table = RuleTable([IdentityRule(), CopyRule()])
        assert table.step(view(index=0), fake_read) is KEEP
        assert table.step(view(index=1), fake_read).data == 100

    def test_is_active_dispatch(self):
        table = RuleTable([IdentityRule(), CopyRule()])
        assert not table.is_active(view(index=0))
        assert table.is_active(view(index=1))

    def test_len(self):
        assert len(RuleTable([IdentityRule()])) == 1

    def test_missing_rule_raises(self):
        table = RuleTable([CopyRule()])
        with pytest.raises(IndexError):
            table.step(view(index=5), fake_read)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RuleTable([])

    def test_pointer_and_update_dispatch(self):
        table = RuleTable([CopyRule(), CopyRule()])
        assert table.pointer(view(index=1)) == 0
        nb = Neighbor(index=0, data=42, pointer=0)
        assert table.update(view(index=0), nb).data == 42
