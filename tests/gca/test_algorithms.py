"""Tests for the GCA algorithm library (repro.gca.algorithms)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gca.algorithms import (
    bitonic_generations,
    gca_bitonic_sort,
    gca_list_ranking,
    gca_prefix_sum,
    gca_reduce,
)

ints = st.integers(min_value=-10**6, max_value=10**6)


class TestReduce:
    @pytest.mark.parametrize("op,expected", [("min", -2), ("max", 9), ("sum", 12)])
    def test_ops(self, op, expected):
        assert gca_reduce([5, -2, 9, 0], op) == expected

    def test_single(self):
        assert gca_reduce([42]) == 42

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            gca_reduce([1], "median")

    @given(st.lists(ints, min_size=1, max_size=40))
    @settings(max_examples=40)
    def test_matches_builtin(self, values):
        assert gca_reduce(values, "min") == min(values)
        assert gca_reduce(values, "max") == max(values)
        assert gca_reduce(values, "sum") == sum(values)


class TestPrefixSum:
    def test_known(self):
        assert gca_prefix_sum([1, 2, 3, 4]) == [1, 3, 6, 10]

    def test_single(self):
        assert gca_prefix_sum([7]) == [7]

    @given(st.lists(ints, min_size=1, max_size=50))
    @settings(max_examples=40)
    def test_matches_cumsum(self, values):
        assert gca_prefix_sum(values) == np.cumsum(values).tolist()


class TestListRanking:
    def test_chain(self):
        assert gca_list_ranking([1, 2, 3, 3]) == [3, 2, 1, 0]

    def test_single(self):
        assert gca_list_ranking([0]) == [0]

    def test_rejects_bad_successors(self):
        with pytest.raises(ValueError):
            gca_list_ranking([5, 0])

    def test_agrees_with_pram_version(self):
        from repro.pram.program import run_list_ranking

        successors = [3, 0, 1, 5, 2, 5]  # 4 -> 2 -> 1 -> 0 -> 3 -> 5 (tail)
        gca = gca_list_ranking(successors)
        pram, _ = run_list_ranking(successors)
        assert gca == pram

    @given(st.integers(min_value=1, max_value=32), st.randoms())
    @settings(max_examples=25)
    def test_random_lists(self, n, rnd):
        order = list(range(n))
        rnd.shuffle(order)
        successors = [0] * n
        for pos, node in enumerate(order[:-1]):
            successors[node] = order[pos + 1]
        successors[order[-1]] = order[-1]
        ranks = gca_list_ranking(successors)
        for pos, node in enumerate(order):
            assert ranks[node] == n - 1 - pos


class TestBitonicSort:
    def test_known(self):
        assert gca_bitonic_sort([3, 1, 2, 0]) == [0, 1, 2, 3]

    def test_duplicates(self):
        assert gca_bitonic_sort([2, 2, 1, 1]) == [1, 1, 2, 2]

    def test_already_sorted(self):
        assert gca_bitonic_sort([1, 2, 3, 4, 5, 6, 7, 8]) == list(range(1, 9))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            gca_bitonic_sort([1, 2, 3])

    def test_generation_count(self):
        assert bitonic_generations(16) == 4 * 5 // 2
        with pytest.raises(ValueError):
            bitonic_generations(12)

    @given(st.integers(min_value=0, max_value=5), st.randoms())
    @settings(max_examples=30)
    def test_random_powers_of_two(self, k, rnd):
        values = [rnd.randint(-100, 100) for _ in range(2**k)]
        assert gca_bitonic_sort(values) == sorted(values)
