"""Unit tests for the classical-CA embedding (repro.gca.ca)."""

import numpy as np
import pytest

from repro.gca.ca import (
    CellularAutomaton,
    game_of_life_rule,
    majority_rule,
)
from repro.gca.neighborhood import VON_NEUMANN


class TestGameOfLifeRule:
    def test_survival(self):
        assert game_of_life_rule(1, [1, 1, 0, 0, 0, 0, 0, 0]) == 1
        assert game_of_life_rule(1, [1, 1, 1, 0, 0, 0, 0, 0]) == 1

    def test_death(self):
        assert game_of_life_rule(1, [1, 0, 0, 0, 0, 0, 0, 0]) == 0  # loneliness
        assert game_of_life_rule(1, [1, 1, 1, 1, 0, 0, 0, 0]) == 0  # crowding

    def test_birth(self):
        assert game_of_life_rule(0, [1, 1, 1, 0, 0, 0, 0, 0]) == 1
        assert game_of_life_rule(0, [1, 1, 0, 0, 0, 0, 0, 0]) == 0


class TestMajorityRule:
    def test_majority_one(self):
        assert majority_rule(0, [1, 1, 1, 0]) == 1

    def test_majority_zero(self):
        assert majority_rule(1, [0, 0, 0, 1]) == 0

    def test_tie_goes_zero(self):
        # 5 votes total (4 nbrs + self): 2 ones of 5 -> 0
        assert majority_rule(1, [1, 0, 0, 0]) == 0


class TestCellularAutomaton:
    def test_block_still_life(self):
        grid = np.zeros((4, 4), dtype=np.int64)
        grid[1:3, 1:3] = 1  # the 2x2 block is a still life
        ca = CellularAutomaton(4, 4, game_of_life_rule, initial=grid)
        ca.step(3)
        assert np.array_equal(ca.grid, grid)

    def test_blinker_period_two(self):
        grid = np.zeros((5, 5), dtype=np.int64)
        grid[2, 1:4] = 1  # horizontal blinker
        ca = CellularAutomaton(5, 5, game_of_life_rule, initial=grid)
        ca.step()
        vertical = np.zeros((5, 5), dtype=np.int64)
        vertical[1:4, 2] = 1
        assert np.array_equal(ca.grid, vertical)
        ca.step()
        assert np.array_equal(ca.grid, grid)

    def test_generation_counter(self):
        ca = CellularAutomaton(3, 3, game_of_life_rule)
        assert ca.generation == 0
        ca.step(2)
        assert ca.generation == 2

    def test_custom_neighborhood(self):
        # Von-Neumann majority on an all-ones grid stays all ones.
        ones = np.ones((3, 3), dtype=np.int64)
        ca = CellularAutomaton(3, 3, majority_rule, offsets=VON_NEUMANN, initial=ones)
        ca.step()
        assert np.array_equal(ca.grid, ones)

    def test_initial_shape_checked(self):
        with pytest.raises(ValueError):
            CellularAutomaton(3, 3, game_of_life_rule, initial=np.zeros((2, 2)))

    def test_step_count_checked(self):
        ca = CellularAutomaton(3, 3, game_of_life_rule)
        with pytest.raises(ValueError):
            ca.step(0)

    def test_empty_grid_stays_empty(self):
        ca = CellularAutomaton(4, 4, game_of_life_rule)
        ca.step(5)
        assert ca.grid.sum() == 0
