"""Unit tests for repro.gca.neighborhood."""

import pytest

from repro.gca.neighborhood import (
    MOORE,
    VON_NEUMANN,
    clamp_neighbors,
    col_of,
    linear_index,
    row_of,
    wrap_neighbors,
)


class TestAddressArithmetic:
    def test_linear_index(self):
        assert linear_index(0, 0, 4) == 0
        assert linear_index(2, 3, 4) == 11

    def test_row_col_roundtrip(self):
        for idx in range(20):
            assert linear_index(row_of(idx, 5), col_of(idx, 5), 5) == idx

    def test_range_checks(self):
        with pytest.raises(IndexError):
            linear_index(0, 4, 4)
        with pytest.raises(IndexError):
            linear_index(-1, 0, 4)
        with pytest.raises(IndexError):
            row_of(-1, 4)


class TestNeighborhoods:
    def test_sizes(self):
        assert len(VON_NEUMANN) == 4
        assert len(MOORE) == 8

    def test_wrap_interior(self):
        # 3x3 grid, center cell 4: Von-Neumann neighbours are 1,7,3,5
        assert sorted(wrap_neighbors(4, 3, 3, VON_NEUMANN)) == [1, 3, 5, 7]

    def test_wrap_corner(self):
        # corner wraps toroidally: cell 0 of a 3x3 grid
        nbs = wrap_neighbors(0, 3, 3, VON_NEUMANN)
        assert sorted(nbs) == [1, 2, 3, 6]

    def test_clamp_corner(self):
        nbs = clamp_neighbors(0, 3, 3, VON_NEUMANN)
        assert sorted(nbs) == [1, 3]

    def test_clamp_interior_full(self):
        assert len(clamp_neighbors(4, 3, 3, MOORE)) == 8

    def test_index_checked(self):
        with pytest.raises(IndexError):
            wrap_neighbors(9, 3, 3, VON_NEUMANN)
