"""Unit tests for repro.gca.instrumentation."""

import numpy as np

from repro.gca.instrumentation import (
    AccessLog,
    GenerationStats,
    ReadRecorder,
    merge_stats,
)


def stats(label="g", active=0, reads=None):
    return GenerationStats(label=label, active_cells=active, reads_per_cell=reads or {})


class TestGenerationStats:
    def test_totals(self):
        s = stats(active=4, reads={0: 3, 1: 1})
        assert s.total_reads == 4
        assert s.cells_read == 2
        assert s.max_congestion == 3

    def test_empty(self):
        s = stats()
        assert s.max_congestion == 0
        assert s.congestion_histogram() == []

    def test_histogram_shape(self):
        s = stats(reads={0: 5, 1: 5, 2: 1})
        assert s.congestion_histogram() == [(2, 5), (1, 1)]


class TestLazyReadCounts:
    """The dense-array construction path used by the vectorised engine."""

    def counts_stats(self, counts, label="g", active=3):
        return GenerationStats(label=label, active_cells=active,
                               read_counts=np.asarray(counts, dtype=np.int64))

    def test_aggregates_without_dict(self):
        s = self.counts_stats([3, 0, 1, 0])
        assert s.total_reads == 4
        assert s.cells_read == 2
        assert s.max_congestion == 3
        assert s.congestion_histogram() == [(1, 3), (1, 1)]

    def test_dict_materialised_lazily(self):
        s = self.counts_stats([0, 2, 0, 1])
        assert s._reads_dict is None
        assert s.reads_per_cell == {1: 2, 3: 1}
        assert s._reads_dict is not None
        assert s.reads_per_cell is s.reads_per_cell  # cached

    def test_counts_and_dict_paths_agree(self):
        counts = [0, 4, 1, 0, 2]
        lazy = self.counts_stats(counts)
        eager = GenerationStats(label="g", active_cells=3,
                                reads_per_cell={1: 4, 2: 1, 4: 2})
        assert lazy == eager
        assert lazy.total_reads == eager.total_reads
        assert lazy.max_congestion == eager.max_congestion
        assert lazy.congestion_histogram() == eager.congestion_histogram()

    def test_empty_counts(self):
        s = self.counts_stats(np.zeros(0, dtype=np.int64))
        assert s.total_reads == 0
        assert s.max_congestion == 0
        assert s.congestion_histogram() == []
        assert s.reads_per_cell == {}

    def test_both_sources_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            GenerationStats(label="g", active_cells=1,
                            reads_per_cell={0: 1},
                            read_counts=np.array([1]))

    def test_repr_and_eq(self):
        a = self.counts_stats([1, 0], label="x", active=1)
        b = GenerationStats(label="x", active_cells=1, reads_per_cell={0: 1})
        assert a == b
        assert "x" in repr(a)


class TestAccessLog:
    def test_accumulation(self):
        log = AccessLog()
        log.record(stats("a", active=2, reads={0: 1}))
        log.record(stats("b", active=3, reads={0: 2, 1: 1}))
        assert len(log) == 2
        assert log.total_generations == 2
        assert log.total_reads == 4
        assert log.total_active == 5
        assert log.peak_congestion == 2

    def test_by_label_prefix(self):
        log = AccessLog()
        log.record(stats("gen3.sub0"))
        log.record(stats("gen3.sub1"))
        log.record(stats("gen30"))
        assert len(log.by_label("gen3")) == 2

    def test_by_label_exact(self):
        log = AccessLog()
        log.record(stats("gen4"))
        assert len(log.by_label("gen4")) == 1

    def test_summary_rows(self):
        log = AccessLog()
        log.record(stats("x", active=1, reads={5: 2}))
        assert log.summary_rows() == [("x", 1, 1, 2)]

    def test_iteration(self):
        log = AccessLog()
        log.record(stats("a"))
        assert [g.label for g in log] == ["a"]

    def test_empty_peak(self):
        assert AccessLog().peak_congestion == 0


class TestMergeStats:
    def test_sums_activity_and_reads(self):
        merged = merge_stats(
            "gen3",
            [
                stats("gen3.sub0", active=4, reads={0: 1, 2: 1}),
                stats("gen3.sub1", active=2, reads={0: 1}),
            ],
        )
        assert merged.active_cells == 6
        assert merged.reads_per_cell == {0: 2, 2: 1}

    def test_empty_merge(self):
        merged = merge_stats("x", [])
        assert merged.active_cells == 0
        assert merged.reads_per_cell == {}


class TestReadRecorder:
    def test_counts(self):
        rec = ReadRecorder()
        rec.note(3)
        rec.note(3)
        rec.note(1)
        s = rec.finish("lbl", active_cells=2)
        assert s.reads_per_cell == {3: 2, 1: 1}
        assert s.label == "lbl"
        assert s.active_cells == 2
