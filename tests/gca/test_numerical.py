"""Tests for the semiring matrix fabric (repro.gca.numerical)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gca.numerical import (
    UNREACHED,
    gca_bfs_levels,
    gca_matvec,
    gca_sssp,
    generations_per_matvec,
    repeated_matvec,
)
from repro.graphs.generators import (
    complete_graph,
    empty_graph,
    path_graph,
    random_graph,
)
from repro.graphs.metrics import bfs_distances
from tests.conftest import adjacency_matrices


@st.composite
def int_matvec_cases(draw, max_n=12):
    n = draw(st.integers(1, max_n))
    M = np.array(
        draw(st.lists(
            st.lists(st.integers(-20, 20), min_size=n, max_size=n),
            min_size=n, max_size=n,
        )),
        dtype=np.int64,
    )
    x = np.array(draw(st.lists(st.integers(-20, 20), min_size=n, max_size=n)),
                 dtype=np.int64)
    return M, x


class TestPlusTimes:
    @given(int_matvec_cases())
    @settings(max_examples=50)
    def test_matches_numpy(self, case):
        M, x = case
        assert np.array_equal(gca_matvec(M, x).vector, M @ x)

    def test_generation_budget(self):
        M = np.zeros((8, 8), dtype=np.int64)
        assert gca_matvec(M, np.zeros(8)).generations == 2 + 3
        assert generations_per_matvec(1) == 2

    def test_shape_checked(self):
        with pytest.raises(ValueError):
            gca_matvec(np.zeros((3, 3)), np.zeros(4))
        with pytest.raises(ValueError):
            gca_matvec(np.zeros((2, 3)), np.zeros(3))

    def test_unknown_semiring(self):
        with pytest.raises(ValueError):
            gca_matvec(np.zeros((2, 2)), np.zeros(2), semiring="max_plus")

    def test_repeated_walk_counting(self):
        """(A^k e_s)[t] counts length-k walks s -> t."""
        A = path_graph(5).matrix.astype(np.int64)
        e0 = np.array([1, 0, 0, 0, 0], dtype=np.int64)
        two = repeated_matvec(A, e0, 2).vector
        assert np.array_equal(two, A @ A @ e0)
        assert two[0] == 1 and two[2] == 1 and two[1] == 0

    def test_repeated_rejects_negative(self):
        with pytest.raises(ValueError):
            repeated_matvec(np.zeros((2, 2)), np.zeros(2), -1)


class TestOrAndBfs:
    def test_corpus(self, corpus_graph):
        levels, _ = gca_bfs_levels(corpus_graph, 0)
        assert np.array_equal(levels, bfs_distances(corpus_graph, 0))

    @given(adjacency_matrices(min_n=2, max_n=14), st.data())
    @settings(max_examples=40)
    def test_random_sources(self, g, data):
        src = data.draw(st.integers(0, g.n - 1))
        levels, _ = gca_bfs_levels(g, src)
        assert np.array_equal(levels, bfs_distances(g, src))

    def test_generation_cost_tracks_diameter(self):
        levels, gens = gca_bfs_levels(path_graph(8), 0)
        per = generations_per_matvec(8)
        # 7 frontier expansions + 1 fixpoint-detecting product
        assert gens == 8 * per

    def test_isolated_source(self):
        levels, _ = gca_bfs_levels(empty_graph(4), 2)
        assert levels.tolist() == [-1, -1, 0, -1]

    def test_source_checked(self):
        with pytest.raises(IndexError):
            gca_bfs_levels(empty_graph(3), 3)


class TestMinPlusSssp:
    def oracle(self, W, source):
        from scipy.sparse import csr_matrix
        from scipy.sparse.csgraph import dijkstra

        sd = dijkstra(csr_matrix(np.where(W > 0, W, 0)), directed=False,
                      indices=source)
        return np.where(np.isinf(sd), UNREACHED, sd).astype(np.int64)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_weighted(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 14))
        W = rng.integers(0, 9, size=(n, n))
        W = np.triu(W, 1)
        W = W + W.T
        src = int(rng.integers(0, n))
        dist, _ = gca_sssp(W, src)
        assert np.array_equal(dist, self.oracle(W, src))

    def test_unweighted_equals_bfs(self):
        g = random_graph(10, 0.3, seed=1)
        dist, _ = gca_sssp(g.matrix, 0)
        levels = bfs_distances(g, 0)
        expected = np.where(levels < 0, UNREACHED, levels)
        assert np.array_equal(dist, expected)

    def test_unreachable_marked(self):
        W = np.zeros((3, 3), dtype=np.int64)
        W[0, 1] = W[1, 0] = 5
        dist, _ = gca_sssp(W, 0)
        assert dist.tolist() == [0, 5, UNREACHED]

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            gca_sssp(np.array([[0, -1], [-1, 0]]), 0)

    def test_triangle_shortcut(self):
        # direct edge 0-2 weight 10 vs path 0-1-2 weight 2+3
        W = np.array([
            [0, 2, 10],
            [2, 0, 3],
            [10, 3, 0],
        ])
        dist, _ = gca_sssp(W, 0)
        assert dist.tolist() == [0, 2, 5]

    def test_relaxation_bounded_by_n_products(self):
        g = complete_graph(8)
        _dist, gens = gca_sssp(g.matrix, 0)
        assert gens <= 8 * generations_per_matvec(8)
