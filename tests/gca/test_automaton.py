"""Unit tests for the GlobalCellularAutomaton engine."""

import numpy as np
import pytest

from repro.gca.automaton import GlobalCellularAutomaton
from repro.gca.cell import KEEP, CellUpdate
from repro.gca.errors import (
    HandednessViolation,
    PointerRangeError,
    RuleResultError,
)
from repro.gca.rules import FunctionRule, IdentityRule, Rule


def shift_rule():
    """Every cell copies its right neighbour's data (wrap-around)."""

    def pointer(cell):
        return (cell.index + 1) % 5

    def update(cell, nb):
        return CellUpdate(data=nb.data)

    return FunctionRule(pointer, update, name="shift")


class TestConstruction:
    def test_scalar_broadcast(self):
        a = GlobalCellularAutomaton(size=4, initial_data=7)
        assert a.data.tolist() == [7, 7, 7, 7]

    def test_array_initial(self):
        a = GlobalCellularAutomaton(size=3, initial_data=[1, 2, 3])
        assert a.data.tolist() == [1, 2, 3]

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            GlobalCellularAutomaton(size=3, initial_data=[1, 2])

    def test_bad_initial_pointer_rejected(self):
        with pytest.raises(PointerRangeError):
            GlobalCellularAutomaton(size=3, initial_pointer=[0, 1, 3])

    def test_aux_plane_shape_checked(self):
        with pytest.raises(ValueError):
            GlobalCellularAutomaton(size=3, aux={"a": np.zeros(2)})

    def test_aux_plane_readonly(self):
        a = GlobalCellularAutomaton(size=3, aux={"a": np.arange(3)})
        with pytest.raises(ValueError):
            a.aux_plane("a")[0] = 9

    def test_unknown_aux_plane(self):
        a = GlobalCellularAutomaton(size=3)
        with pytest.raises(KeyError):
            a.aux_plane("missing")


class TestSynchrony:
    def test_rotation_is_synchronous(self):
        # all cells read simultaneously from the OLD state: a 5-cell ring
        # rotating left must rotate exactly one position per generation.
        a = GlobalCellularAutomaton(size=5, initial_data=[0, 1, 2, 3, 4])
        a.step(shift_rule())
        assert a.data.tolist() == [1, 2, 3, 4, 0]
        a.step(shift_rule())
        assert a.data.tolist() == [2, 3, 4, 0, 1]

    def test_generation_counter(self):
        a = GlobalCellularAutomaton(size=5)
        assert a.generation == 0
        a.step(shift_rule())
        assert a.generation == 1

    def test_swap_without_conflict(self):
        # cells 0 and 1 swap by each reading the other -- impossible with
        # in-place update, trivial with CROW synchronous semantics.
        def pointer(cell):
            return 1 - cell.index if cell.index < 2 else cell.index

        def update(cell, nb):
            return CellUpdate(data=nb.data)

        a = GlobalCellularAutomaton(size=3, initial_data=[10, 20, 30])
        a.step(FunctionRule(pointer, update))
        assert a.data.tolist() == [20, 10, 30]


class TestModelEnforcement:
    def test_pointer_out_of_range(self):
        rule = FunctionRule(lambda c: 99, lambda c, nb: KEEP)
        a = GlobalCellularAutomaton(size=4)
        with pytest.raises(PointerRangeError):
            a.step(rule)

    def test_stored_pointer_out_of_range(self):
        rule = FunctionRule(lambda c: 0, lambda c, nb: CellUpdate(pointer=50))
        a = GlobalCellularAutomaton(size=4)
        with pytest.raises(PointerRangeError):
            a.step(rule)

    def test_handedness_enforced(self):
        class Greedy(Rule):
            def pointer(self, cell):
                return 0

            def update(self, cell, nb):
                return KEEP

            def step(self, cell, read):
                read(0)
                read(1)  # second read under hands=1
                return KEEP

        a = GlobalCellularAutomaton(size=4, hands=1)
        with pytest.raises(HandednessViolation):
            a.step(Greedy())

    def test_two_handed_allows_two_reads(self):
        class TwoReads(Rule):
            def pointer(self, cell):
                return 0

            def update(self, cell, nb):
                return KEEP

            def step(self, cell, read):
                a = read(0).data
                b = read(1).data
                return CellUpdate(data=a + b)

        a = GlobalCellularAutomaton(size=4, initial_data=[3, 4, 0, 0], hands=2)
        a.step(TwoReads())
        assert a.data.tolist() == [7, 7, 7, 7]

    def test_malformed_rule_result(self):
        class Bad(Rule):
            def pointer(self, cell):
                return 0

            def update(self, cell, nb):
                return KEEP

            def step(self, cell, read):
                return "not an update"

        a = GlobalCellularAutomaton(size=2)
        with pytest.raises(RuleResultError):
            a.step(Bad())


class TestInstrumentation:
    def test_active_counts(self):
        a = GlobalCellularAutomaton(size=5, initial_data=[0, 1, 2, 3, 4])
        stats = a.step(shift_rule(), label="rot")
        assert stats.label == "rot"
        assert stats.active_cells == 5
        assert stats.total_reads == 5
        assert stats.max_congestion == 1

    def test_inactive_cells_not_counted(self):
        a = GlobalCellularAutomaton(size=5)
        stats = a.step(IdentityRule())
        assert stats.active_cells == 0
        assert stats.total_reads == 0

    def test_congestion_hotspot(self):
        rule = FunctionRule(lambda c: 0, lambda c, nb: CellUpdate(data=nb.data))
        a = GlobalCellularAutomaton(size=6)
        stats = a.step(rule)
        assert stats.max_congestion == 6
        assert stats.reads_per_cell == {0: 6}

    def test_access_log_accumulates(self):
        a = GlobalCellularAutomaton(size=5)
        a.step(shift_rule())
        a.step(shift_rule())
        assert len(a.access_log) == 2
        assert a.access_log.total_reads == 10

    def test_record_access_off(self):
        a = GlobalCellularAutomaton(size=5, record_access=False)
        a.step(shift_rule())
        assert len(a.access_log) == 0


class TestStateAccess:
    def test_view(self):
        a = GlobalCellularAutomaton(size=3, initial_data=[5, 6, 7], aux={"a": [1, 0, 1]})
        v = a.view(1)
        assert v.data == 6 and v.aux["a"] == 0

    def test_view_range_checked(self):
        with pytest.raises(IndexError):
            GlobalCellularAutomaton(size=3).view(3)

    def test_load(self):
        a = GlobalCellularAutomaton(size=3)
        a.load(data=np.array([9, 8, 7]), pointers=np.array([2, 2, 2]))
        assert a.data.tolist() == [9, 8, 7]
        assert a.pointers.tolist() == [2, 2, 2]

    def test_load_checks_pointers(self):
        a = GlobalCellularAutomaton(size=3)
        with pytest.raises(PointerRangeError):
            a.load(pointers=np.array([0, 0, 9]))

    def test_run_with_labels(self):
        a = GlobalCellularAutomaton(size=5)
        results = a.run([shift_rule(), shift_rule()], labels=["g0", "g1"])
        assert [r.label for r in results] == ["g0", "g1"]

    def test_run_label_mismatch(self):
        a = GlobalCellularAutomaton(size=5)
        with pytest.raises(ValueError):
            a.run([shift_rule()], labels=["a", "b"])

    def test_repr(self):
        assert "size=5" in repr(GlobalCellularAutomaton(size=5))
