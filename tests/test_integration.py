"""End-to-end integration tests: realistic workflows through the public API.

Each test exercises a complete user scenario (the examples' code paths) and
asserts on final, externally meaningful results.
"""

import numpy as np
import pytest

import repro
from repro.analysis import (
    compare_models,
    compare_table1,
    compare_table2,
    measured_total,
)
from repro.core.machine import connected_components_interpreter
from repro.graphs.components import canonical_labels
from repro.graphs.generators import image_to_graph
from repro.hardware import ReadStrategy, ablation, paper_report, synthesize
from repro.pram import AccessMode, ReadConflictError
from repro.hirschberg.pram_impl import hirschberg_on_pram


class TestImageLabelingWorkflow:
    def test_blob_separation(self):
        image = np.array(
            [
                [1, 1, 0, 1],
                [0, 1, 0, 1],
                [0, 0, 0, 1],
                [1, 0, 1, 1],
            ]
        )
        graph, node_of = image_to_graph(image)
        result = repro.gca_connected_components(graph)
        # left blob
        assert result.same_component(node_of[0, 0], node_of[1, 1])
        # right column blob including the corner hook
        assert result.same_component(node_of[0, 3], node_of[3, 2])
        # isolated bottom-left pixel
        assert not result.same_component(node_of[3, 0], node_of[0, 0])
        assert not result.same_component(node_of[3, 0], node_of[3, 2])

    def test_region_count(self):
        image = np.eye(5, dtype=np.int64)  # 5 isolated diagonal pixels
        graph, node_of = image_to_graph(image)
        result = repro.gca_connected_components(graph)
        fg_labels = {int(result.labels[node_of[i, i]]) for i in range(5)}
        assert len(fg_labels) == 5


class TestCommunityWorkflow:
    def test_planted_communities_recovered(self):
        sizes = [6, 5, 4, 3]
        g = repro.planted_components(sizes, intra_p=0.4, seed=10)
        result = repro.gca_connected_components(g)
        assert result.component_count == 4
        assert sorted(len(c) for c in result.components()) == [3, 4, 5, 6]

    def test_convergence_trace(self):
        g = repro.planted_components([8, 8], intra_p=0.3, seed=2)
        counts = []
        repro.hirschberg_reference(
            g, on_iteration=lambda k, C, T: counts.append(int(np.unique(C).size))
        )
        assert counts[-1] == 2
        assert counts == sorted(counts, reverse=True)


class TestMeasurementWorkflow:
    def test_full_table_pipeline(self):
        """The complete Table 1 + Table 2 + totals pipeline on one run."""
        n = 4
        g = repro.random_graph(n, 0.5, seed=6)
        res = connected_components_interpreter(g)
        t1 = compare_table1(n, res.access_log)
        t2 = compare_table2(n, res.access_log)
        tot = measured_total(n, res.access_log)
        assert len(t1) == 12
        assert all(row.matches for row in t2)
        assert tot.matches

    def test_model_comparison_pipeline(self):
        rows = compare_models(repro.random_graph(6, 0.4, seed=7))
        assert all(r.labels_correct for r in rows)


class TestHardwareWorkflow:
    def test_synthesis_reproduction(self):
        assert synthesize(16).summary() == paper_report().summary()

    def test_ablation_pipeline(self):
        g = repro.random_graph(4, 0.6, seed=8)
        log = connected_components_interpreter(g).access_log
        rows = {r.strategy: r for r in ablation(log, 4)}
        assert rows[ReadStrategy.REPLICATED].total_cycles <= rows[ReadStrategy.TREE].total_cycles
        assert rows[ReadStrategy.TREE].total_cycles <= rows[ReadStrategy.SERIAL].total_cycles


class TestPRAMWorkflow:
    def test_crow_clean_erew_dirty(self):
        g = repro.random_graph(6, 0.5, seed=9)
        ok = hirschberg_on_pram(g, mode=AccessMode.CROW)
        assert np.array_equal(ok.labels, canonical_labels(g))
        with pytest.raises(ReadConflictError):
            hirschberg_on_pram(g, mode=AccessMode.EREW)


class TestRoundTripPersistence:
    def test_save_solve_reload(self, tmp_path):
        from repro.graphs.io import load_edge_list, save_edge_list

        g = repro.random_graph(10, 0.25, seed=11)
        path = tmp_path / "graph.edges"
        save_edge_list(g, path)
        reloaded = load_edge_list(path)
        assert np.array_equal(
            repro.gca_connected_components(g).labels,
            repro.gca_connected_components(reloaded).labels,
        )


class TestScaleSmoke:
    def test_vectorized_handles_hundreds_of_nodes(self):
        g = repro.random_graph(200, 0.01, seed=12)
        result = repro.gca_connected_components(g)
        assert np.array_equal(result.labels, canonical_labels(g))

    def test_dense_large(self):
        g = repro.random_graph(128, 0.5, seed=13)
        result = repro.gca_connected_components(g)
        assert result.component_count == 1
        assert result.labels.tolist() == [0] * 128


class TestLargeFieldStress:
    def test_vectorized_n512(self):
        """A 512-node field (262k cells, 316 generations) end to end."""
        g = repro.random_graph(512, 0.004, seed=99)
        result = repro.gca_connected_components(g)
        assert np.array_equal(result.labels, canonical_labels(g))

    def test_oblivious_count_n512(self):
        from repro.core.schedule import total_generations
        from repro.core.vectorized import run_vectorized

        res = run_vectorized(repro.random_graph(512, 0.004, seed=99))
        assert res.total_generations == total_generations(512) == 316
