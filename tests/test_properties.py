"""Cross-cutting property-based tests (the library's safety net).

These hypothesis suites pin the global invariants that tie the whole
reproduction together:

* every engine computes the canonical labelling on arbitrary graphs;
* the labelling is invariant under node relabelling (up to the
  permutation), edge insertion only merges, and graph unions are
  independent;
* the structural counts (generations, reads, congestion) obey their
  closed forms for arbitrary ``n``.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedule import full_schedule, total_generations
from repro.core.vectorized import connected_components_vectorized, run_vectorized
from repro.graphs.adjacency import AdjacencyMatrix
from repro.graphs.components import canonical_labels, count_components
from repro.graphs.generators import from_edges
from repro.hirschberg.reference import connected_components_reference
from repro.util.intmath import ceil_log2, outer_iterations
from tests.conftest import adjacency_matrices


class TestEngineCorrectness:
    @given(adjacency_matrices(max_n=24))
    @settings(max_examples=80)
    def test_vectorized_matches_oracle(self, g):
        assert np.array_equal(connected_components_vectorized(g), canonical_labels(g))

    @given(adjacency_matrices(max_n=16))
    @settings(max_examples=40)
    def test_reference_matches_oracle(self, g):
        assert np.array_equal(connected_components_reference(g), canonical_labels(g))


class TestLabellingInvariants:
    @given(adjacency_matrices(max_n=14))
    @settings(max_examples=40)
    def test_labels_idempotent_fixpoint(self, g):
        labels = connected_components_vectorized(g)
        assert np.array_equal(labels[labels], labels)

    @given(adjacency_matrices(max_n=14))
    @settings(max_examples=40)
    def test_labels_are_minima(self, g):
        labels = connected_components_vectorized(g)
        for rep in np.unique(labels):
            members = np.flatnonzero(labels == rep)
            assert members.min() == rep

    @given(adjacency_matrices(min_n=2, max_n=12), st.data())
    @settings(max_examples=30)
    def test_edge_insertion_only_merges(self, g, data):
        """Adding one edge never increases the component count and never
        splits an existing component."""
        i = data.draw(st.integers(0, g.n - 1))
        j = data.draw(st.integers(0, g.n - 1))
        if i == j:
            return
        before = connected_components_vectorized(g)
        m = g.matrix.copy()
        m[i, j] = m[j, i] = 1
        after = connected_components_vectorized(AdjacencyMatrix(m))
        assert int(np.unique(after).size) <= int(np.unique(before).size)
        for a in range(g.n):
            for b in range(g.n):
                if before[a] == before[b]:
                    assert after[a] == after[b]

    @given(adjacency_matrices(min_n=1, max_n=8), adjacency_matrices(min_n=1, max_n=8))
    @settings(max_examples=30)
    def test_disjoint_union_independence(self, g1, g2):
        """Components of a disjoint union = components of the parts."""
        n1, n2 = g1.n, g2.n
        m = np.zeros((n1 + n2, n1 + n2), dtype=np.int8)
        m[:n1, :n1] = g1.matrix
        m[n1:, n1:] = g2.matrix
        combined = connected_components_vectorized(AdjacencyMatrix(m))
        part1 = connected_components_vectorized(g1)
        part2 = connected_components_vectorized(g2)
        assert np.array_equal(combined[:n1], part1)
        assert np.array_equal(combined[n1:], part2 + n1)

    @given(adjacency_matrices(min_n=2, max_n=10), st.randoms())
    @settings(max_examples=25)
    def test_relabelling_equivariance(self, g, rnd):
        """Permuting node ids permutes the partition accordingly."""
        perm = list(range(g.n))
        rnd.shuffle(perm)
        relabelled = g.relabeled(perm)
        base = connected_components_vectorized(g)
        moved = connected_components_vectorized(relabelled)
        # same-component relation must be preserved under the permutation
        for a in range(g.n):
            for b in range(g.n):
                assert (base[a] == base[b]) == (moved[perm[a]] == moved[perm[b]])


class TestStructuralCounts:
    @given(st.integers(min_value=1, max_value=300))
    def test_schedule_length_closed_form(self, n):
        assert len(full_schedule(n)) == total_generations(n)

    @given(st.integers(min_value=2, max_value=64))
    @settings(max_examples=20, deadline=None)
    def test_generation_count_independent_of_graph(self, n):
        """The GCA's generation count depends only on n, never on the
        edges -- it is an oblivious algorithm."""
        empty = run_vectorized(from_edges(n, []))
        chain = run_vectorized(from_edges(n, [(i, i + 1) for i in range(n - 1)]))
        assert empty.total_generations == chain.total_generations
        assert empty.total_generations == total_generations(n)

    @given(adjacency_matrices(min_n=2, max_n=12))
    @settings(max_examples=25)
    def test_read_counts_graph_independent(self, g):
        """Total reads per labelled generation match the empty-graph run:
        the access *pattern* is data independent except for gens 10/11."""
        ran = run_vectorized(g, record_access=True)
        empty = run_vectorized(from_edges(g.n, []), record_access=True)
        for a, b in zip(ran.access_log, empty.access_log):
            assert a.label == b.label
            assert a.total_reads == b.total_reads
            assert a.active_cells == b.active_cells

    @given(st.integers(min_value=2, max_value=40))
    @settings(max_examples=15, deadline=None)
    def test_peak_congestion_bound(self, n):
        """No generation's congestion ever exceeds n + 1 (the broadcast
        bound of generations 1/5/9)."""
        res = run_vectorized(from_edges(n, [(i, i + 1) for i in range(n - 1)]),
                             record_access=True)
        assert res.access_log.peak_congestion <= n + 1

    @given(st.integers(min_value=2, max_value=200))
    def test_iterations_logarithmic(self, n):
        assert outer_iterations(n) == ceil_log2(n)


class TestConvergenceSpeed:
    @given(adjacency_matrices(min_n=2, max_n=16))
    @settings(max_examples=30)
    def test_converges_within_log_iterations(self, g):
        """ceil(log2 n) outer iterations always suffice (the paper's
        halving argument) -- equality with the oracle at the default
        iteration count is exactly that claim."""
        labels = connected_components_vectorized(g)
        assert np.array_equal(labels, canonical_labels(g))

    @given(adjacency_matrices(min_n=2, max_n=16))
    @settings(max_examples=30)
    def test_component_count_stable_after_convergence(self, g):
        more = run_vectorized(g, iterations=outer_iterations(g.n) + 2)
        assert int(np.unique(more.labels).size) == count_components(g)
