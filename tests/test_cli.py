"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import _parse_edges, build_parser, main
from repro.graphs.generators import random_graph
from repro.graphs.io import save_edge_list


class TestParseEdges:
    def test_basic(self):
        assert _parse_edges("0-1,1-3") == [(0, 1), (1, 3)]

    def test_whitespace_and_empty(self):
        assert _parse_edges(" 0-1 , ,2-3 ") == [(0, 1), (2, 3)]

    def test_malformed(self):
        with pytest.raises(ValueError):
            _parse_edges("0-1-2")


class TestSolve:
    def test_random_graph(self, capsys):
        assert main(["solve", "--random", "10", "--p", "0.3", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "n = 10" in out
        assert "components:" in out

    def test_file_input(self, tmp_path, capsys):
        g = random_graph(6, 0.4, seed=2)
        path = tmp_path / "g.edges"
        save_edge_list(g, path)
        assert main(["solve", str(path)]) == 0
        assert "n = 6" in capsys.readouterr().out

    def test_labels_flag(self, capsys):
        main(["solve", "--random", "4", "--p", "1.0", "--seed", "0", "--labels"])
        out = capsys.readouterr().out
        assert "labels: 0 0 0 0" in out

    @pytest.mark.parametrize("method", ["vectorized", "interpreter", "reference", "pram"])
    def test_all_methods(self, method, capsys):
        assert main(["solve", "--random", "5", "--p", "0.5", "--seed", "3",
                     "--method", method]) == 0

    def test_early_exit_flag(self, capsys):
        assert main(["solve", "--random", "12", "--p", "0.4", "--seed", "1",
                     "--early-exit"]) == 0
        out = capsys.readouterr().out
        assert "converged at iteration" in out

    def test_early_exit_rejected_for_other_methods(self, capsys):
        assert main(["solve", "--random", "5", "--p", "0.5", "--seed", "0",
                     "--method", "interpreter", "--early-exit"]) == 2
        assert "early_exit" in capsys.readouterr().err

    def test_missing_input(self):
        with pytest.raises(SystemExit):
            main(["solve"])

    def test_missing_file_is_error_exit(self, capsys):
        assert main(["solve", "/nonexistent/graph.edges"]) == 2
        assert "error:" in capsys.readouterr().err


class TestTables:
    def test_prints_all_three(self, capsys):
        assert main(["tables", "--n", "4"]) == 0
        out = capsys.readouterr().out
        assert "Table 1 reproduction" in out
        assert "Table 2 reproduction" in out
        assert "Total generations" in out


class TestSynthesize:
    def test_paper_point(self, capsys):
        assert main(["synthesize", "--n", "16"]) == 0
        out = capsys.readouterr().out
        assert "23,051" in out
        assert "paper" in out

    def test_other_size_no_paper_line(self, capsys):
        main(["synthesize", "--n", "8"])
        out = capsys.readouterr().out
        assert "model" in out and "paper" not in out


class TestTrace:
    def test_k2(self, capsys):
        assert main(["trace", "--n", "2", "--edges", "0-1"]) == 0
        out = capsys.readouterr().out
        assert "final labels: [0, 0]" in out
        assert "gen0" in out

    def test_bad_edges_error(self, capsys):
        assert main(["trace", "--n", "2", "--edges", "0-9"]) == 2


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_help_smoke(self):
        parser = build_parser()
        assert "solve" in parser.format_help()


class TestClosure:
    def test_queries(self, capsys):
        assert main(["closure", "--n", "5", "--edges", "0-1,1-2",
                     "--query", "0-2,0-4"]) == 0
        out = capsys.readouterr().out
        assert "reachable(0, 2) = True" in out
        assert "reachable(0, 4) = False" in out

    def test_full_listing(self, capsys):
        assert main(["closure", "--n", "3", "--edges", "0-1"]) == 0
        out = capsys.readouterr().out
        assert "0: [0, 1]" in out
        assert "2: [2]" in out


class TestSweep:
    def test_summary(self, capsys):
        assert main(["sweep", "--sizes", "6", "--engines",
                     "vectorized,unionfind"]) == 0
        out = capsys.readouterr().out
        assert "vectorized" in out and "unionfind" in out
        assert "True" in out

    def test_json_archive(self, tmp_path, capsys):
        target = tmp_path / "records.json"
        assert main(["sweep", "--sizes", "4", "--engines", "vectorized",
                     "--json", str(target)]) == 0
        from repro.analysis.sweep import load_records

        records = load_records(target)
        assert records and all(r.correct for r in records)

    def test_workload_choice(self, capsys):
        assert main(["sweep", "--sizes", "8", "--engines", "vectorized",
                     "--workload", "path"]) == 0

    def test_batched_engine(self, capsys):
        assert main(["sweep", "--sizes", "8", "--engines",
                     "batched,vectorized_early", "--repeats", "2"]) == 0
        out = capsys.readouterr().out
        assert "batched" in out and "vectorized_early" in out

    def test_jobs_flag(self, capsys):
        assert main(["sweep", "--sizes", "4,6", "--engines", "vectorized",
                     "--jobs", "2"]) == 0
        assert "sweep:" in capsys.readouterr().out


class TestSparseSweep:
    def test_summary(self, capsys):
        assert main(["sparse-sweep", "--sizes", "50", "--engines",
                     "edgelist,contracting", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "edgelist" in out and "contracting" in out
        assert "True" in out

    def test_auto_resolves(self, capsys):
        assert main(["sparse-sweep", "--sizes", "40", "--engines",
                     "auto"]) == 0
        out = capsys.readouterr().out
        assert "auto" in out

    def test_json_archive(self, tmp_path, capsys):
        target = tmp_path / "sparse.json"
        assert main(["sparse-sweep", "--sizes", "30", "--engines",
                     "contracting", "--json", str(target)]) == 0
        from repro.analysis.sweep import load_records

        records = load_records(target)
        assert records and all(r.correct for r in records)

    def test_multiple_edge_factors(self, capsys):
        assert main(["sparse-sweep", "--sizes", "30", "--edge-factors",
                     "1.0,3.0", "--engines", "edgelist"]) == 0
        out = capsys.readouterr().out
        assert "2 runs" in out


class TestServeBench:
    def test_closed_loop(self, capsys):
        assert main(["serve-bench", "--count", "16", "--sizes", "8,16",
                     "--concurrency", "2"]) == 0
        out = capsys.readouterr().out
        assert "served 16/16 ok" in out
        assert "batches:" in out
        assert "latency ms:" in out

    def test_open_loop_with_baseline(self, capsys):
        assert main(["serve-bench", "--count", "12", "--sizes", "8,16",
                     "--rps", "5000", "--baseline"]) == 0
        out = capsys.readouterr().out
        assert "served 12/12 ok" in out
        assert "naive sequential baseline" in out
        assert "speedup" in out

    def test_json_snapshot(self, tmp_path, capsys):
        import json

        target = tmp_path / "serve.json"
        assert main(["serve-bench", "--count", "10", "--sizes", "8",
                     "--concurrency", "2", "--json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["bench"]["ok"] == 10
        assert payload["bench"]["count"] == 10
        assert payload["counters"]["completed"] == 10
        assert "latency" in payload

    def test_dense_fraction_and_deadline(self, capsys):
        assert main(["serve-bench", "--count", "10", "--sizes", "8,16",
                     "--dense-fraction", "0.5", "--deadline", "30.0",
                     "--concurrency", "2"]) == 0
        out = capsys.readouterr().out
        assert "served 10/10 ok" in out

    def test_failures_gate_exit_code(self, capsys, monkeypatch):
        # an impossible deadline with --allow-failures still exits 0;
        # without it, unresolved requests flip the exit code
        argv = ["serve-bench", "--count", "6", "--sizes", "64",
                "--concurrency", "1", "--deadline", "1e-9",
                "--wait-timeout", "10.0"]
        rc_strict = main(argv)
        rc_loose = main(argv + ["--allow-failures"])
        capsys.readouterr()
        assert rc_loose == 0
        assert rc_strict in (0, 1)  # scheduler may still beat the deadline


class TestParseBytes:
    def test_suffixes(self):
        from repro.cli import _parse_bytes

        assert _parse_bytes("512") == 512
        assert _parse_bytes("1K") == 1 << 10
        assert _parse_bytes("64M") == 64 << 20
        assert _parse_bytes("2G") == 2 << 30
        assert _parse_bytes("1T") == 1 << 40
        assert _parse_bytes("256MB") == 256 << 20
        assert _parse_bytes("1.5G") == int(1.5 * (1 << 30))
        assert _parse_bytes(" 2g ") == 2 << 30

    def test_malformed(self):
        from repro.cli import _parse_bytes

        for bad in ("", "fast", "12Q", "-1", "0"):
            with pytest.raises(ValueError):
                _parse_bytes(bad)


class TestSolveSharded:
    def test_sharded_method_with_flags(self, capsys):
        assert main([
            "solve", "--random-sparse", "400", "600", "--seed", "7",
            "--method", "sharded", "--shards", "3",
            "--memory-budget", "64M",
        ]) == 0
        out = capsys.readouterr().out
        assert "method = sharded" in out
        assert "components:" in out

    def test_sharded_matches_contracting(self, capsys):
        for method in ("sharded", "contracting"):
            assert main([
                "solve", "--random-sparse", "300", "500", "--seed", "8",
                "--method", method, "--labels",
            ]) == 0
        sharded_out, contracting_out = None, None
        text = capsys.readouterr().out
        lines = [l for l in text.splitlines() if l.startswith("labels:")]
        assert len(lines) == 2 and lines[0] == lines[1]

    def test_malformed_budget_is_a_clean_error(self, capsys):
        assert main([
            "solve", "--random", "6", "--p", "0.5", "--seed", "0",
            "--memory-budget", "lots",
        ]) == 2
        assert "malformed byte size" in capsys.readouterr().err


class TestParseListen:
    def test_host_and_port(self):
        from repro.cli import _parse_listen

        assert _parse_listen("127.0.0.1:7421") == ("127.0.0.1", 7421)
        assert _parse_listen("0.0.0.0:80") == ("0.0.0.0", 80)
        assert _parse_listen(":9000") == ("0.0.0.0", 9000)
        assert _parse_listen("localhost:0") == ("localhost", 0)

    def test_malformed(self):
        from repro.cli import _parse_listen

        for bad in ("", "7421", "host:", "host:notaport", "host:-1",
                    "host:65536"):
            with pytest.raises(ValueError):
                _parse_listen(bad)


class TestServeBenchListen:
    def test_wire_open_loop(self, capsys):
        assert main(["serve-bench", "--listen", "--count", "24",
                     "--sizes", "8,16", "--rps", "2000",
                     "--connections", "8"]) == 0
        out = capsys.readouterr().out
        assert "wire: 24/24 ok over 8 connection(s)" in out
        assert "wire latency ms:" in out

    def test_wire_closed_loop(self, capsys):
        assert main(["serve-bench", "--listen", "--count", "16",
                     "--sizes", "8", "--connections", "4"]) == 0
        out = capsys.readouterr().out
        assert "wire: 16/16 ok over 4 connection(s)" in out

    def test_wire_json_snapshot(self, tmp_path, capsys):
        import json

        target = tmp_path / "wire.json"
        assert main(["serve-bench", "--listen", "--count", "12",
                     "--sizes", "8", "--rps", "2000", "--connections",
                     "4", "--json", str(target)]) == 0
        payload = json.loads(target.read_text())
        client = payload["bench"]["wire_client"]
        assert client["ok"] == 12
        assert client["label_mismatches"] == 0
        assert client["connections"] == 4
        assert payload["wire"]["connections_total"] >= 4
        assert payload["wire"]["frames_in"] >= 12

    def test_listen_rejects_dense_fraction(self, capsys):
        assert main(["serve-bench", "--listen", "--count", "8",
                     "--dense-fraction", "0.5"]) == 2
        assert "dense" in capsys.readouterr().err


class TestServeListenCommand:
    def test_sigint_drains_and_exits_zero(self, tmp_path):
        import json
        import os
        import signal
        import socket
        import subprocess
        import sys as _sys
        import time

        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        proc = subprocess.Popen(
            [_sys.executable, "-m", "repro", "serve",
             "--listen", "127.0.0.1:0", "--workers", "1"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            env=env, text=True)
        try:
            line = proc.stdout.readline()
            assert "serving on" in line, line
            port = int(line.split()[2].rsplit(":", 1)[1])
            # one JSON-lines request proves the listener is live
            with socket.create_connection(("127.0.0.1", port),
                                          timeout=10) as sock:
                stream = sock.makefile("rwb")
                stream.write(b'{"n": 3, "edges": [[0, 2]]}\n')
                stream.flush()
                doc = json.loads(stream.readline())
                assert doc["labels"] == [0, 1, 0]
            proc.send_signal(signal.SIGINT)
            out, err = proc.communicate(timeout=30)
        except BaseException:
            proc.kill()
            proc.wait()
            raise
        assert proc.returncode == 0, (out, err)
        assert "drained and stopped cleanly" in out
