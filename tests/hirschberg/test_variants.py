"""Tests for the algorithm variants."""

import numpy as np
from hypothesis import given, settings

from repro.graphs.components import canonical_labels
from repro.graphs.generators import from_edges, path_graph, worst_case_pairing
from repro.hirschberg.variants import (
    hirschberg_literal_step6,
    label_propagation,
    label_propagation_rounds,
    supernode_only_step3,
)
from tests.conftest import adjacency_matrices


class TestLiteralStep6:
    def test_fails_on_k2(self):
        """Documents why the printed step 6 cannot be taken literally:
        executed after jumping it leaves the mutual pair oscillating."""
        g = from_edges(2, [(0, 1)])
        got = hirschberg_literal_step6(g)
        assert got.tolist() != [0, 0]

    def test_fails_on_pairings(self):
        g = worst_case_pairing(6)
        got = hirschberg_literal_step6(g)
        assert not np.array_equal(got, canonical_labels(g))


class TestSupernodeOnlyStep3:
    def test_corpus(self, corpus_graph):
        got = supernode_only_step3(corpus_graph)
        assert np.array_equal(got, canonical_labels(corpus_graph))

    @given(adjacency_matrices(max_n=14))
    @settings(max_examples=40)
    def test_random(self, g):
        assert np.array_equal(supernode_only_step3(g), canonical_labels(g))


class TestLabelPropagation:
    def test_corpus(self, corpus_graph):
        got = label_propagation(corpus_graph)
        assert np.array_equal(got, canonical_labels(corpus_graph))

    @given(adjacency_matrices(max_n=14))
    @settings(max_examples=40)
    def test_random(self, g):
        assert np.array_equal(label_propagation(g), canonical_labels(g))

    def test_round_cap_returns_partial(self):
        g = path_graph(10)
        partial = label_propagation(g, max_rounds=1)
        assert not np.array_equal(partial, canonical_labels(g))

    def test_rounds_equal_eccentricity_of_minimum(self):
        # On a path 0-1-...-k the label 0 travels one hop per round.
        g = path_graph(9)
        assert label_propagation_rounds(g) == 8

    def test_rounds_zero_for_empty(self):
        g = from_edges(3, [])
        assert label_propagation_rounds(g) == 0

    def test_diameter_vs_log_crossover(self):
        """The motivation for Hirschberg's algorithm: on high-diameter
        graphs naive propagation needs Theta(n) rounds while the GCA's
        outer loop stays at ceil(log2 n)."""
        from repro.util.intmath import outer_iterations

        n = 32
        g = path_graph(n)
        assert label_propagation_rounds(g) == n - 1
        assert outer_iterations(n) == 5
