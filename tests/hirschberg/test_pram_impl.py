"""Tests for Hirschberg's algorithm on the PRAM simulator."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.graphs.components import canonical_labels
from repro.graphs.generators import complete_graph, path_graph, random_graph
from repro.hirschberg.pram_impl import hirschberg_on_pram
from repro.pram.memory import AccessMode
from repro.pram.errors import ReadConflictError
from tests.conftest import adjacency_matrices


class TestCorrectness:
    def test_corpus(self, corpus_graph):
        res = hirschberg_on_pram(corpus_graph)
        assert np.array_equal(res.labels, canonical_labels(corpus_graph))

    @given(adjacency_matrices(max_n=10))
    @settings(max_examples=20, deadline=None)
    def test_random(self, g):
        res = hirschberg_on_pram(g)
        assert np.array_equal(res.labels, canonical_labels(g))


class TestAccessModes:
    def test_crow_succeeds(self):
        """The paper's claim: only a CROW PRAM is really needed."""
        g = random_graph(8, 0.3, seed=0)
        res = hirschberg_on_pram(g, mode=AccessMode.CROW)
        assert np.array_equal(res.labels, canonical_labels(g))

    def test_crew_succeeds(self):
        g = random_graph(8, 0.3, seed=0)
        res = hirschberg_on_pram(g, mode=AccessMode.CREW)
        assert np.array_equal(res.labels, canonical_labels(g))

    def test_erew_rejected(self):
        """Steps 2/5/6 read C concurrently: EREW must fail."""
        g = complete_graph(4)
        with pytest.raises(ReadConflictError):
            hirschberg_on_pram(g, mode=AccessMode.EREW)


class TestCostAccounting:
    def test_full_parallelism_time_equals_steps(self):
        g = random_graph(8, 0.3, seed=1)
        res = hirschberg_on_pram(g, processors=64)
        assert res.time == res.parallel_steps

    def test_brent_inflation(self):
        g = random_graph(8, 0.3, seed=1)
        full = hirschberg_on_pram(g, processors=64)
        quarter = hirschberg_on_pram(g, processors=16)
        assert quarter.parallel_steps == full.parallel_steps
        assert quarter.time > full.time
        assert quarter.work == full.work

    def test_step_count_structure(self):
        """Steps per iteration: fill + log n reductions + finish for steps
        2 and 3, plus steps 4, 5 (log n jumps), 6; plus one init step."""
        n = 8
        g = path_graph(n)
        res = hirschberg_on_pram(g)
        log = 3  # ceil_log2(8)
        per_iteration = (1 + log + 1) * 2 + 1 + log + 1
        assert res.parallel_steps == 1 + log * per_iteration

    def test_congestion_measured(self):
        g = complete_graph(8)
        res = hirschberg_on_pram(g)
        # step 2 reads C(i) from every row processor: congestion >= n
        assert res.peak_read_congestion >= 8

    def test_work_positive(self):
        res = hirschberg_on_pram(path_graph(4))
        assert res.work > 0
