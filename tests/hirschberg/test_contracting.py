"""Tests for the contracting sparse variant."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.graphs.components import canonical_labels
from repro.graphs.generators import (
    path_graph,
    random_graph,
    star_graph,
    union_of_cliques,
)
from repro.graphs.union_find import UnionFind
from repro.hirschberg.contracting import (
    ContractingResult,
    ContractionLevel,
    connected_components_contracting,
)
from repro.hirschberg.edgelist import EdgeListGraph, random_edge_list
from repro.hirschberg.fastsv import fastsv_reference
from tests.conftest import adjacency_matrices


def _oracle(graph: EdgeListGraph) -> np.ndarray:
    uf = UnionFind(graph.n)
    half = graph.src.size // 2
    for u, v in zip(graph.src[:half].tolist(), graph.dst[:half].tolist()):
        uf.union(u, v)
    return uf.canonical_labels()


class TestCorrectness:
    def test_corpus(self, corpus_graph):
        got = connected_components_contracting(corpus_graph).labels
        assert np.array_equal(got, canonical_labels(corpus_graph))

    @given(adjacency_matrices(max_n=20))
    @settings(max_examples=60)
    def test_random(self, g):
        got = connected_components_contracting(g).labels
        assert np.array_equal(got, canonical_labels(g))

    @pytest.mark.parametrize("n", [1, 2, 3, 17, 64])
    def test_path(self, n):
        g = path_graph(n)
        res = connected_components_contracting(g)
        assert np.array_equal(res.labels, np.zeros(n, dtype=np.int64))

    @pytest.mark.parametrize("n", [2, 5, 33])
    def test_star(self, n):
        g = star_graph(n)
        res = connected_components_contracting(g)
        assert np.array_equal(res.labels, canonical_labels(g))

    def test_disconnected_union(self):
        g = union_of_cliques([4, 1, 6, 2])
        res = connected_components_contracting(g)
        assert np.array_equal(res.labels, canonical_labels(g))
        assert res.component_count == 4

    def test_agrees_with_fastsv(self):
        for seed in range(5):
            g = random_graph(40, 0.08, seed=seed)
            ours = connected_components_contracting(g).labels
            assert np.array_equal(ours, fastsv_reference(g).labels)

    def test_edge_list_and_dense_inputs_agree(self):
        dense = random_graph(25, 0.15, seed=7)
        sparse = EdgeListGraph.from_adjacency(dense)
        a = connected_components_contracting(dense)
        b = connected_components_contracting(sparse)
        assert np.array_equal(a.labels, b.labels)


class TestEdgeCases:
    def test_single_vertex(self):
        res = connected_components_contracting(path_graph(1))
        assert res.labels.tolist() == [0]
        assert res.iterations == 0
        assert res.contracted_to_empty

    def test_no_edges(self):
        g = EdgeListGraph.from_edges(6, [])
        res = connected_components_contracting(g)
        assert res.labels.tolist() == list(range(6))
        assert res.iterations == 0
        assert res.component_count == 6

    def test_two_nodes(self):
        g = EdgeListGraph.from_edges(2, [(0, 1)])
        res = connected_components_contracting(g)
        assert res.labels.tolist() == [0, 0]


class TestContractionStack:
    def test_levels_shrink_monotonically(self):
        g = random_edge_list(5_000, 9_000, seed=3)
        res = connected_components_contracting(g)
        ns = [level.n for level in res.levels]
        assert ns == sorted(ns, reverse=True)
        assert all(b < a for a, b in zip(ns, ns[1:]))
        assert res.levels[0].n == g.n
        assert res.contracted_to_empty

    def test_level_count_logarithmic(self):
        g = random_edge_list(10_000, 20_000, seed=1)
        res = connected_components_contracting(g)
        # non-isolated supervertex count at least halves per level
        assert res.iterations <= int(np.ceil(np.log2(g.n))) + 1

    def test_total_work(self):
        g = random_edge_list(1_000, 2_000, seed=0)
        res = connected_components_contracting(g)
        assert res.total_work == sum(l.n + l.m for l in res.levels)
        assert res.total_work >= g.n

    def test_max_levels_truncates(self):
        g = random_edge_list(5_000, 9_000, seed=3)
        full = connected_components_contracting(g)
        assert full.iterations > 1
        capped = connected_components_contracting(g, max_levels=1)
        assert capped.iterations == 1
        assert not capped.contracted_to_empty
        # truncation never merges across components: every partial group
        # sits inside one true component
        for lab in np.unique(capped.labels):
            members = np.flatnonzero(capped.labels == lab)
            assert np.unique(full.labels[members]).size == 1

    def test_max_levels_zero_is_identity(self):
        g = path_graph(5)
        res = connected_components_contracting(g, max_levels=0)
        assert res.labels.tolist() == [0, 1, 2, 3, 4]
        assert res.iterations == 0

    def test_rejects_negative_max_levels(self):
        with pytest.raises(ValueError):
            connected_components_contracting(path_graph(3), max_levels=-1)

    def test_level_records(self):
        res = connected_components_contracting(path_graph(8))
        assert isinstance(res, ContractingResult)
        for level in res.levels:
            assert isinstance(level, ContractionLevel)
            assert level.edge_count == level.m // 2


class TestScale:
    def test_fifty_thousand_nodes_vs_oracle(self):
        g = random_edge_list(50_000, 70_000, seed=4)
        res = connected_components_contracting(g)
        assert np.array_equal(res.labels, _oracle(g))

    def test_agrees_with_edgelist_at_scale(self):
        from repro.hirschberg.edgelist import connected_components_edgelist

        g = random_edge_list(200_000, 500_000, seed=5)
        a = connected_components_contracting(g).labels
        b = connected_components_edgelist(g).labels
        assert np.array_equal(a, b)
