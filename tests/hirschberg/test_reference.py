"""Unit + property tests for the reference algorithm."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.graphs.components import canonical_labels
from repro.graphs.generators import (
    complete_graph,
    empty_graph,
    path_graph,
    union_of_cliques,
)
from repro.hirschberg.reference import (
    ReferenceResult,
    connected_components_reference,
    hirschberg_reference,
)
from tests.conftest import CORPUS, adjacency_matrices


class TestCorrectness:
    def test_corpus(self, corpus_graph):
        got = connected_components_reference(corpus_graph)
        assert np.array_equal(got, canonical_labels(corpus_graph))

    @given(adjacency_matrices(max_n=16))
    @settings(max_examples=60)
    def test_random_graphs(self, g):
        assert np.array_equal(
            connected_components_reference(g), canonical_labels(g)
        )

    def test_singleton(self):
        res = hirschberg_reference(empty_graph(1))
        assert res.labels.tolist() == [0]
        assert res.iterations == 0


class TestResultObject:
    def test_component_count(self):
        res = hirschberg_reference(union_of_cliques([3, 2, 1]))
        assert res.component_count == 3

    def test_components_listing(self):
        res = hirschberg_reference(union_of_cliques([2, 2]))
        assert res.components() == [[0, 1], [2, 3]]

    def test_history(self):
        res = hirschberg_reference(complete_graph(4), keep_history=True)
        assert len(res.history) == res.iterations + 1
        assert res.history[0].tolist() == [0, 1, 2, 3]
        assert np.array_equal(res.history[-1], res.labels)

    def test_no_history_by_default(self):
        assert hirschberg_reference(complete_graph(4)).history == []

    def test_hook_called_per_iteration(self):
        calls = []
        hirschberg_reference(
            path_graph(8), on_iteration=lambda k, C, T: calls.append(k)
        )
        assert calls == [0, 1, 2]


class TestIterationControl:
    def test_explicit_iterations(self):
        res = hirschberg_reference(path_graph(8), iterations=1)
        assert res.iterations == 1

    def test_zero_iterations_identity(self):
        res = hirschberg_reference(path_graph(4), iterations=0)
        assert res.labels.tolist() == [0, 1, 2, 3]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            hirschberg_reference(path_graph(4), iterations=-1)

    def test_extra_iterations_stable(self):
        g = CORPUS["random_medium"]
        base = hirschberg_reference(g)
        more = hirschberg_reference(g, iterations=base.iterations + 3)
        assert np.array_equal(base.labels, more.labels)


class TestConvergenceBehaviour:
    @given(adjacency_matrices(min_n=2, max_n=14))
    @settings(max_examples=40)
    def test_labels_monotone_nonincreasing(self, g):
        """Across iterations, each node's label never increases: merging
        always moves toward the component minimum."""
        res = hirschberg_reference(g, keep_history=True)
        for earlier, later in zip(res.history, res.history[1:]):
            assert (later <= earlier).all()

    @given(adjacency_matrices(min_n=2, max_n=14))
    @settings(max_examples=40)
    def test_component_count_nonincreasing(self, g):
        res = hirschberg_reference(g, keep_history=True)
        counts = [int(np.unique(h).size) for h in res.history]
        assert all(b <= a for a, b in zip(counts, counts[1:]))

    def test_path_halving(self):
        """On a path, components at least halve each iteration until done
        (the paper's log n argument)."""
        res = hirschberg_reference(path_graph(16), keep_history=True)
        counts = [int(np.unique(h).size) for h in res.history]
        final = counts[-1]
        for a, b in zip(counts, counts[1:]):
            if a > final:
                assert b <= (a + 1) // 2
