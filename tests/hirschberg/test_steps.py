"""Unit tests for the six Hirschberg steps (repro.hirschberg.steps)."""

import numpy as np
import pytest
from hypothesis import given

from repro.graphs.generators import complete_graph, empty_graph, from_edges
from repro.hirschberg.steps import (
    one_iteration,
    step1_init,
    step2_candidate_components,
    step3_supernode_min,
    step4_adopt,
    step5_pointer_jump,
    step6_resolve_pairs,
)
from tests.conftest import adjacency_matrices


class TestStep1:
    def test_identity(self):
        assert step1_init(5).tolist() == [0, 1, 2, 3, 4]


class TestStep2:
    def test_smallest_foreign_neighbor(self):
        # 0-1, 1-2: node 1's smallest foreign neighbour component is 0
        g = from_edges(3, [(0, 1), (1, 2)])
        C = step1_init(3)
        T = step2_candidate_components(g, C)
        assert T.tolist() == [1, 0, 1]

    def test_no_neighbor_keeps_own(self):
        g = empty_graph(3)
        C = step1_init(3)
        assert step2_candidate_components(g, C).tolist() == [0, 1, 2]

    def test_same_component_neighbors_ignored(self):
        g = from_edges(3, [(0, 1)])
        C = np.array([0, 0, 2])  # 0 and 1 already merged
        T = step2_candidate_components(g, C)
        assert T.tolist() == [0, 0, 2]

    def test_minimum_selected(self):
        # node 3 adjacent to components 2 and 0 -> picks 0
        g = from_edges(4, [(3, 2), (3, 0)])
        C = step1_init(4)
        assert step2_candidate_components(g, C)[3] == 0


class TestStep3:
    def test_supernode_gathers_members(self):
        C = np.array([0, 0, 2])
        T = np.array([2, 2, 0])  # members of comp 0 found comp 2
        out = step3_supernode_min(C, T)
        assert out[0] == 2

    def test_nonsupernode_gets_own_component(self):
        C = np.array([0, 0, 2])
        T = np.array([2, 2, 0])
        out = step3_supernode_min(C, T)
        assert out[1] == 0  # node 1 has no members: falls back to C(1)

    def test_trivial_candidates_excluded(self):
        # member found nothing (T(j) == supernode id): excluded
        C = np.array([0, 0])
        T = np.array([0, 0])
        out = step3_supernode_min(C, T)
        assert out.tolist() == [0, 0]


class TestStep5:
    def test_jump_collapses_chain(self):
        C = np.array([0, 0, 1, 2])  # chain 3->2->1->0
        out = step5_pointer_jump(C, 2)
        assert out.tolist() == [0, 0, 0, 0]

    def test_zero_iterations(self):
        C = np.array([1, 0])
        assert step5_pointer_jump(C, 0).tolist() == [1, 0]

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            step5_pointer_jump(np.array([0]), -1)


class TestStep6:
    def test_resolves_mutual_pair(self):
        # after jumping, the K2 pair has split to self-roots
        C = np.array([0, 1])
        T = np.array([1, 0])
        assert step6_resolve_pairs(C, T).tolist() == [0, 0]

    def test_keeps_smaller(self):
        C = np.array([0, 0])
        T = np.array([0, 0])
        assert step6_resolve_pairs(C, T).tolist() == [0, 0]


class TestOneIteration:
    def test_k2_converges_in_one(self):
        g = from_edges(2, [(0, 1)])
        C, T = one_iteration(g, step1_init(2), jump_iterations=1)
        assert C.tolist() == [0, 0]
        assert T.tolist() == [1, 0]

    def test_complete_graph_one_iteration(self):
        g = complete_graph(6)
        C, _T = one_iteration(g, step1_init(6), jump_iterations=3)
        assert C.tolist() == [0] * 6

    @given(adjacency_matrices(min_n=2, max_n=12))
    def test_iteration_invariants(self, g):
        """One iteration preserves the labelling invariants:
        C(i) <= i's old label never increases past merging, labels are
        valid representatives (C(C(i)) == C(i)), and connected nodes'
        labels only merge (never split)."""
        n = g.n
        from repro.util.intmath import jump_iterations

        C, _ = one_iteration(g, step1_init(n), jump_iterations(n))
        # labels are valid component representatives
        assert np.array_equal(C[C], C)
        # every label is the id of some node in the same new component
        for i in range(n):
            assert 0 <= C[i] < n
