"""The chunk-parallel label-propagation engine against the oracles.

Every variant must emit the canonical minimum-index labelling
bit-for-bit -- the same vector as the union-find oracle, the
contracting engine and ``fastsv_reference`` -- for any chunking, any
worker count, and on every degenerate shape (empty, singleton,
edgeless, more chunks than edges).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.analysis.shm import live_segments
from repro.graphs.components import canonical_labels
from repro.graphs.union_find import UnionFind
from repro.hirschberg.edgelist import EdgeListGraph, random_edge_list
from repro.hirschberg.fastsv import fastsv_reference
from repro.hirschberg.parallel import (
    DEFAULT_SEED,
    ParallelResult,
    connected_components_parallel,
)
from repro.core import parallel_kernels as pk
from tests.conftest import adjacency_matrices


def oracle_labels(g: EdgeListGraph) -> np.ndarray:
    uf = UnionFind(g.n)
    half = g.src.size // 2
    for u, v in zip(g.src[:half].tolist(), g.dst[:half].tolist()):
        uf.union(u, v)
    return np.asarray(uf.canonical_labels())


def edgeless(n: int) -> EdgeListGraph:
    return EdgeListGraph(
        n=n, src=np.empty(0, dtype=np.int64), dst=np.empty(0, dtype=np.int64)
    )


class TestKernels:
    def test_chunk_bounds_balanced_and_degenerate(self):
        b = pk.chunk_bounds(10, 3)
        assert b[0] == 0 and b[-1] == 10
        assert np.all(np.diff(b) >= 0)
        # more chunks than items: trailing empty chunks, still covering
        b = pk.chunk_bounds(2, 8)
        assert b[0] == 0 and b[-1] == 2 and len(b) == 9
        with pytest.raises(ValueError):
            pk.chunk_bounds(10, 0)
        with pytest.raises(ValueError):
            pk.chunk_bounds(-1, 2)

    @pytest.mark.parametrize("variant", pk.VARIANTS)
    @pytest.mark.parametrize("chunks", [1, 2, 3, 7])
    def test_hook_is_chunk_invariant(self, variant, chunks):
        """The elementwise min of per-chunk partials equals the serial
        scatter over all edges -- MIN is associative and commutative."""
        g = random_edge_list(200, 600, seed=9)
        rng = np.random.default_rng(1)
        f = np.minimum(np.arange(g.n), rng.integers(0, g.n, g.n))
        seed = 77 if variant == "stochastic" else pk.DETERMINISTIC
        serial = np.empty(g.n, dtype=np.int64)
        pk.hook_partial(f, g.src, g.dst, 0, g.src.size, serial,
                        variant, seed)
        bounds = pk.chunk_bounds(g.src.size, chunks)
        partials = [np.empty(g.n, dtype=np.int64) for _ in range(chunks)]
        for i in range(chunks):
            pk.hook_partial(f, g.src, g.dst, int(bounds[i]),
                            int(bounds[i + 1]), partials[i], variant, seed)
        merged = partials[0]
        for p in partials[1:]:
            np.minimum(merged, p, out=merged)
        assert np.array_equal(merged, serial)

    def test_jump_chunk_writes_only_its_slice(self):
        front = np.array([0, 0, 1, 2, 4, 4, 5], dtype=np.int64)
        back = np.full(7, -7, dtype=np.int64)
        pk.jump_chunk(front, back, 2, 5)
        assert np.array_equal(back[:2], [-7, -7])
        assert np.array_equal(back[5:], [-7, -7])
        assert np.array_equal(back[2:5], [0, 1, 4])

    def test_combine_partials_reports_change(self):
        f = np.array([3, 4, 5], dtype=np.int64)
        assert pk.combine_partials(f, [np.array([3, 4, 5], dtype=np.int64)]) \
            is False
        assert pk.combine_partials(f, [np.array([9, 2, 9], dtype=np.int64)])
        assert np.array_equal(f, [3, 2, 5])
        assert pk.combine_partials(f, []) is False

    def test_coins_depend_only_on_label_and_seed(self):
        labels = np.arange(64, dtype=np.int64)
        a = pk._coins(labels, 5)
        b = pk._coins(labels.copy(), 5)
        assert np.array_equal(a, b)
        assert a.any() and not a.all()  # a fair-ish mix of both faces
        assert not np.array_equal(a, pk._coins(labels, 6))


class TestDegenerate:
    @pytest.mark.parametrize("variant", pk.VARIANTS)
    def test_empty_graph(self, variant):
        res = connected_components_parallel(edgeless(0), variant=variant)
        assert isinstance(res, ParallelResult)
        assert res.labels.size == 0 and res.component_count == 0

    @pytest.mark.parametrize("variant", pk.VARIANTS)
    def test_single_vertex(self, variant):
        res = connected_components_parallel(edgeless(1), variant=variant)
        assert np.array_equal(res.labels, [0])
        assert res.component_count == 1

    def test_edgeless_graph(self):
        res = connected_components_parallel(edgeless(64))
        assert np.array_equal(res.labels, np.arange(64))

    def test_more_chunks_than_edges(self):
        g = random_edge_list(30, 4, seed=3)
        res = connected_components_parallel(g, chunks=64)
        assert np.array_equal(res.labels, oracle_labels(g))
        assert res.chunks == 64

    def test_round_cap_respected(self):
        g = random_edge_list(512, 511, seed=8)
        res = connected_components_parallel(g, max_rounds=1)
        assert res.rounds == 1

    def test_validation(self):
        g = random_edge_list(10, 5, seed=1)
        with pytest.raises(ValueError):
            connected_components_parallel(g, variant="nope")
        with pytest.raises(ValueError):
            connected_components_parallel(g, chunks=0)
        with pytest.raises(ValueError):
            connected_components_parallel(g, seed=-2)


class TestOracle:
    @pytest.mark.parametrize("variant", pk.VARIANTS)
    @pytest.mark.parametrize("n,m", [
        (2, 1), (50, 25), (200, 400), (1_000, 1_500), (5_000, 20_000),
    ])
    def test_matches_union_find(self, variant, n, m):
        g = random_edge_list(n, m, seed=n + m)
        res = connected_components_parallel(g, variant=variant)
        assert np.array_equal(res.labels, oracle_labels(g))
        assert not res.pooled and res.workers == 1

    def test_variants_bit_identical(self):
        g = random_edge_list(2_000, 6_000, seed=17)
        runs = [
            connected_components_parallel(g, variant=v).labels
            for v in pk.VARIANTS
        ]
        for labels in runs[1:]:
            assert np.array_equal(labels, runs[0])

    def test_stochastic_confirms_deterministically(self):
        g = random_edge_list(3_000, 4_500, seed=23)
        res = connected_components_parallel(
            g, variant="stochastic", seed=DEFAULT_SEED
        )
        assert res.confirm_rounds >= 1
        assert np.array_equal(res.labels, oracle_labels(g))

    @given(adjacency_matrices(max_n=24))
    @settings(max_examples=40, deadline=None)
    def test_hypothesis_all_variants_vs_oracles(self, g):
        edges = EdgeListGraph.from_adjacency(g)
        expected = canonical_labels(g)
        reference = fastsv_reference(g).labels
        assert np.array_equal(reference, expected)
        for variant in pk.VARIANTS:
            for chunks in (1, 3):
                res = connected_components_parallel(
                    edges, variant=variant, chunks=chunks
                )
                assert np.array_equal(res.labels, expected), (variant, chunks)


class TestPooled:
    @pytest.fixture(scope="class")
    def pool(self):
        from repro.serve.executor import PoolExecutor

        pool = PoolExecutor(workers=2, calibrate=False).start()
        yield pool
        pool.shutdown()
        assert live_segments() == frozenset()

    @pytest.mark.parametrize("variant", pk.VARIANTS)
    def test_pooled_matches_inline_bit_for_bit(self, pool, variant):
        g = random_edge_list(4_000, 12_000, seed=29)
        inline = connected_components_parallel(g, variant=variant)
        pooled = connected_components_parallel(g, variant=variant, pool=pool)
        assert pooled.pooled and pooled.workers == 2
        assert np.array_equal(pooled.labels, inline.labels)

    def test_single_worker_pool(self):
        from repro.serve.executor import PoolExecutor

        g = random_edge_list(1_000, 2_500, seed=33)
        pool = PoolExecutor(workers=1, calibrate=False).start()
        try:
            res = connected_components_parallel(g, pool=pool)
            assert np.array_equal(res.labels, oracle_labels(g))
            assert res.workers == 1 and res.pooled
        finally:
            pool.shutdown()

    def test_chunk_override_and_no_leaks(self, pool):
        g = random_edge_list(600, 1_800, seed=37)
        before = live_segments()
        res = connected_components_parallel(g, pool=pool, chunks=5)
        assert res.chunks == 5
        assert np.array_equal(res.labels, oracle_labels(g))
        assert live_segments() == before

    def test_executor_chunk_rounds_directly(self, pool):
        """The executor's barrier API: one hook round + one jump round
        hand-driven over shared slabs."""
        from repro.analysis.shm import SharedArray

        g = random_edge_list(100, 300, seed=41)
        blocks = []
        try:
            src = SharedArray.create(g.src)
            blocks.append(src)
            dst = SharedArray.create(g.dst)
            blocks.append(dst)
            f = SharedArray.create(np.arange(g.n, dtype=np.int64))
            blocks.append(f)
            back = SharedArray.zeros((g.n,), np.int64)
            blocks.append(back)
            parts = SharedArray.zeros((2, g.n), np.int64)
            blocks.append(parts)
            from repro.analysis.shm import SharedArrayRef

            rows = [
                SharedArrayRef(parts.ref.name, (g.n,), np.dtype(np.int64).str,
                               offset=i * g.n * 8)
                for i in range(2)
            ]
            bounds = pk.chunk_bounds(g.src.size, 2)
            pool.label_hook_round(f.ref, src.ref, dst.ref, rows,
                                  bounds, variant="sv")
            expected = np.empty(g.n, dtype=np.int64)
            pk.hook_partial(np.arange(g.n), g.src, g.dst, 0, g.src.size,
                            expected, "sv")
            merged = np.minimum(parts.array[0], parts.array[1])
            assert np.array_equal(merged, expected)
            pk.combine_partials(f.array, [parts.array[0], parts.array[1]])
            vbounds = pk.chunk_bounds(g.n, 2)
            pool.label_jump_round(f.ref, back.ref, vbounds)
            serial = np.empty(g.n, dtype=np.int64)
            pk.jump_chunk(f.array, serial, 0, g.n)
            assert np.array_equal(back.array, serial)
        finally:
            for b in blocks:
                b.close()
                b.unlink()
