"""Tests for the work-efficient edge-list variant."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.graphs.components import canonical_labels
from repro.graphs.generators import path_graph, random_graph
from repro.graphs.union_find import UnionFind
from repro.hirschberg.edgelist import (
    EdgeListGraph,
    connected_components_edgelist,
    random_edge_list,
)
from tests.conftest import adjacency_matrices


class TestEdgeListGraph:
    def test_from_edges(self):
        g = EdgeListGraph.from_edges(4, [(0, 1), (2, 3)])
        assert g.n == 4
        assert g.edge_count == 2
        assert g.src.size == 4  # both directions

    def test_empty(self):
        g = EdgeListGraph.from_edges(3, [])
        assert g.edge_count == 0

    def test_drops_self_loops(self):
        g = EdgeListGraph.from_edges(3, [(1, 1), (0, 2)])
        assert g.edge_count == 1
        assert sorted(zip(g.src.tolist(), g.dst.tolist())) == [(0, 2), (2, 0)]

    def test_deduplicates_parallel_edges(self):
        # parallel copies and the reversed orientation all collapse to one
        # undirected edge, so m (and the per-iteration scatter work) is not
        # inflated by messy input
        g = EdgeListGraph.from_edges(4, [(0, 1), (1, 0), (0, 1), (2, 3)])
        assert g.edge_count == 2
        assert g.src.size == 4
        assert sorted(zip(g.src.tolist(), g.dst.tolist())) == [
            (0, 1), (1, 0), (2, 3), (3, 2),
        ]

    def test_from_arrays_matches_from_edges(self):
        import numpy as np

        u = np.array([3, 1, 1, 2, 2], dtype=np.int64)
        v = np.array([3, 0, 0, 4, 1], dtype=np.int64)
        g_arr = EdgeListGraph.from_arrays(5, u, v)
        g_edges = EdgeListGraph.from_edges(5, zip(u.tolist(), v.tolist()))
        assert g_arr.edge_count == g_edges.edge_count == 3
        assert (g_arr.src == g_edges.src).all()
        assert (g_arr.dst == g_edges.dst).all()

    def test_from_arrays_rejects_mismatched_lengths(self):
        import numpy as np

        with pytest.raises(ValueError):
            EdgeListGraph.from_arrays(3, np.arange(2), np.arange(3))

    def test_rejects_out_of_range(self):
        with pytest.raises(IndexError):
            EdgeListGraph.from_edges(3, [(0, 3)])
        with pytest.raises(IndexError):
            EdgeListGraph.from_edges(3, [(-1, 2)])

    def test_from_adjacency(self):
        dense = random_graph(10, 0.3, seed=0)
        g = EdgeListGraph.from_adjacency(dense)
        assert g.n == 10
        assert g.edge_count == dense.edge_count


class TestCorrectness:
    def test_corpus(self, corpus_graph):
        got = connected_components_edgelist(corpus_graph).labels
        assert np.array_equal(got, canonical_labels(corpus_graph))

    @given(adjacency_matrices(max_n=20))
    @settings(max_examples=60)
    def test_random(self, g):
        got = connected_components_edgelist(g).labels
        assert np.array_equal(got, canonical_labels(g))

    def test_matches_reference_per_iteration(self):
        """Same algorithm, same intermediate labellings as the dense
        reference -- not just the same final answer."""
        from repro.hirschberg.reference import hirschberg_reference

        dense = random_graph(14, 0.25, seed=3)
        ref = hirschberg_reference(dense, keep_history=True)
        for k in range(1, ref.iterations + 1):
            partial = connected_components_edgelist(dense, iterations=k).labels
            assert np.array_equal(partial, ref.history[k]), k

    def test_iterations_zero(self):
        res = connected_components_edgelist(path_graph(5), iterations=0)
        assert res.labels.tolist() == [0, 1, 2, 3, 4]

    def test_rejects_negative_iterations(self):
        with pytest.raises(ValueError):
            connected_components_edgelist(path_graph(3), iterations=-1)


class TestScale:
    def test_fifty_thousand_nodes(self):
        g = random_edge_list(50_000, 60_000, seed=2)
        res = connected_components_edgelist(g)
        uf = UnionFind(g.n)
        half = g.src.size // 2
        for u, v in zip(g.src[:half].tolist(), g.dst[:half].tolist()):
            uf.union(u, v)
        assert np.array_equal(res.labels, uf.canonical_labels())

    def test_random_edge_list_shape(self):
        g = random_edge_list(1000, 500, seed=0)
        assert g.n == 1000
        assert 0 < g.edge_count <= 500

    def test_random_edge_list_degenerate(self):
        assert random_edge_list(1, 10).edge_count == 0
        assert random_edge_list(5, 0).edge_count == 0


class TestSpanningForestEdgelist:
    def assert_valid(self, graph, labels, forest):
        import numpy as np

        from repro.graphs.components import count_components

        n = graph.n
        uf = UnionFind(n)
        for a, b in forest:
            assert graph.has_edge(a, b), (a, b)
            assert uf.union(a, b), f"cycle through ({a}, {b})"
        assert np.array_equal(labels, canonical_labels(graph))
        assert len(forest) == n - count_components(graph)

    def test_corpus(self, corpus_graph):
        from repro.hirschberg.edgelist import spanning_forest_edgelist

        labels, forest = spanning_forest_edgelist(corpus_graph)
        self.assert_valid(corpus_graph, labels, forest)

    @given(adjacency_matrices(max_n=16))
    @settings(max_examples=40)
    def test_random(self, g):
        from repro.hirschberg.edgelist import spanning_forest_edgelist

        labels, forest = spanning_forest_edgelist(g)
        self.assert_valid(g, labels, forest)

    def test_agrees_with_dense_variant(self):
        """Same witnesses as the dense extraction (both pick the smallest
        witness attaining each minimum)."""
        from repro.extensions.spanning_forest import spanning_forest
        from repro.hirschberg.edgelist import spanning_forest_edgelist

        g = random_graph(14, 0.25, seed=8)
        _labels, forest = spanning_forest_edgelist(g)
        dense = spanning_forest(g)
        assert sorted(forest) == sorted(dense.edges)

    def test_large_scale(self):
        import numpy as np

        from repro.hirschberg.edgelist import (
            random_edge_list,
            spanning_forest_edgelist,
        )

        g = random_edge_list(30_000, 40_000, seed=9)
        labels, forest = spanning_forest_edgelist(g)
        uf = UnionFind(g.n)
        for a, b in forest:
            assert uf.union(a, b)
        assert np.array_equal(labels, uf.canonical_labels())
        assert len(forest) == g.n - np.unique(labels).size


class TestPackLimitBoundary:
    """The int64-packing envelope: ``u * n + v`` keys at and beyond the
    2**31 vertex-count boundary, and the guarded paths past the limit."""

    def _pairs(self, n):
        # edges touching the extreme ids, fed in reverse and duplicated
        u = np.array([n - 1, 0, n - 2, n - 1], dtype=np.int64)
        v = np.array([n - 2, 1, n - 1, n - 2], dtype=np.int64)
        return u, v

    @pytest.mark.parametrize("n", [2**31 - 1, 2**31])
    def test_from_arrays_packs_correctly_at_the_boundary(self, n):
        """The worst packed key ``(n-2) * n + (n-1)`` is ~2**62 here --
        inside int64, and the constructor must not wrap."""
        from repro.hirschberg.edgelist import EdgeListGraph

        u, v = self._pairs(n)
        g = EdgeListGraph.from_arrays(n, u, v)
        half = g.src.size // 2
        got = sorted(zip(g.src[:half].tolist(), g.dst[:half].tolist()))
        assert got == [(0, 1), (n - 2, n - 1)]
        assert g.edge_count == 2

    def test_lexsort_fallback_agrees_with_packed_path(self):
        """Past _PACK_LIMIT the constructors switch to lexsort; the two
        canonicalisations must produce the same pair set."""
        from repro.hirschberg.edgelist import _PACK_LIMIT, _canonical_pairs

        rng = np.random.default_rng(0)
        lo = rng.integers(0, 1_000, size=500).astype(np.int64)
        hi = lo + 1 + rng.integers(0, 1_000, size=500).astype(np.int64)
        packed = _canonical_pairs(_PACK_LIMIT, lo, hi)
        lexed = _canonical_pairs(_PACK_LIMIT + 1, lo, hi)
        assert np.array_equal(packed[0], lexed[0])
        assert np.array_equal(packed[1], lexed[1])

    def test_boundary_graph_solves_end_to_end(self):
        """A 2**31-node edge list flows through the contracting solver
        (label arrays are per-touched-vertex, not per-n, in the sharded
        shard solve -- this pins the from_arrays + packing contract)."""
        from repro.hirschberg.sharded import solve_shard_arrays

        n = 2**31
        u = np.array([n - 1, 5], dtype=np.int64)
        v = np.array([n - 2, 6], dtype=np.int64)
        verts, reps = solve_shard_arrays(n, u, v)
        assert dict(zip(verts.tolist(), reps.tolist())) == {
            6: 5, n - 1: n - 2,
        }

    def test_spanning_forest_raises_clearly_past_the_limit(self):
        from repro.hirschberg.edgelist import (
            _PACK_LIMIT,
            EdgeListGraph,
            spanning_forest_edgelist,
        )

        n = _PACK_LIMIT + 1
        g = EdgeListGraph(
            n=n,
            src=np.array([0, 1], dtype=np.int64),
            dst=np.array([1, 0], dtype=np.int64),
        )
        with pytest.raises(ValueError, match="at most n ="):
            spanning_forest_edgelist(g)

    def test_scatter_argmin_raises_clearly_past_the_limit(self):
        from repro.hirschberg.edgelist import _PACK_LIMIT, _scatter_argmin

        with pytest.raises(ValueError, match="scatter-argmin"):
            _scatter_argmin(
                _PACK_LIMIT + 1,
                np.array([0], dtype=np.int64),
                np.array([0], dtype=np.int64),
                np.array([0], dtype=np.int64),
                _PACK_LIMIT + 1,
            )

    def test_dedup_skip_past_the_limit_is_lossless(self):
        """_dedup_edges refuses the packed sort when k would wrap -- the
        duplicates survive (harmless) instead of merging wrongly."""
        from repro.hirschberg.contracting import _dedup_edges
        from repro.hirschberg.edgelist import _PACK_LIMIT

        k = _PACK_LIMIT + 7
        src = np.array([0, 0, k - 1], dtype=np.int64)
        dst = np.array([k - 1, k - 1, 0], dtype=np.int64)
        out_src, out_dst, deduped = _dedup_edges(k, src, dst)
        assert not deduped
        assert np.array_equal(out_src, src)
        assert np.array_equal(out_dst, dst)
        # below the limit the same edges do get the packed dedup
        small_src, small_dst, small_deduped = _dedup_edges(
            10, np.array([0, 0, 9]), np.array([9, 9, 0])
        )
        assert small_deduped
        assert small_src.tolist() == [0, 9]
        assert small_dst.tolist() == [9, 0]
