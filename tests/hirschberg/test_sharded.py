"""The sharded out-of-core engine against the union-find oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.shm import live_segments
from repro.graphs.io import save_edge_list_sparse
from repro.graphs.union_find import UnionFind
from repro.hirschberg.edgelist import EdgeListGraph, random_edge_list
from repro.hirschberg.sharded import (
    ShardedResult,
    connected_components_sharded,
    solve_shard_arrays,
)


def oracle_labels(g: EdgeListGraph) -> np.ndarray:
    uf = UnionFind(g.n)
    half = g.src.size // 2
    for u, v in zip(g.src[:half].tolist(), g.dst[:half].tolist()):
        uf.union(u, v)
    return np.asarray(uf.canonical_labels())


class TestSolveShardArrays:
    def test_empty_shard(self):
        verts, reps = solve_shard_arrays(10, np.empty(0), np.empty(0))
        assert verts.size == 0 and reps.size == 0

    def test_frontier_is_star_pairs_to_minimum(self):
        # one path 4-5-6 and one isolated edge 1-2, inside n=10
        u = np.array([4, 5, 1], dtype=np.int64)
        v = np.array([5, 6, 2], dtype=np.int64)
        verts, reps = solve_shard_arrays(10, u, v)
        frontier = dict(zip(verts.tolist(), reps.tolist()))
        assert frontier == {5: 4, 6: 4, 2: 1}

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            solve_shard_arrays(4, np.array([1]), np.array([9]))
        with pytest.raises(ValueError):
            solve_shard_arrays(4, np.array([-1]), np.array([2]))


class TestShardedOracle:
    @pytest.mark.parametrize("n,m,shards", [
        (1, 0, None), (2, 1, None), (50, 0, 2), (500, 800, 3),
        (5_000, 12_000, 4), (20_000, 60_000, 7),
    ])
    def test_matches_union_find(self, n, m, shards, tmp_path):
        g = random_edge_list(n, m, seed=n)
        res = connected_components_sharded(
            g, shards=shards, memory_budget=64 << 20,
            workdir=tmp_path / "w", spot_check=True,
        )
        assert isinstance(res, ShardedResult)
        assert np.array_equal(res.labels, oracle_labels(g))
        assert res.spot_check is not None and res.spot_check.ok
        if shards is not None:
            assert res.plan.shards == shards

    def test_matches_contracting_engine_bit_for_bit(self):
        from repro.hirschberg.contracting import (
            connected_components_contracting,
        )

        g = random_edge_list(3_000, 9_000, seed=42)
        sharded = connected_components_sharded(g, shards=5)
        in_ram = connected_components_contracting(g)
        assert np.array_equal(sharded.labels, in_ram.labels)

    def test_result_bookkeeping(self):
        g = random_edge_list(1_000, 3_000, seed=13)
        res = connected_components_sharded(g, shards=3)
        assert res.edges == g.src.size
        assert len(res.shard_stats) == 3
        assert sum(s["edges"] for s in res.shard_stats) == g.src.size
        assert res.merge_passes >= 1
        assert set(res.seconds) >= {"partition", "solve", "merge", "total"}
        assert res.components == int(np.unique(res.labels).size)


class TestShardedSources:
    def test_path_source_streams_the_file(self, tmp_path):
        g = random_edge_list(800, 1_500, seed=21)
        path = tmp_path / "graph.txt"
        save_edge_list_sparse(g, path)
        res = connected_components_sharded(str(path), shards=3)
        assert np.array_equal(res.labels, oracle_labels(g))

    def test_chunk_iterable_source(self):
        g = random_edge_list(600, 1_200, seed=22)
        half = g.src.size // 2

        def chunks():
            for start in range(0, half, 100):
                stop = min(start + 100, half)
                yield g.src[start:stop], g.dst[start:stop]

        res = connected_components_sharded(
            (g.n, chunks()), edges_hint=half, shards=2
        )
        assert np.array_equal(res.labels, oracle_labels(g))

    def test_unknown_source_type_rejected(self):
        with pytest.raises(TypeError):
            connected_components_sharded(42)

    def test_bad_workers_rejected(self):
        g = random_edge_list(10, 5, seed=1)
        with pytest.raises(ValueError):
            connected_components_sharded(g, workers=-1)


class TestShardedPoolPaths:
    """The shm worker paths: private pool, borrowed pool, and the
    no-leak postcondition the CI /dev/shm diff also enforces."""

    def test_private_pool_matches_oracle_and_leaks_nothing(self):
        g = random_edge_list(4_000, 10_000, seed=31)
        before = live_segments()
        res = connected_components_sharded(g, shards=4, workers=1)
        assert np.array_equal(res.labels, oracle_labels(g))
        assert live_segments() == before

    def test_borrowed_pool(self):
        from repro.serve.executor import PoolExecutor

        g = random_edge_list(2_000, 5_000, seed=32)
        pool = PoolExecutor(workers=1, calibrate=False).start()
        try:
            res = connected_components_sharded(g, shards=3, pool=pool)
            assert np.array_equal(res.labels, oracle_labels(g))
            # the borrowed pool is still serviceable afterwards
            verts, reps = pool.solve_shard(
                4, np.array([2, 0], dtype=np.int64),
                np.array([3, 1], dtype=np.int64),
            )
            assert dict(zip(verts.tolist(), reps.tolist())) == {1: 0, 3: 2}
        finally:
            pool.shutdown()
        assert live_segments() == frozenset()

    def test_executor_solve_shard_empty(self):
        from repro.serve.executor import PoolExecutor

        pool = PoolExecutor(workers=1, calibrate=False).start()
        try:
            verts, reps = pool.solve_shard(
                5, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
            )
            assert verts.size == 0 and reps.size == 0
        finally:
            pool.shutdown()


class TestWorkdirHygiene:
    def test_default_workdir_removed(self, tmp_path, monkeypatch):
        monkeypatch.setenv("TMPDIR", str(tmp_path))
        import tempfile

        tempfile.tempdir = None  # re-read TMPDIR
        try:
            g = random_edge_list(300, 600, seed=41)
            connected_components_sharded(g, shards=2)
            leftovers = list(tmp_path.iterdir())
            assert leftovers == []
        finally:
            tempfile.tempdir = None

    def test_explicit_workdir_removed_unless_kept(self, tmp_path):
        g = random_edge_list(300, 600, seed=42)
        work = tmp_path / "w"
        connected_components_sharded(g, shards=2, workdir=work)
        assert not work.exists()
        res = connected_components_sharded(
            g, shards=2, workdir=work, keep_workdir=True
        )
        assert work.exists() and list(work.glob("*.pairs"))
        assert np.array_equal(res.labels, oracle_labels(g))

    def test_user_files_survive_cleanup(self, tmp_path):
        g = random_edge_list(100, 200, seed=43)
        work = tmp_path / "w"
        work.mkdir()
        keep = work / "notes.txt"
        keep.write_text("mine")
        connected_components_sharded(g, shards=2, workdir=work)
        assert keep.exists() and keep.read_text() == "mine"
        assert not list(work.glob("*.pairs"))


class TestSpilledLabels:
    def test_tiny_budget_spills_labels_and_stays_correct(self):
        # a budget so small that the n*8 label array must go to disk
        g = random_edge_list(5_000, 8_000, seed=51)
        res = connected_components_sharded(g, memory_budget=32 << 10)
        assert np.array_equal(res.labels, oracle_labels(g))
        # the returned labels are plain in-RAM arrays, not memmaps
        assert type(res.labels) is np.ndarray
