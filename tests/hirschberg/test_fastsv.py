"""Tests for the CRCW min-hooking variant (FastSV-style)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.graphs.components import canonical_labels
from repro.graphs.generators import complete_graph, path_graph, random_graph
from repro.hirschberg.fastsv import fastsv_on_pram, fastsv_reference
from repro.pram.errors import WriteConflictError
from repro.pram.memory import AccessMode
from repro.util.intmath import ceil_log2
from tests.conftest import adjacency_matrices


class TestReference:
    def test_corpus(self, corpus_graph):
        res = fastsv_reference(corpus_graph)
        assert np.array_equal(res.labels, canonical_labels(corpus_graph))

    @given(adjacency_matrices(max_n=20))
    @settings(max_examples=50)
    def test_random(self, g):
        res = fastsv_reference(g)
        assert np.array_equal(res.labels, canonical_labels(g))

    def test_rounds_logarithmic_on_paths(self):
        """Min-hooking converges in O(log n) rounds even on the
        worst-case-diameter input."""
        for n in (64, 256, 1024):
            res = fastsv_reference(path_graph(n))
            assert res.rounds <= 2 * ceil_log2(n), n

    def test_single_round_on_clique(self):
        res = fastsv_reference(complete_graph(16))
        assert res.rounds <= 2

    def test_round_cap_respected(self):
        res = fastsv_reference(path_graph(64), max_rounds=1)
        assert res.rounds == 1
        # one round is not enough on a long path
        assert res.component_count > 1


class TestOnPram:
    def test_corpus_small(self):
        for n, p, seed in ((6, 0.4, 0), (8, 0.25, 1), (10, 0.2, 2)):
            g = random_graph(n, p, seed=seed)
            res = fastsv_on_pram(g)
            assert np.array_equal(res.labels, canonical_labels(g))

    def test_agrees_with_reference(self):
        g = random_graph(9, 0.3, seed=5)
        assert np.array_equal(
            fastsv_on_pram(g).labels, fastsv_reference(g).labels
        )

    def test_needs_concurrent_writes(self):
        """Under CREW the contested hooks must raise -- this family of
        algorithms genuinely requires CRCW, unlike Listing 1 (CROW)."""
        g = complete_graph(6)
        with pytest.raises(WriteConflictError):
            fastsv_on_pram(g, mode=AccessMode.CREW)

    def test_isolated_nodes(self):
        g = random_graph(5, 0.0, seed=0)
        res = fastsv_on_pram(g)
        assert res.labels.tolist() == [0, 1, 2, 3, 4]


class TestAccessModeStory:
    def test_two_disciplines_two_algorithms(self):
        """The complete access-mode picture: Listing 1 runs under CROW,
        min-hooking requires CRCW; both label identically."""
        from repro.hirschberg.pram_impl import hirschberg_on_pram

        g = random_graph(8, 0.3, seed=3)
        crow = hirschberg_on_pram(g, mode=AccessMode.CROW)
        crcw = fastsv_on_pram(g, mode=AccessMode.CRCW)
        assert np.array_equal(crow.labels, crcw.labels)
