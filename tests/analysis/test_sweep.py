"""Tests for the sweep runner."""

import pytest

from repro.analysis.sweep import (
    ENGINES,
    RunRecord,
    SweepSpec,
    dumps_records,
    load_records,
    loads_records,
    run_sweep,
    save_records,
    summarize,
)


def small_spec(**overrides):
    defaults = dict(
        name="unit",
        sizes=[4, 6],
        engines=["vectorized", "unionfind"],
        densities=[0.3],
        workload="random",
        seeds=[0],
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


class TestSpec:
    def test_run_count(self):
        spec = small_spec(sizes=[4, 8], engines=["vectorized"], seeds=[0, 1])
        assert spec.run_count == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            small_spec(workload="nope").validate()
        with pytest.raises(ValueError):
            small_spec(engines=["warp-drive"]).validate()
        with pytest.raises(ValueError):
            small_spec(sizes=[]).validate()

    def test_known_engines(self):
        assert "vectorized" in ENGINES and "row" in ENGINES


class TestRunSweep:
    def test_grid_size(self):
        records = run_sweep(small_spec())
        assert len(records) == 4  # 2 sizes x 2 engines

    def test_all_correct(self):
        records = run_sweep(small_spec(engines=["vectorized", "reference",
                                                "pram", "row", "unionfind"]))
        assert all(r.correct for r in records)

    def test_engine_metrics_populated(self):
        records = run_sweep(small_spec(engines=["interpreter"], sizes=[4]))
        rec = records[0]
        assert rec.generations == 29  # total_generations(4)
        assert rec.work is not None and rec.work > 0
        assert rec.peak_congestion == 5

    def test_workload_families(self):
        for workload in ("random", "path", "tree", "planted"):
            records = run_sweep(
                small_spec(workload=workload, sizes=[8], engines=["vectorized"])
            )
            assert records[0].correct, workload

    def test_timings_nonnegative(self):
        records = run_sweep(small_spec())
        assert all(r.seconds >= 0 for r in records)


class TestBatchedEngine:
    def test_batched_records_per_seed(self):
        records = run_sweep(small_spec(engines=["batched"], sizes=[8],
                                       seeds=[0, 1, 2]))
        assert len(records) == 3
        assert all(r.correct for r in records)
        assert all(r.engine == "batched" for r in records)
        assert all(r.batch_size == 3 for r in records)
        assert all(r.generations is not None for r in records)

    def test_batched_agrees_with_vectorized_early(self):
        """Per-graph generation counts equal the single-engine early-exit
        counts -- the batched engine retires graphs at the same point."""
        spec = small_spec(engines=["vectorized_early", "batched"],
                          sizes=[12], seeds=[0, 1, 2, 3])
        records = run_sweep(spec)
        by_engine = {}
        for r in records:
            by_engine.setdefault(r.engine, []).append(r)
        early = sorted(by_engine["vectorized_early"], key=lambda r: r.seed)
        batched = sorted(by_engine["batched"], key=lambda r: r.seed)
        assert [r.generations for r in early] == [r.generations for r in batched]

    def test_batched_seconds_amortised(self):
        records = run_sweep(small_spec(engines=["batched"], sizes=[6],
                                       seeds=[0, 1]))
        assert records[0].seconds == records[1].seconds


class TestParallelJobs:
    def test_jobs_preserve_record_order(self):
        spec = small_spec(sizes=[4, 6, 8], densities=[0.2, 0.5], seeds=[0, 1])
        serial = run_sweep(spec)
        fanned = run_sweep(spec, jobs=3)
        key = lambda r: (r.engine, r.n, r.density, r.seed)
        assert [key(r) for r in serial] == [key(r) for r in fanned]
        assert all(r.correct for r in fanned)

    def test_jobs_validation(self):
        with pytest.raises(ValueError, match="jobs"):
            run_sweep(small_spec(), jobs=0)

    def test_single_cell_runs_in_process(self):
        records = run_sweep(small_spec(sizes=[4]), jobs=4)
        assert len(records) == 2


class TestPersistence:
    def test_json_roundtrip(self):
        records = run_sweep(small_spec())
        parsed = loads_records(dumps_records(records))
        assert parsed == records

    def test_file_roundtrip(self, tmp_path):
        records = run_sweep(small_spec(sizes=[4]))
        path = tmp_path / "sweep.json"
        save_records(records, path)
        assert load_records(path) == records

    def test_rejects_non_list(self):
        with pytest.raises(ValueError):
            loads_records('{"not": "a list"}')


class TestSummarize:
    def test_rows_shape(self):
        records = run_sweep(small_spec(seeds=[0, 1, 2]))
        rows = summarize(records)
        # one row per (engine, n)
        assert len(rows) == 4
        engine, n, runs, median_ms, correct, gens = rows[0]
        assert runs == 3
        assert correct is True
        assert median_ms >= 0

    def test_generation_column(self):
        records = run_sweep(small_spec(engines=["vectorized"], sizes=[4]))
        rows = summarize(records)
        assert rows[0][5] == 29

    def test_handles_engines_without_generations(self):
        records = run_sweep(small_spec(engines=["unionfind"], sizes=[4]))
        assert summarize(records)[0][5] == "-"
