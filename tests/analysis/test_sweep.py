"""Tests for the sweep runner."""

import numpy as np
import pytest

from repro.analysis.shm import (
    SharedArray,
    SharedWorkspace,
    attach_edge_list,
    share_edge_list,
)
from repro.analysis.sweep import (
    ENGINES,
    SPARSE_ENGINES,
    RunRecord,
    SparseSweepSpec,
    SweepSpec,
    dumps_records,
    load_records,
    loads_records,
    run_sparse_sweep,
    run_sweep,
    save_records,
    summarize,
)
from repro.hirschberg.edgelist import random_edge_list


def small_spec(**overrides):
    defaults = dict(
        name="unit",
        sizes=[4, 6],
        engines=["vectorized", "unionfind"],
        densities=[0.3],
        workload="random",
        seeds=[0],
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


class TestSpec:
    def test_run_count(self):
        spec = small_spec(sizes=[4, 8], engines=["vectorized"], seeds=[0, 1])
        assert spec.run_count == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            small_spec(workload="nope").validate()
        with pytest.raises(ValueError):
            small_spec(engines=["warp-drive"]).validate()
        with pytest.raises(ValueError):
            small_spec(sizes=[]).validate()

    def test_known_engines(self):
        assert "vectorized" in ENGINES and "row" in ENGINES


class TestRunSweep:
    def test_grid_size(self):
        records = run_sweep(small_spec())
        assert len(records) == 4  # 2 sizes x 2 engines

    def test_all_correct(self):
        records = run_sweep(small_spec(engines=["vectorized", "reference",
                                                "pram", "row", "unionfind"]))
        assert all(r.correct for r in records)

    def test_engine_metrics_populated(self):
        records = run_sweep(small_spec(engines=["interpreter"], sizes=[4]))
        rec = records[0]
        assert rec.generations == 29  # total_generations(4)
        assert rec.work is not None and rec.work > 0
        assert rec.peak_congestion == 5

    def test_workload_families(self):
        for workload in ("random", "path", "tree", "planted"):
            records = run_sweep(
                small_spec(workload=workload, sizes=[8], engines=["vectorized"])
            )
            assert records[0].correct, workload

    def test_timings_nonnegative(self):
        records = run_sweep(small_spec())
        assert all(r.seconds >= 0 for r in records)


class TestBatchedEngine:
    def test_batched_records_per_seed(self):
        records = run_sweep(small_spec(engines=["batched"], sizes=[8],
                                       seeds=[0, 1, 2]))
        assert len(records) == 3
        assert all(r.correct for r in records)
        assert all(r.engine == "batched" for r in records)
        assert all(r.batch_size == 3 for r in records)
        assert all(r.generations is not None for r in records)

    def test_batched_agrees_with_vectorized_early(self):
        """Per-graph generation counts equal the single-engine early-exit
        counts -- the batched engine retires graphs at the same point."""
        spec = small_spec(engines=["vectorized_early", "batched"],
                          sizes=[12], seeds=[0, 1, 2, 3])
        records = run_sweep(spec)
        by_engine = {}
        for r in records:
            by_engine.setdefault(r.engine, []).append(r)
        early = sorted(by_engine["vectorized_early"], key=lambda r: r.seed)
        batched = sorted(by_engine["batched"], key=lambda r: r.seed)
        assert [r.generations for r in early] == [r.generations for r in batched]

    def test_batched_seconds_amortised(self):
        records = run_sweep(small_spec(engines=["batched"], sizes=[6],
                                       seeds=[0, 1]))
        assert records[0].seconds == records[1].seconds


class TestParallelJobs:
    def test_jobs_preserve_record_order(self):
        spec = small_spec(sizes=[4, 6, 8], densities=[0.2, 0.5], seeds=[0, 1])
        serial = run_sweep(spec)
        fanned = run_sweep(spec, jobs=3)
        key = lambda r: (r.engine, r.n, r.density, r.seed)
        assert [key(r) for r in serial] == [key(r) for r in fanned]
        assert all(r.correct for r in fanned)

    def test_jobs_validation(self):
        with pytest.raises(ValueError, match="jobs"):
            run_sweep(small_spec(), jobs=0)

    def test_single_cell_runs_in_process(self):
        records = run_sweep(small_spec(sizes=[4]), jobs=4)
        assert len(records) == 2


class TestSparseDenseEngines:
    def test_sparse_engines_on_dense_sweep(self):
        spec = small_spec(engines=["edgelist", "contracting", "auto",
                                   "unionfind"])
        records = run_sweep(spec)
        assert len(records) == 8
        assert all(r.correct for r in records)


class TestSharedMemory:
    def test_array_create_attach_roundtrip(self):
        source = np.arange(100, dtype=np.int64)
        owner = SharedArray.create(source)
        try:
            view = SharedArray.attach(owner.ref)
            assert np.array_equal(view.array, source)
            view.array[0] = -7  # writes land in the same pages
            assert owner.array[0] == -7
            view.close()
        finally:
            owner.close()
            owner.unlink()

    def test_share_edge_list_zero_copy_views(self):
        g = random_edge_list(50, 80, seed=0)
        workspace, ref = share_edge_list(g)
        try:
            attached, handles = attach_edge_list(ref)
            assert attached.n == g.n
            assert np.array_equal(attached.src, g.src)
            assert np.array_equal(attached.dst, g.dst)
            assert ref.edge_count == g.edge_count
            for h in handles:
                h.close()
        finally:
            workspace.close()
            workspace.unlink()

    def test_workspace_context_manager_releases(self):
        with SharedWorkspace() as ws:
            block = ws.zeros((10,), np.int64)
            name = block.ref.name
            assert block.array.sum() == 0
        # the block is unlinked on exit
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestSparseSweep:
    def sparse_spec(self, **overrides):
        defaults = dict(
            name="unit-sparse",
            sizes=[100, 400],
            edge_factors=[1.5],
            engines=["edgelist", "contracting"],
            seeds=[0],
        )
        defaults.update(overrides)
        return SparseSweepSpec(**defaults)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.sparse_spec(engines=["warp-drive"]).validate()
        with pytest.raises(ValueError):
            self.sparse_spec(sizes=[]).validate()
        with pytest.raises(ValueError):
            self.sparse_spec(engines=[]).validate()
        with pytest.raises(ValueError):
            self.sparse_spec(edge_factors=[-1.0]).validate()
        assert "auto" in SPARSE_ENGINES

    def test_grid_and_oracle_verification(self):
        spec = self.sparse_spec(engines=["edgelist", "contracting", "auto"],
                                seeds=[0, 1])
        records = run_sparse_sweep(spec)
        assert len(records) == spec.run_count == 12
        assert all(r.correct for r in records)
        assert all(r.m is not None and r.m >= 0 for r in records)
        auto = [r for r in records if r.engine == "auto"]
        assert all(r.resolved_engine in ("edgelist", "contracting") for r in auto)

    def test_parallel_jobs_zero_copy(self):
        spec = self.sparse_spec(seeds=[0, 1])
        serial = run_sparse_sweep(spec, jobs=1)
        fanned = run_sparse_sweep(spec, jobs=3)
        key = lambda r: (r.engine, r.n, r.seed, r.m, r.correct)
        assert [key(r) for r in serial] == [key(r) for r in fanned]
        assert all(r.correct for r in fanned)

    def test_cross_engine_agreement_above_oracle_limit(self):
        spec = self.sparse_spec(sizes=[600], oracle_max_n=10)
        records = run_sparse_sweep(spec, jobs=2)
        assert all(r.correct for r in records)

    def test_jobs_validation(self):
        with pytest.raises(ValueError, match="jobs"):
            run_sparse_sweep(self.sparse_spec(), jobs=0)

    def test_records_serialise(self):
        records = run_sparse_sweep(self.sparse_spec(sizes=[50]))
        parsed = loads_records(dumps_records(records))
        assert parsed == records
        assert parsed[0].m == records[0].m


class TestPersistence:
    def test_json_roundtrip(self):
        records = run_sweep(small_spec())
        parsed = loads_records(dumps_records(records))
        assert parsed == records

    def test_file_roundtrip(self, tmp_path):
        records = run_sweep(small_spec(sizes=[4]))
        path = tmp_path / "sweep.json"
        save_records(records, path)
        assert load_records(path) == records

    def test_rejects_non_list(self):
        with pytest.raises(ValueError):
            loads_records('{"not": "a list"}')


class TestSummarize:
    def test_rows_shape(self):
        records = run_sweep(small_spec(seeds=[0, 1, 2]))
        rows = summarize(records)
        # one row per (engine, n)
        assert len(rows) == 4
        engine, n, runs, median_ms, correct, gens = rows[0]
        assert runs == 3
        assert correct is True
        assert median_ms >= 0

    def test_generation_column(self):
        records = run_sweep(small_spec(engines=["vectorized"], sizes=[4]))
        rows = summarize(records)
        assert rows[0][5] == 29

    def test_handles_engines_without_generations(self):
        records = run_sweep(small_spec(engines=["unionfind"], sizes=[4]))
        assert summarize(records)[0][5] == "-"
