"""Tests for the sweep runner."""

import pytest

from repro.analysis.sweep import (
    ENGINES,
    RunRecord,
    SweepSpec,
    dumps_records,
    load_records,
    loads_records,
    run_sweep,
    save_records,
    summarize,
)


def small_spec(**overrides):
    defaults = dict(
        name="unit",
        sizes=[4, 6],
        engines=["vectorized", "unionfind"],
        densities=[0.3],
        workload="random",
        seeds=[0],
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


class TestSpec:
    def test_run_count(self):
        spec = small_spec(sizes=[4, 8], engines=["vectorized"], seeds=[0, 1])
        assert spec.run_count == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            small_spec(workload="nope").validate()
        with pytest.raises(ValueError):
            small_spec(engines=["warp-drive"]).validate()
        with pytest.raises(ValueError):
            small_spec(sizes=[]).validate()

    def test_known_engines(self):
        assert "vectorized" in ENGINES and "row" in ENGINES


class TestRunSweep:
    def test_grid_size(self):
        records = run_sweep(small_spec())
        assert len(records) == 4  # 2 sizes x 2 engines

    def test_all_correct(self):
        records = run_sweep(small_spec(engines=["vectorized", "reference",
                                                "pram", "row", "unionfind"]))
        assert all(r.correct for r in records)

    def test_engine_metrics_populated(self):
        records = run_sweep(small_spec(engines=["interpreter"], sizes=[4]))
        rec = records[0]
        assert rec.generations == 29  # total_generations(4)
        assert rec.work is not None and rec.work > 0
        assert rec.peak_congestion == 5

    def test_workload_families(self):
        for workload in ("random", "path", "tree", "planted"):
            records = run_sweep(
                small_spec(workload=workload, sizes=[8], engines=["vectorized"])
            )
            assert records[0].correct, workload

    def test_timings_nonnegative(self):
        records = run_sweep(small_spec())
        assert all(r.seconds >= 0 for r in records)


class TestPersistence:
    def test_json_roundtrip(self):
        records = run_sweep(small_spec())
        parsed = loads_records(dumps_records(records))
        assert parsed == records

    def test_file_roundtrip(self, tmp_path):
        records = run_sweep(small_spec(sizes=[4]))
        path = tmp_path / "sweep.json"
        save_records(records, path)
        assert load_records(path) == records

    def test_rejects_non_list(self):
        with pytest.raises(ValueError):
            loads_records('{"not": "a list"}')


class TestSummarize:
    def test_rows_shape(self):
        records = run_sweep(small_spec(seeds=[0, 1, 2]))
        rows = summarize(records)
        # one row per (engine, n)
        assert len(rows) == 4
        engine, n, runs, median_ms, correct, gens = rows[0]
        assert runs == 3
        assert correct is True
        assert median_ms >= 0

    def test_generation_column(self):
        records = run_sweep(small_spec(engines=["vectorized"], sizes=[4]))
        rows = summarize(records)
        assert rows[0][5] == 29

    def test_handles_engines_without_generations(self):
        records = run_sweep(small_spec(engines=["unionfind"], sizes=[4]))
        assert summarize(records)[0][5] == "-"
