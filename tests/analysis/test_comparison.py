"""Tests for the cross-model comparison toolkit."""

import pytest

from repro.analysis.comparison import (
    compare_models,
    predicted_comparison,
    time_engines,
)
from repro.graphs.generators import random_graph


class TestCompareModels:
    def setup_method(self):
        self.graph = random_graph(8, 0.3, seed=4)
        self.rows = compare_models(self.graph)

    def by_model(self):
        return {r.model: r for r in self.rows}

    def test_all_models_present(self):
        assert {r.model for r in self.rows} == {"gca", "pram", "sequential"}

    def test_all_correct(self):
        assert all(r.labels_correct for r in self.rows)

    def test_parallel_time_beats_sequential(self):
        rows = self.by_model()
        assert rows["gca"].time_units < rows["sequential"].time_units
        assert rows["pram"].time_units < rows["sequential"].time_units

    def test_parallel_work_exceeds_sequential(self):
        rows = self.by_model()
        assert rows["gca"].work > rows["sequential"].work

    def test_sequential_uses_one_pe(self):
        assert self.by_model()["sequential"].processing_elements == 1

    def test_memory_dominated_by_n_squared(self):
        n = self.graph.n
        for r in self.rows:
            assert r.memory_cells >= n * n

    def test_custom_processor_count(self):
        few = compare_models(self.graph, pram_processors=4)
        pram_few = next(r for r in few if r.model == "pram")
        pram_full = self.by_model()["pram"]
        assert pram_few.time_units > pram_full.time_units


class TestPredictedComparison:
    def test_no_execution_needed_for_large_n(self):
        rows = predicted_comparison(1024)
        models = {r.model: r for r in rows}
        assert models["gca"].time_units == 1 + 10 * (3 * 10 + 8)
        assert models["sequential"].time_units == 1024 * 1024

    def test_crossover_character(self):
        """The asymptotic story: parallel time is polylog, sequential is
        quadratic, so the gap explodes with n."""
        small = {r.model: r for r in predicted_comparison(4)}
        large = {r.model: r for r in predicted_comparison(4096)}
        gap_small = small["sequential"].time_units / small["gca"].time_units
        gap_large = large["sequential"].time_units / large["gca"].time_units
        assert gap_large > gap_small * 100


class TestTimeEngines:
    def test_default_engines(self):
        rows = time_engines(random_graph(16, 0.2, seed=0), repeats=1)
        assert {r.engine for r in rows} == {"vectorized", "reference", "unionfind"}
        assert all(r.seconds >= 0 for r in rows)

    def test_interpreter_opt_in(self):
        rows = time_engines(
            random_graph(4, 0.5, seed=0), engines=["interpreter"], repeats=1
        )
        assert rows[0].engine == "interpreter"

    def test_unknown_engine(self):
        with pytest.raises(ValueError):
            time_engines(random_graph(4, 0.5, seed=0), engines=["magic"])
