"""Tests for the analysis report rendering."""

from repro.analysis.comparison import compare_models, time_engines
from repro.analysis.complexity import compare_table2, measured_total, predicted_total
from repro.analysis.congestion import compare_table1
from repro.analysis.report import (
    render_model_comparison,
    render_table1,
    render_table2,
    render_timings,
    render_totals,
)
from repro.core.machine import connected_components_interpreter
from repro.graphs.generators import random_graph


def run_log(n=4):
    return connected_components_interpreter(random_graph(n, 0.5, seed=0)).access_log


class TestRenderers:
    def test_table1_contains_rows(self):
        n = 4
        out = render_table1(n, compare_table1(n, run_log(n)))
        assert "Table 1 reproduction" in out
        assert "gen" in out
        assert len(out.splitlines()) == 3 + 12  # title + header + rule + rows

    def test_table1_histogram_format(self):
        out = render_table1(4, compare_table1(4, run_log(4)))
        assert "@" in out  # #cells@delta notation

    def test_table2(self):
        n = 4
        out = render_table2(n, compare_table2(n, run_log(n)))
        assert "log(n)" in out
        assert "yes" in out

    def test_totals(self):
        rows = [predicted_total(4), measured_total(4, run_log(4))]
        out = render_totals(rows)
        assert "1+log n(3log n+8)" in out
        assert out.count("\n") >= 3

    def test_model_comparison(self):
        out = render_model_comparison(compare_models(random_graph(4, 0.5, seed=1)))
        assert "gca" in out and "pram" in out and "sequential" in out

    def test_timings(self):
        rows = time_engines(random_graph(6, 0.4, seed=2), repeats=1)
        out = render_timings(rows)
        assert "ms (best)" in out
        assert "vectorized" in out
