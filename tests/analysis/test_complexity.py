"""Tests for the Table 2 / total-generation reproduction."""

import pytest

from repro.analysis.complexity import (
    compare_table2,
    gca_cells,
    gca_time,
    gca_work,
    measured_generations_per_step,
    measured_total,
    pram_work_optimal_processors,
    predicted_table2,
    predicted_total,
    schedule_total,
    sequential_time,
)
from repro.core.machine import connected_components_interpreter
from repro.graphs.generators import random_graph
from repro.util.intmath import ceil_log2


def run_log(n=8):
    return connected_components_interpreter(random_graph(n, 0.4, seed=1)).access_log


class TestPredictedTable2:
    def test_row_structure(self):
        rows = predicted_table2(16)
        assert [r.step for r in rows] == [1, 2, 3, 4, 5, 6]
        assert [r.predicted for r in rows] == [1, 7, 7, 1, 4, 1]

    def test_formula_strings(self):
        rows = {r.step: r for r in predicted_table2(4)}
        assert rows[2].paper_formula == "1 + log(n) + 1 + 1"
        assert rows[5].paper_formula == "log(n)"


class TestMeasuredTable2:
    def test_measured_matches_predicted(self):
        n = 8
        rows = compare_table2(n, run_log(n))
        for row in rows:
            assert row.matches, row

    def test_counts_by_step(self):
        counts = measured_generations_per_step(run_log(8))
        assert counts == {1: 1, 2: 6, 3: 6, 4: 1, 5: 3, 6: 1}

    def test_later_iteration(self):
        counts = measured_generations_per_step(run_log(8), iteration=2)
        # step 1 (gen0) only counted once globally, still attributed
        assert counts[2] == 6 and counts[5] == 3


class TestTotals:
    def test_predicted_closed_form(self):
        t = predicted_total(16)
        assert t.log_n == 4
        assert t.per_iteration == 3 * 4 + 8
        assert t.predicted_total == 1 + 4 * 20

    def test_schedule_agrees_with_formula(self):
        for n in (2, 3, 4, 7, 8, 16, 31, 32):
            assert schedule_total(n) == predicted_total(n).predicted_total

    def test_measured_total_matches(self):
        n = 8
        t = measured_total(n, run_log(n))
        assert t.matches
        assert t.measured_total == t.predicted_total

    def test_growth_is_log_squared(self):
        """total(n) / log^2(n) approaches the constant 3."""
        ratios = [
            predicted_total(n).predicted_total / ceil_log2(n) ** 2
            for n in (2**k for k in range(3, 11))
        ]
        assert all(earlier >= later for earlier, later in zip(ratios, ratios[1:]))
        assert 3.0 < ratios[-1] < 4.0


class TestCostQuantities:
    def test_gca_cells(self):
        assert gca_cells(16) == 272

    def test_gca_time_positive(self):
        assert gca_time(16) == predicted_total(16).predicted_total

    def test_work_not_optimal(self):
        """GCA work exceeds the sequential bound by ~log^2 n -- the paper's
        deliberate departure from PRAM work-optimality."""
        n = 64
        assert gca_work(n) > sequential_time(n)
        assert gca_work(n) < sequential_time(n) * (3 * ceil_log2(n) ** 2 + 60)

    def test_sequential_time(self):
        assert sequential_time(10) == 100
        with pytest.raises(ValueError):
            sequential_time(0)

    def test_work_optimal_processors(self):
        assert pram_work_optimal_processors(16) == 256 // 16
        assert pram_work_optimal_processors(2) >= 1
