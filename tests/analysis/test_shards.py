"""Shard planning, windowed pair files, and the spot-check protocol."""

from __future__ import annotations

import mmap

import numpy as np
import pytest

from repro.analysis.shards import (
    DEFAULT_CHUNK_EDGES,
    MAX_SHARDS,
    MIN_SHARD_EDGES,
    PairFile,
    ShardStore,
    open_memmap_window,
    plan_shards,
    remove_workdir,
    spot_check_labels,
)
from repro.graphs.union_find import UnionFind
from repro.hirschberg.edgelist import random_edge_list


def oracle_labels(g) -> np.ndarray:
    uf = UnionFind(g.n)
    half = g.src.size // 2
    for u, v in zip(g.src[:half].tolist(), g.dst[:half].tolist()):
        uf.union(u, v)
    return np.asarray(uf.canonical_labels())


class TestPlanShards:
    def test_small_input_is_one_shard(self):
        plan = plan_shards(1000, 5_000, memory_budget=1 << 30)
        assert plan.shards == 1
        assert plan.workers == 1
        assert plan.shard_edges >= 5_000

    def test_shard_count_scales_with_edges(self):
        budget = MIN_SHARD_EDGES * 256 * 2
        small = plan_shards(10, MIN_SHARD_EDGES, memory_budget=budget)
        large = plan_shards(10, 64 * MIN_SHARD_EDGES, memory_budget=budget)
        assert large.shards > small.shards
        # every shard carries its share of the edges
        assert large.shards * large.shard_edges >= 64 * MIN_SHARD_EDGES

    def test_more_workers_means_smaller_shards(self):
        budget = 1 << 28
        solo = plan_shards(10, 50_000_000, memory_budget=budget, workers=1)
        quad = plan_shards(10, 50_000_000, memory_budget=budget, workers=4)
        assert quad.shards >= solo.shards
        assert quad.shard_edges <= solo.shard_edges

    def test_explicit_shard_override(self):
        plan = plan_shards(10, 1_000, memory_budget=1 << 30, shards=7)
        assert plan.shards == 7
        assert plan.shard_edges == -(-1_000 // 7)

    def test_shard_cap(self):
        plan = plan_shards(10, 10**9, memory_budget=1 << 20)
        assert plan.shards <= MAX_SHARDS
        with pytest.raises(ValueError):
            plan_shards(10, 100, memory_budget=1 << 20, shards=MAX_SHARDS + 1)

    def test_chunk_edges_bounded(self):
        plan = plan_shards(10, 10**8, memory_budget=1 << 30)
        assert 4096 <= plan.chunk_edges <= DEFAULT_CHUNK_EDGES

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            plan_shards(0, 10)
        with pytest.raises(ValueError):
            plan_shards(10, -1)
        with pytest.raises(ValueError):
            plan_shards(10, 10, memory_budget=0)
        with pytest.raises(ValueError):
            plan_shards(10, 10, workers=0)
        with pytest.raises(ValueError):
            plan_shards(10, 10, memory_budget=1 << 20, shards=0)

    def test_probed_budget_default(self):
        # no budget -> the planner probes the host; the plan is usable
        plan = plan_shards(10, 1_000)
        assert plan.memory_budget > 0
        assert plan.shards >= 1

    def test_to_json_round_trip_fields(self):
        plan = plan_shards(10, 1_000, memory_budget=1 << 30, shards=3)
        doc = plan.to_json()
        assert doc["shards"] == 3 and doc["edges"] == 1_000
        assert set(doc) == {
            "n", "edges", "shards", "shard_edges", "memory_budget",
            "chunk_edges", "workers",
        }


class TestMemmapWindow:
    def _write(self, path, values):
        np.asarray(values, dtype=np.int64).tofile(path)

    def test_aligned_and_unaligned_windows(self, tmp_path):
        path = tmp_path / "flat.bin"
        data = np.arange(10_000, dtype=np.int64)
        self._write(path, data)
        # windows that start off the mmap allocation granularity exercise
        # the lead-byte arithmetic
        for start, stop in ((0, 10), (1, 2), (511, 1024),
                            (mmap.ALLOCATIONGRANULARITY // 8 + 3, 9_999)):
            with open_memmap_window(path, start, stop) as view:
                assert np.array_equal(view, data[start:stop])

    def test_empty_window(self, tmp_path):
        path = tmp_path / "flat.bin"
        self._write(path, [1, 2, 3])
        with open_memmap_window(path, 2, 2) as view:
            assert view.size == 0

    def test_negative_window_rejected(self, tmp_path):
        path = tmp_path / "flat.bin"
        self._write(path, [1, 2, 3])
        with pytest.raises(ValueError):
            with open_memmap_window(path, 2, 1):
                pass

    def test_window_is_unmapped_on_exit(self, tmp_path):
        path = tmp_path / "flat.bin"
        self._write(path, np.arange(100))
        with open_memmap_window(path, 0, 100) as view:
            assert int(view[7]) == 7
            base = view
            while isinstance(base, np.ndarray):  # walk to the raw mapping
                base = base.base
            assert isinstance(base, mmap.mmap) and not base.closed
        # the mapping was released eagerly, not left to the collector
        assert base.closed


class TestPairFile:
    def test_append_and_read_all(self, tmp_path):
        pf = PairFile(tmp_path / "p.pairs")
        u1, v1 = np.array([1, 2, 3]), np.array([4, 5, 6])
        pf.append(u1, v1)
        pf.append(np.array([7]), np.array([8]))
        assert pf.pairs == 4
        u, v = pf.read_all()
        assert u.tolist() == [1, 2, 3, 7]
        assert v.tolist() == [4, 5, 6, 8]
        pf.close()

    def test_iter_chunks_bounded_and_complete(self, tmp_path):
        pf = PairFile(tmp_path / "p.pairs")
        rng = np.random.default_rng(0)
        u = rng.integers(0, 1000, size=10_001)
        v = rng.integers(0, 1000, size=10_001)
        pf.append(u, v)
        got_u, got_v = [], []
        for cu, cv in pf.iter_chunks(256):
            assert cu.size <= 256 and cu.size == cv.size
            got_u.append(cu)
            got_v.append(cv)
        assert np.array_equal(np.concatenate(got_u), u)
        assert np.array_equal(np.concatenate(got_v), v)
        pf.close()

    def test_reopen_counts_existing_pairs(self, tmp_path):
        path = tmp_path / "p.pairs"
        with PairFile(path) as pf:
            pf.append(np.array([1, 2]), np.array([3, 4]))
        again = PairFile(path)
        assert again.pairs == 2
        again.close()

    def test_mismatched_lengths_rejected(self, tmp_path):
        pf = PairFile(tmp_path / "p.pairs")
        with pytest.raises(ValueError):
            pf.append(np.array([1, 2]), np.array([3]))
        pf.close()

    def test_remove_is_idempotent(self, tmp_path):
        pf = PairFile(tmp_path / "p.pairs")
        pf.append(np.array([1]), np.array([2]))
        pf.remove()
        pf.remove()
        assert not (tmp_path / "p.pairs").exists()


class TestShardStore:
    def test_partition_is_balanced_even_on_sorted_input(self, tmp_path):
        store = ShardStore(tmp_path / "w", shards=4)
        # a sorted stream: naive contiguous splitting would put all the
        # small endpoints in shard 0
        u = np.arange(10_000, dtype=np.int64)
        v = u + 1
        total = store.partition([(u[:5_000], v[:5_000]),
                                 (u[5_000:], v[5_000:])])
        assert total == 10_000
        counts = [store.edge_count(i) for i in range(4)]
        assert sum(counts) == 10_000
        assert max(counts) - min(counts) <= 2
        store.remove()

    def test_round_trip_preserves_every_edge(self, tmp_path):
        store = ShardStore(tmp_path / "w", shards=3)
        rng = np.random.default_rng(1)
        u = rng.integers(0, 500, size=4_321)
        v = rng.integers(0, 500, size=4_321)
        store.partition([(u, v)])
        seen = set()
        for cu, cv in store.iter_all_chunks(1_000):
            seen.update(zip(cu.tolist(), cv.tolist()))
        assert seen == set(zip(u.tolist(), v.tolist()))
        assert store.total_edges() == 4_321
        store.remove()

    def test_remove_then_remove_workdir_leaves_nothing(self, tmp_path):
        workdir = tmp_path / "w"
        store = ShardStore(workdir, shards=2)
        store.partition([(np.array([1, 2]), np.array([3, 4]))])
        store.remove()
        remove_workdir(workdir)
        assert not workdir.exists()

    def test_remove_workdir_spares_user_files(self, tmp_path):
        workdir = tmp_path / "w"
        store = ShardStore(workdir, shards=1)
        store.partition([(np.array([1]), np.array([2]))])
        store.close()
        keep = workdir / "notes.txt"
        keep.write_text("mine")
        remove_workdir(workdir)
        assert keep.exists() and keep.read_text() == "mine"
        assert not list(workdir.glob("*.pairs"))


def _chunks(g, chunk=997):
    half = g.src.size // 2
    u, v = g.src[:half], g.dst[:half]
    for start in range(0, half, chunk):
        yield u[start:start + chunk], v[start:start + chunk]


class TestSpotCheckProtocol:
    """The acceptance property: correct labellings pass, corrupted ones
    are caught with high probability."""

    def test_correct_labels_pass(self):
        g = random_edge_list(2_000, 5_000, seed=3)
        labels = oracle_labels(g)
        report = spot_check_labels(labels, g.n, _chunks(g))
        assert report.ok
        assert report.violation_count == 0
        assert set(report.checks) == {
            "representative_in_range", "representative_min",
            "representative_idempotent", "edge_consistency",
            "oracle_refinement",
        }

    def test_correct_labels_pass_under_sampling(self):
        # force every sampling path: strided edge checks, strided
        # subsample, partial vertex coverage
        g = random_edge_list(5_000, 20_000, seed=4)
        labels = oracle_labels(g)
        report = spot_check_labels(
            labels, g.n, _chunks(g), edges_hint=g.src.size // 2,
            max_edge_samples=1_000, vertex_samples=500,
            subsample_edges=800,
        )
        assert report.ok
        assert report.edges_checked <= 2_000  # stride may overshoot a bit
        assert report.vertices_checked == 500
        assert report.subsample_edges == 800

    @pytest.mark.parametrize("trial", range(20))
    def test_random_corruption_is_caught(self, trial):
        """Corrupting a handful of labels of a full-coverage check is
        always caught by one of the three lenses."""
        g = random_edge_list(1_500, 4_000, seed=5)
        labels = oracle_labels(g).copy()
        rng = np.random.default_rng(trial)
        for x in rng.choice(g.n, size=3, replace=False):
            labels[x] = (labels[x] + 1 + rng.integers(0, g.n - 1)) % g.n
        report = spot_check_labels(labels, g.n, _chunks(g))
        assert not report.ok
        assert report.violation_count > 0

    def test_sampled_corruption_caught_with_high_probability(self):
        """Under genuine sampling (not full coverage) a 1%% corruption
        still fails the check in the overwhelming majority of trials."""
        g = random_edge_list(4_000, 12_000, seed=6)
        clean = oracle_labels(g)
        caught = 0
        trials = 20
        for trial in range(trials):
            labels = clean.copy()
            rng = np.random.default_rng(100 + trial)
            bad = rng.choice(g.n, size=g.n // 100, replace=False)
            labels[bad] = (labels[bad] + 1) % g.n
            report = spot_check_labels(
                labels, g.n, _chunks(g), edges_hint=g.src.size // 2,
                max_edge_samples=2_000, vertex_samples=1_000,
                subsample_edges=1_000, seed=trial,
            )
            caught += not report.ok
        assert caught >= trials - 1

    def test_out_of_range_label_reported(self):
        g = random_edge_list(100, 200, seed=7)
        labels = oracle_labels(g).copy()
        labels[50] = g.n + 7
        report = spot_check_labels(labels, g.n, _chunks(g))
        assert not report.checks["representative_in_range"]
        assert any("out of range" in v for v in report.violations)

    def test_non_minimal_label_reported(self):
        g = random_edge_list(100, 0, seed=8)
        labels = np.arange(100, dtype=np.int64)
        labels[10] = 20  # points "up": violates the minimum convention
        report = spot_check_labels(labels, 100, _chunks(g))
        assert not report.checks["representative_min"]

    def test_split_component_caught_by_refinement(self):
        # two vertices joined by an edge but labelled apart: the edge
        # lens and the union-find refinement lens both see it
        u = np.array([0, 1, 2], dtype=np.int64)
        v = np.array([1, 2, 3], dtype=np.int64)
        labels = np.array([0, 0, 2, 2], dtype=np.int64)
        report = spot_check_labels(labels, 4, [(u, v)])
        assert not report.checks["edge_consistency"]
        assert not report.checks["oracle_refinement"]

    def test_consistent_cross_component_merge_is_the_known_blind_spot(self):
        """Relabelling one whole component onto another's representative
        is the documented limitation: no lens can see it when no edge
        joins the two.  The test pins the honest contract."""
        labels = np.array([0, 0, 0, 0], dtype=np.int64)  # truth: {0,1},{2,3}
        u = np.array([0, 2], dtype=np.int64)
        v = np.array([1, 3], dtype=np.int64)
        report = spot_check_labels(labels, 4, [(u, v)])
        assert report.ok  # undetectable by construction

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            spot_check_labels(np.zeros(3, dtype=np.int64), 4, [])

    def test_report_to_json(self):
        g = random_edge_list(200, 400, seed=9)
        report = spot_check_labels(oracle_labels(g), g.n, _chunks(g))
        doc = report.to_json()
        assert doc["ok"] is True
        assert doc["n"] == 200
        assert isinstance(doc["checks"], dict)
