"""Tests for the memory-mapping congestion study."""

import pytest

from repro.analysis.hashing import (
    UniversalHash,
    adversarial_mapping,
    aware_mapping,
    compare_mappings,
    direct_mapping,
    mapping_congestion,
)
from repro.core.machine import connected_components_interpreter
from repro.graphs.generators import random_graph


def run_log(n=8):
    return connected_components_interpreter(random_graph(n, 0.4, seed=1)).access_log


class TestMappings:
    def test_direct_round_robin(self):
        m = direct_mapping(4)
        assert [m(x) for x in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_aware_diagonal(self):
        m = aware_mapping(4, 4)
        # cell (row, col) -> (row + col) mod p
        assert m(0) == 0        # (0,0)
        assert m(5) == 2        # (1,1)
        assert m(4) == 1        # (1,0)

    def test_aware_spreads_first_column(self):
        n, p = 8, 4
        m = aware_mapping(n, p)
        first_col = {m(i * n) for i in range(n)}
        assert len(first_col) == p  # all modules used

    def test_direct_collapses_first_column(self):
        n, p = 8, 4  # p divides n: hot column all on module 0
        m = direct_mapping(p)
        assert {m(i * n) for i in range(n)} == {0}

    def test_adversarial_blocked(self):
        m = adversarial_mapping(20, 4)
        assert m(0) == 0 and m(4) == 0 and m(5) == 1 and m(19) == 3

    def test_universal_hash_range(self):
        h = UniversalHash.sample(7, seed=0)
        assert all(0 <= h(x) < 7 for x in range(1000))

    def test_universal_hash_deterministic_for_seed(self):
        a = UniversalHash.sample(5, seed=3)
        b = UniversalHash.sample(5, seed=3)
        assert (a.a, a.b) == (b.a, b.b)


class TestCongestionProfiles:
    def test_profile_shape(self):
        log = run_log()
        prof = mapping_congestion(log, direct_mapping(4), 4, "direct")
        assert len(prof.per_generation_max) == log.total_generations
        assert prof.peak >= 1

    def test_out_of_range_mapping_rejected(self):
        log = run_log()
        with pytest.raises(ValueError):
            mapping_congestion(log, lambda x: 99, 4, "broken")

    def test_single_module_serialises_everything(self):
        log = run_log()
        prof = mapping_congestion(log, lambda x: 0, 1, "one")
        per_gen_reads = [g.total_reads for g in log.generations]
        assert prof.per_generation_max == per_gen_reads


class TestPaperClaims:
    """The Section 1 discussion, quantified."""

    def test_aware_beats_adversarial(self):
        n = 8
        profiles = {p.mapping_name: p for p in compare_mappings(run_log(n), n, 4)}
        assert profiles["aware"].peak < profiles["adversarial"].peak

    def test_hashing_beats_adversarial(self):
        n = 8
        profiles = compare_mappings(run_log(n), n, 4)
        by_name = {p.mapping_name: p for p in profiles}
        hashed = by_name["universal-hash (median of samples)"]
        assert hashed.peak < by_name["adversarial"].peak

    def test_hashing_worse_than_aware(self):
        """The paper's caveat: hashing cannot beat the tailor-made mapping
        (it carries an O(log p)-flavoured overhead)."""
        n = 8
        profiles = {p.mapping_name: p for p in compare_mappings(run_log(n), n, 4)}
        hashed = profiles["universal-hash (median of samples)"]
        assert hashed.peak >= profiles["aware"].peak

    def test_more_modules_reduce_congestion(self):
        n = 8
        log = run_log(n)
        peaks = [
            mapping_congestion(log, aware_mapping(n, p), p, "aware").peak
            for p in (1, 2, 4, 8)
        ]
        assert peaks == sorted(peaks, reverse=True)
        assert peaks[-1] < peaks[0]


class TestFingerprintExoticLayouts:
    """graph_fingerprint / ResultCache must accept the array layouts the
    out-of-core paths hand them: read-only views, memmaps (aligned and
    offset), strided slices, and narrower integer dtypes."""

    def _graph(self, seed=0):
        import numpy as np

        from repro.hirschberg.edgelist import random_edge_list

        return random_edge_list(500, 900, seed=seed), np

    def test_read_only_arrays_fingerprint_identically(self):
        from repro.analysis.hashing import graph_fingerprint
        from repro.hirschberg.edgelist import EdgeListGraph

        g, np = self._graph()
        want = graph_fingerprint(g)
        half = g.src.size // 2
        u = g.src[:half].copy()
        v = g.dst[:half].copy()
        u.setflags(write=False)
        v.setflags(write=False)
        frozen = EdgeListGraph.from_arrays(g.n, u, v)
        assert graph_fingerprint(frozen) == want

    @pytest.mark.parametrize("offset_bytes", [0, 8])
    def test_memmap_arrays_fingerprint_identically(self, tmp_path, offset_bytes):
        from repro.analysis.hashing import graph_fingerprint
        from repro.hirschberg.edgelist import EdgeListGraph

        g, np = self._graph(seed=1)
        want = graph_fingerprint(g)
        half = g.src.size // 2
        path = tmp_path / "edges.bin"
        pad = np.full(offset_bytes // 8, -1, dtype=np.int64)
        np.concatenate([pad, g.src[:half], g.dst[:half]]).tofile(path)
        mapped = np.memmap(path, dtype=np.int64, mode="r",
                           offset=offset_bytes, shape=(2 * half,))
        try:
            mm = EdgeListGraph.from_arrays(g.n, mapped[:half], mapped[half:])
            assert graph_fingerprint(mm) == want
        finally:
            mapped._mmap.close()

    def test_strided_and_narrow_dtypes(self):
        from repro.analysis.hashing import graph_fingerprint
        from repro.hirschberg.edgelist import EdgeListGraph

        g, np = self._graph(seed=2)
        want = graph_fingerprint(g)
        half = g.src.size // 2
        interleaved = np.empty((half, 2), dtype=np.int64)
        interleaved[:, 0] = g.src[:half]
        interleaved[:, 1] = g.dst[:half]
        strided = EdgeListGraph.from_arrays(
            g.n, interleaved[:, 0], interleaved[:, 1]
        )
        assert graph_fingerprint(strided) == want
        narrow = EdgeListGraph.from_arrays(
            g.n,
            g.src[:half].astype(np.int32),
            g.dst[:half].astype(np.int32),
        )
        assert graph_fingerprint(narrow) == want

    def test_result_cache_round_trip_with_read_only_labels(self):
        import numpy as np

        from repro.analysis.hashing import graph_fingerprint
        from repro.serve.cache import ResultCache

        g, _np = self._graph(seed=3)
        labels = np.zeros(g.n, dtype=np.int64)
        labels.setflags(write=False)
        cache = ResultCache(byte_budget=1 << 20)
        key = graph_fingerprint(g)
        cache.put(key, labels)
        hit = cache.get(key)
        assert hit is not None
        got, _verified = hit
        assert np.array_equal(got, labels)
