"""Tests for the shared-memory layer: lifetimes, failure paths, slabs.

The happy-path create/attach round trips live with the sweep tests
(``tests/analysis/test_sweep.py``); this file covers what goes wrong --
attach after unlink, double close/unlink -- and the slab pool plus the
segment registry the leak checks are built on.
"""

import numpy as np
import pytest

from repro.analysis.shm import (
    Slab,
    SlabPool,
    SharedArray,
    live_segment_bytes,
    live_segments,
)


class TestFailurePaths:
    def test_attach_after_unlink_raises(self):
        owner = SharedArray.zeros((8,), np.int64)
        ref = owner.ref
        owner.close()
        owner.unlink()
        with pytest.raises(FileNotFoundError):
            SharedArray.attach(ref)

    def test_double_close_is_idempotent(self):
        owner = SharedArray.zeros((8,), np.int64)
        owner.close()
        owner.close()  # must not raise
        owner.unlink()
        owner.unlink()  # must not raise

    def test_unlink_without_close_then_close(self):
        owner = SharedArray.zeros((4,), np.int8)
        owner.unlink()
        owner.close()  # order-insensitive teardown

    def test_attached_view_close_does_not_unlink(self):
        owner = SharedArray.zeros((4,), np.int64)
        try:
            view = SharedArray.attach(owner.ref)
            view.close()
            again = SharedArray.attach(owner.ref)  # segment still exists
            again.close()
        finally:
            owner.close()
            owner.unlink()


class TestSegmentRegistry:
    def test_create_registers_unlink_unregisters(self):
        before = live_segments()
        owner = SharedArray.zeros((16,), np.int64)
        name = owner.ref.name
        assert name in live_segments()
        assert live_segment_bytes() >= 16 * 8
        owner.close()
        owner.unlink()
        assert name not in live_segments()
        assert live_segments() == before

    def test_attachments_do_not_register(self):
        owner = SharedArray.zeros((4,), np.int64)
        try:
            count = len(live_segments())
            view = SharedArray.attach(owner.ref)
            assert len(live_segments()) == count
            view.close()
        finally:
            owner.close()
            owner.unlink()


class TestSlabPool:
    def test_acquire_view_release_recycles(self):
        pool = SlabPool(byte_budget=1 << 20)
        try:
            slab = pool.acquire((10, 10), np.int64)
            assert isinstance(slab, Slab)
            assert slab.array.shape == (10, 10)
            name = slab.ref.name
            pool.release(slab)
            again = pool.acquire((10, 10), np.int64)
            assert again.ref.name == name  # same block, recycled
            pool.release(again)
        finally:
            pool.close_all()

    def test_capacity_classes_round_up(self):
        pool = SlabPool(byte_budget=1 << 20)
        try:
            small = pool.acquire((5,), np.int64)  # 40 bytes -> pow2 class
            name = small.ref.name
            pool.release(small)
            # a slightly larger request in the same class reuses the block
            other = pool.acquire((6,), np.int64)
            assert other.ref.name == name
            pool.release(other)
        finally:
            pool.close_all()

    def test_view_as_reinterprets_capacity(self):
        pool = SlabPool(byte_budget=1 << 20)
        try:
            slab = pool.acquire((4, 4), np.int8)
            slab.view_as((2, 2), np.int8)
            assert slab.array.shape == (2, 2)
            slab.array[...] = 7
            assert slab.ref.shape == (2, 2)
            pool.release(slab)
        finally:
            pool.close_all()

    def test_over_budget_allocations_are_transient(self):
        pool = SlabPool(byte_budget=64)
        try:
            slab = pool.acquire((1024,), np.int64)  # 8 KiB >> 64 B budget
            assert slab.transient
            name = slab.ref.name
            pool.release(slab)
            assert name not in live_segments()  # unlinked, not pooled
        finally:
            pool.close_all()

    def test_close_all_leaves_no_segments(self):
        before = live_segments()
        pool = SlabPool(byte_budget=1 << 20)
        slabs = [pool.acquire((64,), np.int64) for _ in range(4)]
        for slab in slabs[:2]:
            pool.release(slab)  # some pooled, some still out
        pool.close_all()
        assert live_segments() == before

    def test_close_all_is_idempotent(self):
        pool = SlabPool(byte_budget=1 << 20)
        pool.acquire((8,), np.int64)
        pool.close_all()
        pool.close_all()  # must not raise
