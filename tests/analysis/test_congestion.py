"""Tests for the Table 1 reproduction (repro.analysis.congestion)."""

import pytest

from repro.analysis.congestion import (
    compare_table1,
    exact_expected_table1,
    measured_table1,
    paper_table1,
)
from repro.core.machine import connected_components_interpreter
from repro.core.vectorized import run_vectorized
from repro.graphs.generators import complete_graph, path_graph, random_graph


def run_log(n=8, seed=0):
    return connected_components_interpreter(random_graph(n, 0.4, seed=seed)).access_log


class TestPaperTable1:
    def test_row_count(self):
        assert len(paper_table1(8)) == 12

    def test_formulas_at_8(self):
        rows = {r.generation: r for r in paper_table1(8)}
        assert rows[0].active_cells == 72
        assert rows[1].active_cells == 72
        assert rows[1].read_histogram == [(8, 9)]
        assert rows[2].active_cells == 64
        assert rows[3].active_cells == 32
        assert rows[9].active_cells == 49
        assert rows[10].read_histogram == [(8, 8)]

    def test_steps_assigned(self):
        rows = paper_table1(4)
        assert [r.step for r in rows] == [1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 5, 6]

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            paper_table1(0)


class TestMeasuredTable1:
    def test_generation_numbers_complete(self):
        rows = measured_table1(run_log())
        assert [r.generation for r in rows] == list(range(12))

    def test_subgeneration_counts(self):
        rows = {r.generation: r for r in measured_table1(run_log(8))}
        assert rows[3].sub_generations == 3
        assert rows[7].sub_generations == 3
        assert rows[10].sub_generations == 3
        assert rows[1].sub_generations == 1

    def test_exact_expectations_hold(self):
        """Measured counts equal the implementation's exact closed forms."""
        n = 8
        rows = {r.generation: r for r in measured_table1(run_log(n))}
        exact = exact_expected_table1(n)
        assert rows[0].active_cells == exact[0]["active"]
        assert rows[1].active_cells == exact[1]["active"]
        assert rows[1].max_congestion == exact[1]["max_delta"]
        assert rows[2].active_cells == exact[2]["active"]
        assert rows[2].max_congestion == exact[2]["max_delta"]
        assert rows[3].active_cells == exact[3]["active_first_sub"]
        assert rows[3].cells_read <= exact[3]["reads"]
        assert rows[4].active_cells == exact[4]["active"]
        assert rows[9].active_cells == exact[9]["active"]
        assert rows[9].max_congestion == exact[9]["max_delta"]

    def test_interpreter_and_vectorized_agree(self):
        g = random_graph(6, 0.4, seed=3)
        slow = measured_table1(connected_components_interpreter(g).access_log)
        fast = measured_table1(run_vectorized(g, record_access=True).access_log)
        for s, f in zip(slow, fast):
            assert s.generation == f.generation
            assert s.active_cells == f.active_cells
            assert s.read_histogram == f.read_histogram


class TestCompareTable1:
    def test_matching_generations(self):
        """Generations 0-8 and 11 match the paper's active counts exactly;
        9 and 10 deviate as documented."""
        n = 8
        comparisons = compare_table1(n, run_log(n))
        by_gen = {c.generation: c for c in comparisons}
        for gen in (0, 1, 2, 4, 5, 6, 8, 11):
            assert by_gen[gen].active_matches, gen
        assert not by_gen[9].active_matches  # documented deviation

    def test_congestion_bounds(self):
        n = 8
        comparisons = compare_table1(n, run_log(n))
        for c in comparisons:
            assert c.congestion_within_paper_bound, c.generation

    def test_data_dependent_congestion_below_worst_case(self):
        """On a sparse graph gen 10/11 congestion stays below the paper's
        worst-case n."""
        n = 8
        log = connected_components_interpreter(path_graph(n)).access_log
        by_gen = {c.generation: c for c in compare_table1(n, log)}
        assert by_gen[10].measured_max_congestion <= n
        assert by_gen[11].measured_max_congestion <= n

    def test_worst_case_congestion_nearly_reached(self):
        """On the complete graph almost every jump pointer collides in the
        first iteration (delta = n-1; the full n requires the converged
        all-equal labelling of a later iteration)."""
        n = 8
        log = connected_components_interpreter(complete_graph(n)).access_log
        by_gen = {c.generation: c for c in compare_table1(n, log)}
        assert by_gen[10].measured_max_congestion == n - 1

    def test_worst_case_congestion_in_later_iteration(self):
        """Once the labelling has converged (iteration 2 on K_n), all n jump
        pointers collide on cell <0>[0]: the paper's worst case delta = n."""
        n = 8
        log = connected_components_interpreter(complete_graph(n)).access_log
        it1_jumps = [s for s in log.generations if s.label.startswith("it1.gen10")]
        assert max(s.max_congestion for s in it1_jumps) == n


class TestExactFormsAcrossSizes:
    """The implementation's exact closed forms hold for every n, not just
    the showcase sizes (hypothesis over the interpreter)."""

    @pytest.mark.parametrize("n", [2, 3, 5, 6, 7, 9, 10])
    def test_measured_matches_exact(self, n):
        log_data = connected_components_interpreter(
            random_graph(n, 0.5, seed=n)
        ).access_log
        rows = {r.generation: r for r in measured_table1(log_data)}
        exact = exact_expected_table1(n)
        for gen in (0, 1, 2, 4, 5, 6, 8, 9, 11):
            assert rows[gen].active_cells == exact[gen]["active"], (n, gen)
        for gen in (1, 2, 5, 6, 9):
            assert rows[gen].max_congestion == exact[gen]["max_delta"], (n, gen)
        if n > 1:
            for gen in (3, 7):
                assert rows[gen].active_cells == exact[gen]["active_first_sub"], (n, gen)
                assert rows[gen].cells_read <= exact[gen]["reads"], (n, gen)
