"""Unit tests for repro.util.formatting."""

import numpy as np
import pytest

from repro.util.formatting import (
    format_ratio,
    render_histogram,
    render_matrix,
    render_table,
)


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["a", "bb"], [[1, 2], [333, 44]])
        lines = out.splitlines()
        assert len(lines) == 4
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equal width

    def test_title(self):
        out = render_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_contents_present(self):
        out = render_table(["col"], [["value"]])
        assert "col" in out and "value" in out


class TestRenderMatrix:
    def test_basic(self):
        out = render_matrix(np.array([[1, 2], [3, 4]]))
        assert out.splitlines() == ["1 2", "3 4"]

    def test_infinity_replacement(self):
        out = render_matrix(np.array([[1, 99]]), infinity=99)
        assert "oo" in out and "99" not in out

    def test_highlight(self):
        h = np.array([[True, False]])
        out = render_matrix(np.array([[7, 8]]), highlight=h)
        assert "7*" in out and "8*" not in out

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            render_matrix(np.zeros(3))
        with pytest.raises(ValueError):
            render_matrix(np.zeros((2, 2)), highlight=np.zeros((1, 2), dtype=bool))


class TestRenderHistogram:
    def test_pairs(self):
        out = render_histogram([(8, 9), (64, 0)])
        assert "8 cells with delta=9" in out
        assert "64 cells with delta=0" in out

    def test_empty(self):
        assert "no cells" in render_histogram([])


class TestFormatRatio:
    def test_normal(self):
        assert format_ratio(10, 20) == "10/20 (x0.500)"

    def test_zero_prediction(self):
        assert format_ratio(3, 0) == "3/0 (n/a)"
