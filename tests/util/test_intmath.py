"""Unit tests for repro.util.intmath."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.intmath import (
    ceil_div,
    ceil_log2,
    floor_log2,
    is_power_of_two,
    jump_iterations,
    next_power_of_two,
    outer_iterations,
    reduction_subgenerations,
)


class TestIsPowerOfTwo:
    def test_powers(self):
        assert all(is_power_of_two(1 << k) for k in range(40))

    def test_non_powers(self):
        assert not any(is_power_of_two(v) for v in (0, 3, 5, 6, 7, 9, 12, 100))

    def test_negative(self):
        assert not is_power_of_two(-4)


class TestFloorLog2:
    @pytest.mark.parametrize("value,expected", [(1, 0), (2, 1), (3, 1), (4, 2), (1023, 9), (1024, 10)])
    def test_values(self, value, expected):
        assert floor_log2(value) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            floor_log2(0)
        with pytest.raises(ValueError):
            floor_log2(-1)

    @given(st.integers(min_value=1, max_value=10**12))
    def test_matches_math(self, v):
        assert floor_log2(v) == int(math.floor(math.log2(v)))


class TestCeilLog2:
    @pytest.mark.parametrize("value,expected", [(1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (1024, 10), (1025, 11)])
    def test_values(self, value, expected):
        assert ceil_log2(value) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ceil_log2(0)

    @given(st.integers(min_value=1, max_value=10**12))
    def test_bracketing(self, v):
        k = ceil_log2(v)
        assert (1 << k) >= v
        if k > 0:
            assert (1 << (k - 1)) < v


class TestNextPowerOfTwo:
    @given(st.integers(min_value=1, max_value=10**9))
    def test_is_power_and_minimal(self, v):
        p = next_power_of_two(v)
        assert is_power_of_two(p)
        assert p >= v
        assert p // 2 < v

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            next_power_of_two(0)


class TestCeilDiv:
    @pytest.mark.parametrize("a,b,expected", [(0, 3, 0), (1, 3, 1), (3, 3, 1), (4, 3, 2), (9, 3, 3)])
    def test_values(self, a, b, expected):
        assert ceil_div(a, b) == expected

    @given(st.integers(min_value=0, max_value=10**9), st.integers(min_value=1, max_value=10**6))
    def test_matches_math(self, a, b):
        assert ceil_div(a, b) == math.ceil(a / b)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)
        with pytest.raises(ValueError):
            ceil_div(-1, 2)


class TestAlgorithmCounts:
    def test_outer_iterations_small(self):
        assert [outer_iterations(n) for n in (1, 2, 3, 4, 8, 9)] == [0, 1, 2, 2, 3, 4]

    def test_jump_iterations_matches_outer(self):
        for n in range(1, 100):
            assert jump_iterations(n) == outer_iterations(n)

    def test_reduction_subgenerations(self):
        assert [reduction_subgenerations(n) for n in (1, 2, 4, 5, 16)] == [0, 1, 2, 3, 4]

    @given(st.integers(min_value=2, max_value=10**6))
    def test_halving_suffices(self, n):
        # outer_iterations halvings reduce n components to 1
        k = outer_iterations(n)
        remaining = n
        for _ in range(k):
            remaining = (remaining + 1) // 2
        assert remaining == 1
