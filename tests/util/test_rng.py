"""Unit tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import as_generator, spawn


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = as_generator(42).integers(0, 1000, size=10)
        b = as_generator(42).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert as_generator(g) is g

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_generator("seed")


class TestSpawn:
    def test_distinct_streams(self):
        a = spawn(7, 0).integers(0, 10**9, size=8)
        b = spawn(7, 1).integers(0, 10**9, size=8)
        assert not np.array_equal(a, b)

    def test_reproducible(self):
        a = spawn(7, 3).integers(0, 10**9, size=8)
        b = spawn(7, 3).integers(0, 10**9, size=8)
        assert np.array_equal(a, b)

    def test_from_generator(self):
        g = np.random.default_rng(0)
        child = spawn(g, 0)
        assert isinstance(child, np.random.Generator)
