"""Unit tests for repro.util.validation."""

import numpy as np
import pytest

from repro.util.validation import (
    check_index,
    check_positive,
    check_square,
    check_symmetric_binary,
    check_type,
)


class TestCheckPositive:
    def test_accepts_ints(self):
        assert check_positive("x", 1) == 1
        assert check_positive("x", 5, minimum=5) == 5

    def test_accepts_numpy_ints(self):
        assert check_positive("x", np.int64(3)) == 3
        assert isinstance(check_positive("x", np.int64(3)), int)

    def test_rejects_below_minimum(self):
        with pytest.raises(ValueError, match="x must be >= 1"):
            check_positive("x", 0)
        with pytest.raises(ValueError):
            check_positive("x", 4, minimum=5)

    def test_rejects_bool_and_float(self):
        with pytest.raises(TypeError):
            check_positive("x", True)
        with pytest.raises(TypeError):
            check_positive("x", 1.0)


class TestCheckIndex:
    def test_accepts_valid(self):
        assert check_index("i", 0, 3) == 0
        assert check_index("i", 2, 3) == 2

    def test_rejects_out_of_range(self):
        with pytest.raises(IndexError):
            check_index("i", 3, 3)
        with pytest.raises(IndexError):
            check_index("i", -1, 3)

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            check_index("i", 1.5, 3)


class TestCheckSquare:
    def test_accepts_square(self):
        m = check_square("m", np.zeros((3, 3)))
        assert m.shape == (3, 3)

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError):
            check_square("m", np.zeros((2, 3)))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            check_square("m", np.zeros(4))


class TestCheckSymmetricBinary:
    def test_accepts_symmetric(self):
        m = np.array([[0, 1], [1, 0]])
        out = check_symmetric_binary("m", m)
        assert out.dtype == np.int8

    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError, match="symmetric"):
            check_symmetric_binary("m", np.array([[0, 1], [0, 0]]))

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError, match="0/1"):
            check_symmetric_binary("m", np.array([[0, 2], [2, 0]]))


class TestCheckType:
    def test_accepts(self):
        assert check_type("x", "s", str) == "s"

    def test_rejects(self):
        with pytest.raises(TypeError):
            check_type("x", 1, str)
