"""Unit tests for repro.util.sentinels."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.sentinels import infinity_for, is_infinite


class TestInfinityFor:
    @pytest.mark.parametrize("n,expected", [(1, 2), (2, 6), (4, 20), (16, 272)])
    def test_values(self, n, expected):
        assert infinity_for(n) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            infinity_for(0)

    @given(st.integers(min_value=1, max_value=10**6))
    def test_exceeds_every_legal_value(self, n):
        inf = infinity_for(n)
        assert inf > n           # row numbers go up to n
        assert inf > n - 1       # node ids
        assert inf >= n * (n + 1) - 1 + 1  # strictly above linear indices


class TestIsInfinite:
    def test_detects_sentinel(self):
        assert is_infinite(infinity_for(8), 8)

    def test_ordinary_values(self):
        assert not is_infinite(0, 8)
        assert not is_infinite(7, 8)
        assert not is_infinite(71, 8)

    def test_rejects_corruption(self):
        with pytest.raises(ValueError):
            is_infinite(infinity_for(8) + 1, 8)
