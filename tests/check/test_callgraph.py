"""Module summaries, the project index, and cross-module resolution."""

from __future__ import annotations

from repro.check.callgraph import (
    ModuleSummary,
    ProjectIndex,
    build_module_summary,
    module_name_for,
)
from repro.check.engine import Module


def _summary(path: str, source: str) -> ModuleSummary:
    return build_module_summary(Module(path, source))


def test_module_name_for_climbs_packages(tmp_path):
    pkg = tmp_path / "pkg" / "sub"
    pkg.mkdir(parents=True)
    for d in (tmp_path / "pkg", pkg):
        (d / "__init__.py").write_text("")
    mod = pkg / "leaf.py"
    mod.write_text("x = 1")
    assert module_name_for(mod.as_posix()) == "pkg.sub.leaf"
    assert module_name_for((pkg / "__init__.py").as_posix()) == "pkg.sub"


def test_summary_records_calls_and_dispositions():
    s = _summary("m.py", (
        "import asyncio\n"
        "async def work():\n"
        "    await fetch()\n"
        "    asyncio.create_task(refresh())\n"
        "    plain()\n"
    ))
    info = s.functions["work"]
    assert info.is_async
    by_token = {c.token: c for c in info.calls}
    assert by_token["fetch"].awaited
    assert by_token["refresh"].wrapped
    assert by_token["plain"].bare


def test_summary_roundtrips_through_json():
    s = _summary("m.py", (
        "import threading\n"
        "from queue import Queue\n"
        "_lock = threading.Lock()\n"
        "_aux_lock = threading.Lock()\n"
        "def f(conn):\n"
        "    with _lock:\n"
        "        with _aux_lock:\n"
        "            return conn.fileno()\n"
    ))
    clone = ModuleSummary.from_json(s.to_json())
    assert clone.module == s.module
    assert set(clone.functions) == set(s.functions)
    orig = s.functions["f"].lock_orders
    back = clone.functions["f"].lock_orders
    assert [(o.held, o.acquired) for o in orig] == [
        (o.held, o.acquired) for o in back
    ]
    assert orig  # the nested acquisition produced an edge


def test_index_resolves_from_import_and_alias():
    a = _summary("pkg/a.py", "def helper():\n    return 1\n")
    a.module = "pkg.a"
    b = _summary("pkg/b.py", (
        "from pkg.a import helper\n"
        "import pkg.a as alias\n"
        "def caller():\n"
        "    return helper() + alias.helper()\n"
    ))
    b.module = "pkg.b"
    index = ProjectIndex({s.path: s for s in (a, b)})
    resolved = index.resolve(b, b.functions["caller"], "helper")
    assert resolved is not None and resolved[1].qualname == "helper"
    via_alias = index.resolve(b, b.functions["caller"], "alias.helper")
    assert via_alias is not None and via_alias[1].qualname == "helper"


def test_index_resolves_self_methods():
    s = _summary("pkg/c.py", (
        "class Pool:\n"
        "    def acquire(self):\n"
        "        return self._grow()\n"
        "    def _grow(self):\n"
        "        return 1\n"
    ))
    s.module = "pkg.c"
    index = ProjectIndex({s.path: s})
    resolved = index.resolve(s, s.functions["Pool.acquire"], "self._grow")
    assert resolved is not None
    assert resolved[1].qualname == "Pool._grow"


def test_unresolvable_stays_none():
    s = _summary("pkg/d.py", "def f():\n    return mystery()\n")
    s.module = "pkg.d"
    index = ProjectIndex({s.path: s})
    assert index.resolve(s, s.functions["f"], "mystery.nope") is None
    assert index.resolve(s, s.functions["f"], "os.path.join") is None


def test_blocking_sites_recorded():
    s = _summary("m.py", (
        "def f(conn):\n"
        "    conn.recv()\n"
        "def g():\n"
        "    pass\n"
    ))
    assert [b.label for b in s.functions["f"].blocking] == ["recv"]
    assert not s.functions["g"].blocking


def test_top_imports_include_guarded_but_not_function_scope():
    s = _summary("m.py", (
        "import os\n"
        "try:\n"
        "    import tomllib\n"
        "except ImportError:\n"
        "    tomllib = None\n"
        "def f():\n"
        "    import json\n"
        "    return json\n"
    ))
    dotted = {d for d, _, _ in s.top_imports}
    assert "os" in dotted and "tomllib" in dotted
    assert "json" not in dotted
