"""ARCH601: the declared layer map, config discovery and enforcement."""

from __future__ import annotations

from repro.check import CheckEngine, all_rules
from repro.check.rules.layering import parse_check_config

CONFIG_TOML = """
[build-system]
requires = ["setuptools"]

[tool.repro-check.layers]
"app.util" = []
"app.core" = ["util"]
"app.serve" = ["core", "util"]
"app.check" = []

[tool.repro-check.closed-layers]
"app.check" = ["numpy"]
"""


def _package(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    current = path.parent
    while current != tmp_path:
        init = current / "__init__.py"
        if not init.exists():
            init.write_text("")
        current = current.parent
    path.write_text(source)
    return path


def _scan(tmp_path):
    (tmp_path / "pyproject.toml").write_text(CONFIG_TOML)
    report = CheckEngine(all_rules(["ARCH601"])).check_paths(
        [tmp_path.as_posix()]
    )
    return report.findings


def test_parse_config_extracts_both_tables():
    config = parse_check_config(CONFIG_TOML)
    assert config["layers"]["app.serve"] == ["core", "util"]
    assert config["closed-layers"]["app.check"] == ["numpy"]


def test_allowed_import_is_quiet(tmp_path):
    _package(tmp_path, "app/util/misc.py", "import os\n")
    _package(tmp_path, "app/serve/api.py",
             "from app.core.engine import solve\n")
    _package(tmp_path, "app/core/engine.py",
             "from app.util.misc import helper\n\ndef solve():\n    pass\n")
    assert _scan(tmp_path) == []


def test_upward_import_is_flagged(tmp_path):
    _package(tmp_path, "app/core/engine.py",
             "from app.serve.api import route\n")
    _package(tmp_path, "app/serve/api.py", "def route():\n    pass\n")
    findings = _scan(tmp_path)
    assert [f.rule_id for f in findings] == ["ARCH601"]
    assert "app.core" in findings[0].message
    assert "app.serve" in findings[0].message


def test_function_scope_import_is_the_escape_hatch(tmp_path):
    _package(tmp_path, "app/core/engine.py",
             "def lazy():\n    from app.serve.api import route\n"
             "    return route\n")
    _package(tmp_path, "app/serve/api.py", "def route():\n    pass\n")
    assert _scan(tmp_path) == []


def test_closed_layer_rejects_externals(tmp_path):
    _package(tmp_path, "app/check/engine.py",
             "import ast\nimport numpy as np\nimport requests\n")
    findings = _scan(tmp_path)
    assert len(findings) == 1
    assert "requests" in findings[0].message


def test_intra_layer_imports_are_free(tmp_path):
    _package(tmp_path, "app/serve/api.py",
             "from app.serve.wire import encode\n")
    _package(tmp_path, "app/serve/wire.py", "def encode():\n    pass\n")
    assert _scan(tmp_path) == []


def test_no_config_no_findings(tmp_path):
    _package(tmp_path, "app/core/engine.py",
             "from app.serve.api import route\n")
    _package(tmp_path, "app/serve/api.py", "def route():\n    pass\n")
    report = CheckEngine(all_rules(["ARCH601"]), config={}).check_paths(
        [tmp_path.as_posix()]
    )
    assert report.findings == []


def test_fallback_parser_matches_tomllib():
    from repro.check.rules.layering import _parse_fallback

    assert _parse_fallback(CONFIG_TOML) == parse_check_config(CONFIG_TOML)
