"""The content-addressed incremental cache: warm runs skip the parse +
local pass per unchanged file and reproduce identical findings."""

from __future__ import annotations

import json

from repro.check import CheckEngine, all_rules
from repro.check.cache import CheckCache, pack_fingerprint, source_digest

BAD = (
    "import threading\n"
    "_lock = threading.Lock()\n"
    "def f(conn):\n"
    "    with _lock:\n"
    "        return conn.recv()\n"
)


def _tree(tmp_path):
    (tmp_path / "a.py").write_text(BAD)
    (tmp_path / "b.py").write_text("def ok():\n    return 1\n")
    return tmp_path


def _render(report):
    return [f.render() for f in report.findings]


def test_warm_run_reanalyzes_nothing_and_matches(tmp_path):
    tree = _tree(tmp_path)
    cache = (tmp_path / "cache.json").as_posix()
    cold = CheckEngine(all_rules(), cache_path=cache).check_paths(
        [tree.as_posix()]
    )
    assert cold.files_reanalyzed == cold.files_scanned > 0
    assert cold.cache_hits == 0

    warm = CheckEngine(all_rules(), cache_path=cache).check_paths(
        [tree.as_posix()]
    )
    assert warm.files_reanalyzed == 0
    assert warm.cache_hits == warm.files_scanned == cold.files_scanned
    assert _render(warm) == _render(cold)


def test_editing_one_file_reanalyzes_only_it(tmp_path):
    tree = _tree(tmp_path)
    cache = (tmp_path / "cache.json").as_posix()
    CheckEngine(all_rules(), cache_path=cache).check_paths([tree.as_posix()])
    (tree / "b.py").write_text("def ok():\n    return 2\n")
    again = CheckEngine(all_rules(), cache_path=cache).check_paths(
        [tree.as_posix()]
    )
    assert again.files_reanalyzed == 1
    assert again.cache_hits == again.files_scanned - 1


def test_rule_selection_changes_fingerprint(tmp_path):
    fp_all = pack_fingerprint([r.rule_id for r in all_rules()], None)
    fp_some = pack_fingerprint(["LOCK301"], None)
    fp_conf = pack_fingerprint(
        [r.rule_id for r in all_rules()], {"layers": {"x": []}}
    )
    assert len({fp_all, fp_some, fp_conf}) == 3


def test_stale_fingerprint_discards_entries(tmp_path):
    path = (tmp_path / "c.json").as_posix()
    cache = CheckCache(path, "fp-one")
    cache.put("a.py", source_digest("x = 1"), {"findings": []})
    cache.save()
    reread = CheckCache(path, "fp-two")
    assert reread.get("a.py", source_digest("x = 1")) is None


def test_digest_mismatch_misses(tmp_path):
    path = (tmp_path / "c.json").as_posix()
    cache = CheckCache(path, "fp")
    cache.put("a.py", source_digest("old"), {"findings": []})
    assert cache.get("a.py", source_digest("new")) is None
    assert cache.get("a.py", source_digest("old")) is not None


def test_prune_drops_unscanned_files(tmp_path):
    path = (tmp_path / "c.json").as_posix()
    cache = CheckCache(path, "fp")
    cache.put("keep.py", "d1", {"findings": []})
    cache.put("gone.py", "d2", {"findings": []})
    cache.prune(["keep.py"])
    cache.save()
    payload = json.loads((tmp_path / "c.json").read_text())
    assert sorted(payload["files"]) == ["keep.py"]


def test_corrupt_cache_file_is_ignored(tmp_path):
    path = tmp_path / "c.json"
    path.write_text("{ not json")
    cache = CheckCache(path.as_posix(), "fp")
    assert cache.get("a.py", "digest") is None


def test_project_rules_see_cached_summaries(tmp_path):
    # the LOCK302 inversion spans two files; a warm run must still
    # report it even though neither file is reanalyzed
    (tmp_path / "one.py").write_text(
        "import threading\n"
        "LOCK_A = threading.Lock()\n"
        "LOCK_B = threading.Lock()\n"
        "def fwd(conn):\n"
        "    with LOCK_A:\n"
        "        with LOCK_B:\n"
        "            return conn.fileno()\n"
    )
    (tmp_path / "two.py").write_text(
        "from one import LOCK_A, LOCK_B\n"
        "def rev(conn):\n"
        "    with LOCK_B:\n"
        "        with LOCK_A:\n"
        "            return conn.fileno()\n"
    )
    cache = (tmp_path / "cache.json").as_posix()
    cold = CheckEngine(all_rules(), cache_path=cache).check_paths(
        [tmp_path.as_posix()]
    )
    warm = CheckEngine(all_rules(), cache_path=cache).check_paths(
        [tmp_path.as_posix()]
    )
    assert warm.files_reanalyzed == 0
    cold_ids = sorted(f.rule_id for f in cold.findings)
    warm_ids = sorted(f.rule_id for f in warm.findings)
    assert "LOCK302" in warm_ids
    assert warm_ids == cold_ids
