"""Engine mechanics: path walking, baselines, reports, renderers."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.check import (
    CheckEngine,
    all_rules,
    load_baseline,
    write_baseline,
)

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture(scope="module")
def engine() -> CheckEngine:
    return CheckEngine(all_rules())


def test_check_paths_walks_directories(engine):
    report = engine.check_paths([FIXTURES.as_posix()])
    assert report.files_scanned == len(list(FIXTURES.rglob("*.py")))
    assert not report.ok
    assert report.all_findings and report.parse_errors == []


def test_missing_path_raises(engine):
    with pytest.raises(FileNotFoundError):
        engine.check_paths(["no/such/dir"])


def test_parse_error_becomes_finding(engine, tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    report = engine.check_paths([bad.as_posix()])
    assert not report.ok
    assert [f.rule_id for f in report.parse_errors] == ["PARSE"]


def test_baseline_round_trip(engine, tmp_path):
    report = engine.check_paths([(FIXTURES / "bad").as_posix()])
    assert report.findings
    baseline_path = tmp_path / "baseline.json"
    write_baseline(report.findings, baseline_path.as_posix())

    baseline = load_baseline(baseline_path.as_posix())
    rerun = engine.check_paths(
        [(FIXTURES / "bad").as_posix()], baseline=baseline
    )
    assert rerun.ok
    assert len(rerun.baselined) == len(report.findings)

    # a *new* finding still fails even with the baseline applied
    extra = tmp_path / "vectorized.py"
    extra.write_text(
        "def run(schedule, cur, other, ws):\n"
        "    for s in schedule:\n"
        "        x = cur.copy()\n"
    )
    with_new = engine.check_paths(
        [(FIXTURES / "bad").as_posix(), extra.as_posix()], baseline=baseline
    )
    assert not with_new.ok
    assert {f.rule_id for f in with_new.findings} == {"DB101"}


def test_baseline_rejects_foreign_json(tmp_path):
    path = tmp_path / "not_baseline.json"
    path.write_text(json.dumps({"something": "else"}))
    with pytest.raises(ValueError, match="baseline"):
        load_baseline(path.as_posix())


def test_report_renderers(engine):
    report = engine.check_paths([(FIXTURES / "bad").as_posix()])
    text = report.render_text()
    assert "finding" in text
    stats = report.render_stats()
    assert "repro-check stats" in stats and "files scanned" in stats

    payload = report.to_json()
    assert payload["stats"]["files_scanned"] == report.files_scanned
    assert len(payload["findings"]) == len(report.all_findings)
    json.dumps(payload)  # must be serialisable

    sarif = report.to_sarif(engine.rules)
    assert sarif["version"] == "2.1.0"
    results = sarif["runs"][0]["results"]
    assert len(results) == len(report.all_findings)
    driver_rules = {r["id"] for r in sarif["runs"][0]["tool"]["driver"]["rules"]}
    assert {f.rule_id for f in report.findings} <= driver_rules
    json.dumps(sarif)


def test_per_rule_counts_include_clean_rules(engine):
    report = engine.check_paths([(FIXTURES / "good").as_posix()])
    counts = report.per_rule_counts()
    assert set(counts) == {r.rule_id for r in engine.rules}
    assert all(v == 0 for v in counts.values())
    assert report.ok


def test_invalid_severity_rejected():
    class BadRule(all_rules()[0].__class__):
        severity = "fatal"

    with pytest.raises(ValueError, match="severity"):
        CheckEngine([BadRule()])
