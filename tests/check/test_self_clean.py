"""The repo's own source tree must stay clean under its own linter.

These tests are the local mirror of the CI analysis gate: the API-level
scan of ``src/`` yields zero findings, the ``python -m repro check`` CLI
agrees (exit 0), and the bad fixtures make it exit nonzero.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.check import CheckEngine, all_rules

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"
BAD_FIXTURES = Path(__file__).parent / "fixtures" / "bad"


def _run_check(*argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC.as_posix()
    return subprocess.run(
        [sys.executable, "-m", "repro", "check", *argv],
        cwd=REPO_ROOT.as_posix(),
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def test_src_is_clean_via_api():
    report = CheckEngine(all_rules()).check_paths([SRC.as_posix()])
    assert report.ok, report.render_text()
    assert report.files_scanned > 50
    assert report.suppressed > 0  # the reasoned allow[...] comments


def test_cli_exit_zero_on_src():
    proc = _run_check("src")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 findings" in proc.stdout


def test_cli_exit_nonzero_on_bad_fixtures():
    proc = _run_check(BAD_FIXTURES.as_posix())
    assert proc.returncode == 1
    assert "CROW001" in proc.stdout and "FORK302" in proc.stdout


def test_cli_json_output():
    proc = _run_check(BAD_FIXTURES.as_posix(), "--json")
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    rules = {f["rule"] for f in payload["findings"]}
    assert {"CROW001", "DB102", "SHM201", "LOCK301"} <= rules


def test_cli_sarif_output():
    proc = _run_check(BAD_FIXTURES.as_posix(), "--sarif")
    assert proc.returncode == 1
    sarif = json.loads(proc.stdout)
    assert sarif["version"] == "2.1.0"
    assert sarif["runs"][0]["results"]


def test_cli_stats_flag():
    proc = _run_check("src", "--stats")
    assert proc.returncode == 0
    assert "repro-check stats" in proc.stdout
    assert "suppressed" in proc.stdout


def test_cli_write_and_apply_baseline(tmp_path):
    baseline = tmp_path / "baseline.json"
    wrote = _run_check(
        BAD_FIXTURES.as_posix(), "--write-baseline", baseline.as_posix()
    )
    assert wrote.returncode == 0
    assert json.loads(baseline.read_text())["findings"]

    replay = _run_check(
        BAD_FIXTURES.as_posix(), "--baseline", baseline.as_posix()
    )
    assert replay.returncode == 0, replay.stdout + replay.stderr


def test_cli_unknown_rule_id():
    proc = _run_check("src", "--rules", "NOPE999")
    assert proc.returncode != 0


def test_committed_baseline_is_empty():
    """The tree is clean, so the committed CI baseline carries no debt."""
    baseline = REPO_ROOT / "check_baseline.json"
    if not baseline.exists():
        pytest.skip("baseline not committed yet")
    assert json.loads(baseline.read_text())["findings"] == {}
