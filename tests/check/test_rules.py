"""Every lint rule, exercised in both directions via the fixture corpus.

The fixtures under ``tests/check/fixtures`` are parsed, never imported:
``good/*`` must produce zero findings, ``bad/*`` must trip exactly the
rules it plants.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.check import CheckEngine, all_rules, rule_ids

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture file -> exact set of rule ids it must trip.
CASES = [
    ("good/rules_ok.py", set()),
    ("bad/rules_bad.py", {"CROW001", "CROW002"}),
    ("good/steps_ok.py", set()),
    ("bad/steps_bad.py", {"CROW003"}),
    ("good/vectorized.py", set()),
    ("bad/vectorized.py", {"DB101", "DB102", "DB103"}),
    ("good/shm_ok.py", set()),
    ("bad/shm_bad.py", {"SHM201", "SHM202", "LOCK301", "FORK302"}),
    ("good/memmap_ok.py", set()),
    ("bad/memmap_bad.py", {"SHM203"}),
    ("good/memmap_handoff.py", set()),
    ("bad/memmap_handoff.py", {"SHM203"}),
    ("good/chunk_ok.py", set()),
    ("bad/chunk_bad.py", {"SHM204"}),
    ("good/lockset_ok.py", set()),
    ("bad/lockset_bad.py", {"LOCK301", "LOCK302"}),
    ("good/async_ok.py", set()),
    ("bad/async_bad.py", {"ASYNC401", "ASYNC402", "ASYNC403", "ASYNC404"}),
    ("good/protocol.py", set()),
    ("bad/protocol.py", {"PROTO501", "PROTO502"}),
]


@pytest.fixture(scope="module")
def engine() -> CheckEngine:
    return CheckEngine(all_rules())


@pytest.mark.parametrize("relpath,expected", CASES)
def test_fixture_findings(engine, relpath, expected):
    path = FIXTURES / relpath
    findings, _ = engine.check_source(path.as_posix(), path.read_text())
    assert {f.rule_id for f in findings} == expected


def test_every_rule_has_a_bad_and_a_good_fixture():
    """The corpus covers the complete rule table in both directions."""
    tripped = set().union(*(expected for _, expected in CASES))
    # ARCH601 needs a layer config + package tree, so its fixtures live
    # in test_layering.py rather than the flat corpus
    assert tripped | {"ARCH601"} == set(rule_ids())
    # every bad fixture has a clean counterpart shape
    assert sum(1 for rel, exp in CASES if not exp) >= 4


def test_findings_carry_location_and_severity(engine):
    path = FIXTURES / "bad/vectorized.py"
    findings, _ = engine.check_source(path.as_posix(), path.read_text())
    for f in findings:
        assert f.line > 0 and f.col > 0
        assert f.severity in ("error", "warning")
        assert f.path.endswith("vectorized.py")
        assert f.rule_id in f.render() and str(f.line) in f.render()
    # DB101 is a warning, DB102/DB103 are errors
    by_rule = {f.rule_id: f.severity for f in findings}
    assert by_rule["DB101"] == "warning"
    assert by_rule["DB102"] == "error"
    assert by_rule["DB103"] == "error"


def test_crow001_counts_each_write(engine):
    path = FIXTURES / "bad/rules_bad.py"
    findings, _ = engine.check_source(path.as_posix(), path.read_text())
    assert sum(1 for f in findings if f.rule_id == "CROW001") == 2
    assert sum(1 for f in findings if f.rule_id == "CROW002") == 2


def test_shm204_counts_each_offslice_write(engine):
    path = FIXTURES / "bad/chunk_bad.py"
    findings, _ = engine.check_source(path.as_posix(), path.read_text())
    assert sum(1 for f in findings if f.rule_id == "SHM204") == 3
    # the scatter finding names the remedy
    scatter = [f for f in findings if "scatter" in f.message]
    assert len(scatter) == 1 and "private per-worker slab" in scatter[0].message


def test_shm204_ignores_non_worker_lo_hi(engine):
    """lo/hi as plain array params (not chunk bounds) never trip."""
    source = (
        "def _canonical_pairs(n, lo, hi):\n"
        "    packed = lo * n + hi\n"
        "    packed[0] = 0\n"
        "    return packed\n"
    )
    findings, _ = engine.check_source("pkg/edgelist.py", source)
    assert findings == []


def test_rule_subset_selection():
    engine = CheckEngine(all_rules(only=["DB102"]))
    path = FIXTURES / "bad/vectorized.py"
    findings, _ = engine.check_source(path.as_posix(), path.read_text())
    assert {f.rule_id for f in findings} == {"DB102"}


def test_unknown_rule_id_rejected():
    with pytest.raises(ValueError, match="unknown rule ids"):
        all_rules(only=["NOPE999"])


def test_db101_is_path_scoped(engine):
    """The same allocation in a non-kernel file does not trip DB101."""
    source = (FIXTURES / "bad/vectorized.py").read_text()
    findings, _ = engine.check_source("somewhere/helpers.py", source)
    assert "DB101" not in {f.rule_id for f in findings}
    # the structural rules still apply
    assert "DB102" in {f.rule_id for f in findings}


def test_suppression_comment(engine):
    source = (
        "def run_kernel(schedule, cur, other, ws, layout):\n"
        "    for sched in schedule:\n"
        "        snap = cur.copy()  # repro-check: allow[DB101] snapshots\n"
    )
    findings, suppressed = engine.check_source("pkg/vectorized.py", source)
    assert findings == []
    assert suppressed == 1


def test_suppression_line_above(engine):
    source = (
        "def run_kernel(schedule, cur, other, ws, layout):\n"
        "    for sched in schedule:\n"
        "        # repro-check: allow[DB101] opt-in snapshot path\n"
        "        snap = cur.copy()\n"
    )
    findings, suppressed = engine.check_source("pkg/vectorized.py", source)
    assert findings == []
    assert suppressed == 1


def test_suppression_star_and_wrong_id(engine):
    base = (
        "def run_kernel(schedule, cur, other, ws, layout):\n"
        "    for sched in schedule:\n"
        "        snap = cur.copy(){}\n"
    )
    starred = base.format("  # repro-check: allow[*]")
    findings, suppressed = engine.check_source("pkg/vectorized.py", starred)
    assert findings == [] and suppressed == 1
    wrong = base.format("  # repro-check: allow[SHM201]")
    findings, suppressed = engine.check_source("pkg/vectorized.py", wrong)
    assert [f.rule_id for f in findings] == ["DB101"] and suppressed == 0
