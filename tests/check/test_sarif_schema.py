"""SARIF output validated against a vendored 2.1.0 schema subset."""

from __future__ import annotations

from pathlib import Path

import pytest

jsonschema = pytest.importorskip("jsonschema")

from repro.check import CheckEngine, all_rules  # noqa: E402

from .sarif_schema_2_1_0 import SARIF_SCHEMA_SUBSET  # noqa: E402

FIXTURES = Path(__file__).parent / "fixtures"


def _sarif_for(relpaths):
    engine = CheckEngine(all_rules())
    report = engine.check_paths(
        [(FIXTURES / rel).as_posix() for rel in relpaths]
    )
    return report, report.to_sarif(engine.rules)


def test_schema_subset_is_itself_valid():
    jsonschema.Draft7Validator.check_schema(SARIF_SCHEMA_SUBSET)


def test_bad_fixtures_sarif_validates():
    report, sarif = _sarif_for(["bad"])
    jsonschema.validate(sarif, SARIF_SCHEMA_SUBSET)
    results = sarif["runs"][0]["results"]
    assert results, "bad fixtures must produce results"
    assert len(results) == len(report.findings)


def test_clean_tree_sarif_validates_with_empty_results():
    _, sarif = _sarif_for(["good"])
    jsonschema.validate(sarif, SARIF_SCHEMA_SUBSET)
    assert sarif["runs"][0]["results"] == []


def test_every_registered_rule_is_declared():
    _, sarif = _sarif_for(["bad"])
    declared = {r["id"] for r in sarif["runs"][0]["tool"]["driver"]["rules"]}
    from repro.check import rule_ids

    assert declared == set(rule_ids())


def test_results_reference_declared_rules():
    _, sarif = _sarif_for(["bad"])
    run = sarif["runs"][0]
    declared = {r["id"] for r in run["tool"]["driver"]["rules"]}
    used = {r["ruleId"] for r in run["results"]}
    assert used <= declared


def test_locations_are_one_indexed():
    _, sarif = _sarif_for(["bad"])
    for result in sarif["runs"][0]["results"]:
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1
        assert region["startColumn"] >= 1


def test_mutated_payload_fails_validation():
    _, sarif = _sarif_for(["bad"])
    sarif["version"] = "2.0.0"
    with pytest.raises(jsonschema.ValidationError):
        jsonschema.validate(sarif, SARIF_SCHEMA_SUBSET)
