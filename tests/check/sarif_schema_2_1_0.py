"""A vendored subset of the OASIS SARIF 2.1.0 JSON schema.

The full schema is ~350 KB; this subset pins every property
``CheckReport.to_sarif`` emits (plus the spec's required fields and
enum values for them) so a drifting emitter fails loudly, without
needing network access or the full vendored file.
"""

SARIF_SCHEMA_SUBSET = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "$schema": {"type": "string"},
        "version": {"const": "2.1.0"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "informationUri": {
                                        "type": "string",
                                        "format": "uri",
                                    },
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                    "properties": {
                                                        "text": {
                                                            "type": "string"
                                                        }
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "level": {
                                    "enum": [
                                        "none",
                                        "note",
                                        "warning",
                                        "error",
                                    ]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {
                                        "text": {"type": "string"}
                                    },
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "properties": {
                                                            "uri": {
                                                                "type":
                                                                "string"
                                                            }
                                                        },
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type":
                                                                "integer",
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type":
                                                                "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            }
                                        },
                                    },
                                },
                            },
                            "additionalProperties": True,
                        },
                    },
                },
            },
        },
    },
}
