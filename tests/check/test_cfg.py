"""The per-function CFG builder: structure, unwinding, event order."""

from __future__ import annotations

import ast

import pytest

from repro.check.cfg import build_cfg, function_defs, walk_stmt_expr


def _fn(source: str):
    tree = ast.parse(source)
    defs = dict(function_defs(tree))
    assert len(defs) == 1, sorted(defs)
    return next(iter(defs.values()))


def _events(cfg, kind=None):
    out = []
    for bid in cfg.reachable():
        for event in cfg.blocks[bid].events:
            if kind is None or event[0] == kind:
                out.append(event)
    return out


def test_straight_line_single_block():
    cfg = build_cfg(_fn("def f():\n    a = 1\n    b = a\n    return b\n"))
    assert len(cfg.reachable()) >= 1
    stmts = _events(cfg, "stmt")
    assert [type(e[1]).__name__ for e in stmts] == [
        "Assign", "Assign", "Return",
    ]


def test_if_produces_guards_both_senses():
    cfg = build_cfg(_fn(
        "def f(x):\n"
        "    if x > 1:\n"
        "        a = 1\n"
        "    else:\n"
        "        a = 2\n"
        "    return a\n"
    ))
    senses = [e[2] for e in _events(cfg, "guard")]
    assert True in senses and False in senses


def test_if_without_else_still_guards_false_arm():
    cfg = build_cfg(_fn(
        "def f(x):\n"
        "    if x:\n"
        "        a = 1\n"
        "    return x\n"
    ))
    senses = [e[2] for e in _events(cfg, "guard")]
    assert False in senses  # the implicit fall-through arm


def test_while_true_has_no_false_exit():
    cfg = build_cfg(_fn(
        "def f(q):\n"
        "    while True:\n"
        "        item = q.pop()\n"
        "        if not item:\n"
        "            break\n"
        "    return 1\n"
    ))
    # the return is reachable only through the break
    stmts = [type(e[1]).__name__ for e in _events(cfg, "stmt")]
    assert "Return" in stmts


def test_loop_back_edge_exists():
    cfg = build_cfg(_fn(
        "def f(n):\n"
        "    total = 0\n"
        "    for i in range(n):\n"
        "        total += i\n"
        "    return total\n"
    ))
    reachable = set(cfg.reachable())
    has_cycle = False
    seen = set()
    stack = [(cfg.entry, frozenset())]
    while stack:
        bid, path = stack.pop()
        if bid in path:
            has_cycle = True
            break
        if bid in seen:
            continue
        seen.add(bid)
        for succ in cfg.blocks[bid].succs:
            if succ in reachable:
                stack.append((succ, path | {bid}))
    assert has_cycle


def test_with_enter_exit_events_and_return_unwind():
    cfg = build_cfg(_fn(
        "def f(lock):\n"
        "    with lock:\n"
        "        return 1\n"
    ))
    kinds = [e[0] for e in _events(cfg)]
    assert "enter_with" in kinds
    # the return path unwinds the with before leaving the function
    assert "exit_with" in kinds


def test_try_handler_edge_from_body():
    cfg = build_cfg(_fn(
        "def f(x):\n"
        "    try:\n"
        "        a = risky(x)\n"
        "    except ValueError:\n"
        "        a = None\n"
        "    return a\n"
    ))
    stmts = [type(e[1]).__name__ for e in _events(cfg, "stmt")]
    # both arms visible; the handler is reachable
    assert stmts.count("Assign") == 2


def test_assert_emits_true_guard():
    cfg = build_cfg(_fn("def f(m):\n    assert m < 10\n    return m\n"))
    senses = [e[2] for e in _events(cfg, "guard")]
    assert True in senses


def test_nested_defs_not_inlined():
    cfg = build_cfg(_fn(
        "def outer(x):\n"
        "    y = 1\n"
        "    return y\n"
    ))
    assert len(_events(cfg, "stmt")) == 2
    tree = ast.parse(
        "def outer(x):\n"
        "    def inner():\n"
        "        return 99\n"
        "    return inner\n"
    )
    quals = [q for q, _ in function_defs(tree)]
    assert quals == ["outer", "outer.inner"]
    outer = dict(function_defs(tree))["outer"]
    inner_stmts = _events(build_cfg(outer), "stmt")
    # inner's return 99 belongs to inner's own CFG
    assert all(
        not (isinstance(e[1], ast.Return)
             and isinstance(e[1].value, ast.Constant)
             and e[1].value.value == 99)
        for e in inner_stmts
    )


def test_function_defs_qualifies_methods():
    tree = ast.parse(
        "class Pool:\n"
        "    def acquire(self):\n"
        "        pass\n"
        "    async def drain(self):\n"
        "        pass\n"
    )
    quals = sorted(q for q, _ in function_defs(tree))
    assert quals == ["Pool.acquire", "Pool.drain"]


def test_build_cfg_rejects_non_function():
    with pytest.raises(TypeError):
        build_cfg(ast.parse("x = 1"))


def test_walk_stmt_expr_skips_lambda_bodies():
    node = ast.parse("f = lambda q: q.recv()").body[0]
    names = [n.attr for n in walk_stmt_expr(node)
             if isinstance(n, ast.Attribute)]
    assert "recv" not in names


def test_walk_stmt_expr_keeps_comprehensions():
    node = ast.parse("xs = [q.get() for q in queues]").body[0]
    attrs = [n.attr for n in walk_stmt_expr(node)
             if isinstance(n, ast.Attribute)]
    assert "get" in attrs
