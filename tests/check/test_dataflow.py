"""The forward fixpoint and the canned analyses on top of it."""

from __future__ import annotations

import ast
from typing import FrozenSet

from repro.check.cfg import build_cfg, function_defs
from repro.check.dataflow import (
    expr_names,
    iter_event_states,
    reaching_definitions,
    solve_forward,
)
from repro.check.domain import lockset_transfer


def _cfg(source: str):
    tree = ast.parse(source)
    return build_cfg(next(iter(dict(function_defs(tree)).values())))


def test_solve_forward_merges_with_union():
    # facts: line numbers of executed assigns; at the join both must
    # survive (may-analysis)
    cfg = _cfg(
        "def f(x):\n"
        "    if x:\n"
        "        a = 1\n"
        "    else:\n"
        "        a = 2\n"
        "    return a\n"
    )

    def transfer(state: FrozenSet[int], event) -> FrozenSet[int]:
        if event[0] == "stmt" and isinstance(event[1], ast.Assign):
            return state | {event[1].lineno}
        return state

    states = solve_forward(cfg, transfer)
    exit_facts = set()
    for event, state in iter_event_states(cfg, transfer):
        if event[0] == "stmt" and isinstance(event[1], ast.Return):
            exit_facts = set(state)
    assert {3, 5} <= exit_facts
    assert states  # entry block solved


def test_fixpoint_terminates_on_loop():
    cfg = _cfg(
        "def f(n):\n"
        "    i = 0\n"
        "    while i < n:\n"
        "        i = i + 1\n"
        "    return i\n"
    )
    reaching = reaching_definitions(cfg)
    assert reaching  # converged, did not spin


def test_reaching_definitions_params_seeded():
    cfg = _cfg("def f(x, y=1, *args, z, **kw):\n    return x\n")
    entry = reaching_definitions(cfg)[cfg.entry]
    names = {name for name, _ in entry}
    assert {"x", "y", "args", "z", "kw"} <= names


def test_reaching_definitions_kill_and_gen():
    cfg = _cfg(
        "def f():\n"
        "    a = 1\n"
        "    a = 2\n"
        "    return a\n"
    )
    transfer_states = list(iter_event_states(
        cfg, lambda s, e: s, frozenset()
    ))
    assert transfer_states  # events iterate
    reaching = reaching_definitions(cfg)
    # at the exit, only the line-3 definition of `a` survives
    final = reaching[max(reaching)]
    a_defs = {line for name, line in final if name == "a"}
    assert 2 not in a_defs or 3 in a_defs


def test_lockset_transfer_tracks_with_and_acquire():
    cfg = _cfg(
        "def f(conn, lock):\n"
        "    lock.acquire()\n"
        "    conn.send(b'x')\n"
        "    lock.release()\n"
        "    conn.recv()\n"
    )
    held_at = {}
    for event, state in iter_event_states(cfg, lockset_transfer):
        if event[0] == "stmt":
            held_at[event[1].lineno] = set(state)
    assert held_at[3], "lock held across send"
    assert not held_at[5], "released before recv"


def test_lockset_transfer_ignores_async_with():
    cfg = _cfg(
        "async def f(alock):\n"
        "    async with alock:\n"
        "        x = 1\n"
        "    return x\n"
    )
    for event, state in iter_event_states(cfg, lockset_transfer):
        assert not state  # asyncio locks never enter the sync lockset


def test_expr_names():
    node = ast.parse("a + b.c[d]", mode="eval").body
    assert {"a", "b", "d"} <= set(expr_names(node))
