"""Strict baselines: retired rule ids and malformed keys fail loudly
instead of silently rebasing debt."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.check import (
    CheckEngine,
    StaleBaselineError,
    all_rules,
    validate_baseline,
)

FIXTURES = Path(__file__).parent / "fixtures"
KNOWN = {r.rule_id for r in all_rules()}


def test_valid_baseline_passes():
    validate_baseline({"src/a.py::LOCK301::holds while blocking": 2}, KNOWN)


def test_retired_rule_id_raises():
    with pytest.raises(StaleBaselineError, match="RETIRED999"):
        validate_baseline({"src/a.py::RETIRED999::old message": 1}, KNOWN)


def test_malformed_key_raises():
    with pytest.raises(StaleBaselineError, match="path::rule::message"):
        validate_baseline({"just-a-path.py": 1}, KNOWN)


def test_empty_baseline_is_fine():
    validate_baseline({}, KNOWN)


def test_engine_rejects_stale_baseline_on_check_paths():
    engine = CheckEngine(all_rules())
    with pytest.raises(StaleBaselineError):
        engine.check_paths(
            [(FIXTURES / "good").as_posix()],
            baseline={"x.py::GONE000::never": 1},
        )


def test_engine_rejects_baseline_for_deselected_rule():
    # running only LOCK301 makes a CROW001 baseline entry unservable:
    # its count could never decrement, so it must fail loudly too
    engine = CheckEngine(all_rules(["LOCK301"]))
    with pytest.raises(StaleBaselineError):
        engine.check_paths(
            [(FIXTURES / "good").as_posix()],
            baseline={"x.py::CROW001::planted": 1},
        )
