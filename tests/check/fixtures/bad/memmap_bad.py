"""Memmap unmap violations (lint fixture, never imported)."""


def leaky_window(path, length):
    mapped = np.memmap(path, dtype="uint8", mode="r",  # SHM203  # noqa: F821
                       shape=(length,))
    total = mapped.sum()
    del mapped  # not enough: the mapping lives until collection
    return int(total)
