"""Planted async-discipline violations: every ASYNC4xx rule fires.

ASYNC401 both directly (time.sleep in a coroutine) and through a sync
call chain the per-file v1 visitor could never follow; ASYNC402 a
coroutine invoked bare; ASYNC403 both a dropped task handle and an
unguarded cross-thread wakeup; ASYNC404 an await inside a sync
critical section."""

import asyncio
import threading
import time

_state_lock = threading.Lock()


def _read_frame(conn):
    return conn.recv()


def _decode(conn):
    return _read_frame(conn)


async def handles_request(conn):
    frame = _decode(conn)        # ASYNC401: blocking two frames down
    time.sleep(0.01)             # ASYNC401: blocking in the coroutine
    return frame


async def _refresh():
    await asyncio.sleep(0)


async def kicks_off_work():
    _refresh()                       # ASYNC402: never awaited
    asyncio.create_task(_refresh())  # ASYNC403: handle dropped


def wake_loop(loop, stop):
    loop.call_soon_threadsafe(stop.set)  # ASYNC403: loop may be closed


async def publishes(result):
    with _state_lock:
        await asyncio.sleep(0)       # ASYNC404: await under a sync lock
        return result
