"""Owner-write violations in chunk workers (lint fixture, never imported)."""


def jump_overlap(front, back, lo, hi):
    block = front[lo:hi]
    hop = front[block]
    back[lo:hi + 1] = np.minimum(block, hop)  # SHM204: overlaps next chunk
    return int(hop.size)


def jump_from_zero(front, back, lo, hi):
    back[0:hi] = front[0:hi]  # SHM204: rewrites every earlier chunk's rows
    rest = front[lo:hi]
    return int(rest.size)


def hook_into_shared(f, src, dst, lo, hi, out):
    out[lo:hi] = f[lo:hi]  # exact slice: marks ``out`` as partitioned
    u = src[lo:hi]
    v = dst[lo:hi]
    np.minimum.at(out, f[u], f[v])  # SHM204: scatter ghost-writes peers' rows
    return int(u.size)
