"""Planted SHM203 handoff leak: the memmap is passed to a helper, so
the local rule trusts the handoff -- but the helper only reads the
array and never unmaps it.  Only the cross-function half (the
callgraph pass) can see the leak."""

import numpy as np


def build_index(path, n):
    mm = np.memmap(path, dtype=np.uint64, mode="r", shape=(n,))
    return summarize(mm)


def summarize(mm):
    return int(mm.sum()), int(mm.max())
