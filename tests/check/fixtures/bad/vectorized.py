"""Double-buffer-violating kernel (lint fixture).

Named ``vectorized.py`` so the path-scoped DB101 rule applies.
"""

import numpy as np


def apply_generation_fused(sched, cur, other, ws, layout):
    stale = other[0] + cur[1]  # DB102: reads the spare (write) buffer
    other[:, :] = stale
    return other


def apply_generation(sched, D, layout):
    D[0] = np.minimum(D[0], D[1])  # DB103: mutates the read-only field
    np.copyto(D, D[::-1])  # DB103
    np.minimum(D[0], D[1], out=D[0])  # DB103: out= targets D
    return D


def run_kernel(schedule, cur, other, ws, layout):
    for sched in schedule:
        scratch = np.zeros(cur.shape[1], dtype=np.int64)  # DB101
        snap = cur.copy()  # DB101: allocation inside the generation loop
        np.minimum(cur[0], snap[0], out=scratch)
    return cur
