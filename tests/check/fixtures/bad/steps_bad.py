"""In-place-mutating step functions (lint fixture)."""

import numpy as np


def step4_merge(C, T):
    C[T] = T[C]  # CROW003: subscript store into an input
    C += 1  # CROW003: augmented assignment on an input
    np.minimum(C, T, out=C)  # CROW003: out= aliases an input
    return C


def one_iteration(C, A):
    C.sort()  # method mutation is out of scope for the lint (the
    # sanitizer catches it at runtime); the visible violation:
    A[0] = 1  # CROW003
    return C
