"""Planted wire-protocol violations.

PROTO501: a header-decoded length sizes an allocation and bounds a
slice with no validation between decode and use.  PROTO502: a size
comment that drifted from the format, and an unpack that shears the
trailing field."""

import struct

import numpy as np

HEADER = struct.Struct("<IIQ")  # 12 bytes  (actually 16: drifted)


def decode(header, payload):
    flat = np.frombuffer(payload, dtype=np.uint64, count=header.m)
    return flat[:header.m]


def read_body(sock, hdr):
    return sock.recv(hdr.payload_bytes)


def parse(buf):
    kind, flags = HEADER.unpack(buf)  # shears the third field
    return kind, flags
