"""Shared-memory hygiene violations (lint fixture, never imported)."""


def leak_attach(ref):
    handle = SharedArray.attach(ref)  # SHM201: never closed, never escapes
    total = handle.array.sum()
    return int(total)


def publish_pair(a, b):
    src = SharedArray.create(a)  # noqa: F821
    dst = SharedArray.create(b)  # SHM202: unguarded second acquisition
    return src, dst


def drain(queue_lock, conn):
    with queue_lock:
        payload = conn.recv()  # LOCK301: blocking recv under a held lock
    return payload


def start_pool(ctx, watch):
    monitor = threading.Thread(target=watch)  # noqa: F821
    monitor.start()
    worker = ctx.Process(target=watch)  # FORK302: fork after thread start
    return monitor, worker
