"""CROW-violating rule classes (lint fixture, never imported)."""


class NeighborScribbleRule(Rule):  # noqa: F821
    def pointer(self, cell):
        return cell.pointer

    def update(self, cell, neighbor):
        neighbor.data = 0  # CROW001: writes the neighbour view
        cell.aux["a"] = 1  # CROW001: writes the cell snapshot
        return CellUpdate(data=0)  # noqa: F821


class CountingRule(Rule):  # noqa: F821
    def pointer(self, cell):
        return cell.index

    def update(self, cell, neighbor):
        return KEEP  # noqa: F821

    def step(self, cell, read):
        self.calls += 1  # CROW002: mutates shared state through self
        self._field[cell.index] = 1  # CROW002
        return KEEP  # noqa: F821
