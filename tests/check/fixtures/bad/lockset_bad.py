"""Planted lockset violations: LOCK301 (blocking while held, through
the acquire()/release() style the v1 rule could not see) and LOCK302
(the same lock pair taken in both orders)."""

import threading

LOCK_A = threading.Lock()
LOCK_B = threading.Lock()


def blocking_under_acquire(conn):
    # v1 only saw ``with lock:`` blocks; the flow-sensitive pass sees
    # the acquire()-style hold too
    LOCK_A.acquire()
    try:
        return conn.recv()
    finally:
        LOCK_A.release()


def forward_order(conn):
    with LOCK_A:
        with LOCK_B:
            return conn.fileno()


def reverse_order(conn):
    with LOCK_B:
        with LOCK_A:
            return conn.fileno()
