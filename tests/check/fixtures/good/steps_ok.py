"""CROW-clean Hirschberg step functions (lint fixture)."""

import numpy as np


def step2_column_min(D):
    C = D.min(axis=0)  # fresh array, input untouched
    return C


def step5_shortcut(C):
    C = C[C]  # rebinding a local is fine; the caller's array survives
    C = np.minimum(C, C[C])
    return C


def one_iteration(C, A):
    T = step2_column_min(A)
    return step5_shortcut(np.minimum(C, T))
