"""Lock discipline done right: the near-miss shapes of lockset_bad.

Released-before-blocking must stay quiet (the v1 textual rule false
positived on the first function), and a consistent global order for a
lock pair is fine however many sites take it."""

import threading

LOCK_A = threading.Lock()
LOCK_B = threading.Lock()


def release_then_block(conn):
    LOCK_A.acquire()
    try:
        payload = b"x"
    finally:
        LOCK_A.release()
    return conn.recv(), payload


def with_exits_before_blocking(conn):
    with LOCK_A:
        fd = conn.fileno()
    return conn.recv(), fd


def consistent_order_one(conn):
    with LOCK_A:
        with LOCK_B:
            return conn.fileno()


def consistent_order_two(conn):
    with LOCK_A:
        with LOCK_B:
            return conn.fileno() + 1


def condition_wait_is_exempt(cond):
    # Condition.wait releases the lock while waiting
    with cond.wait_lock:
        cond.wait()
