"""SHM203 handoff done right: the callee either unmaps the mapping on
every path, stores it for a tracked lifetime, or forwards it to a
disposer -- all shapes the cross-function pass accepts."""

import numpy as np


def build_index(path, n):
    mm = np.memmap(path, dtype=np.uint64, mode="r", shape=(n,))
    return summarize_and_close(mm)


def summarize_and_close(mm):
    try:
        return int(mm.sum()), int(mm.max())
    finally:
        mm._mmap.close()


def build_forwarded(path, n):
    mm = np.memmap(path, dtype=np.uint64, mode="r", shape=(n,))
    return _delegate(mm)


def _delegate(mm):
    return summarize_and_close(mm)


class MapOwner:
    """Storing the mapping hands its lifetime to the owner object."""

    def __init__(self, path, n):
        mm = np.memmap(path, dtype=np.uint64, mode="r", shape=(n,))
        self._mm = mm

    def close(self):
        self._mm._mmap.close()
