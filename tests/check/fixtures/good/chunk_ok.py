"""Owner-write chunk workers done right (lint fixture, never imported)."""


def jump_chunk(front, back, lo, hi):
    if hi <= lo:
        return 0
    block = front[lo:hi]  # reads may slice anywhere
    hop = front[block]  # gathers may land anywhere
    back[lo:hi] = np.minimum(block, hop)  # noqa: F821 -- exact owner slice
    return int(np.count_nonzero(hop < block))  # noqa: F821


def hook_private(f, src, dst, lo, hi, partial):
    partial[...] = f.shape[0]  # private per-worker slab: full-slab init ok
    u = src[lo:hi]
    v = dst[lo:hi]
    np.minimum.at(partial, f[u], f[v])  # noqa: F821 -- private, not partitioned
    np.minimum.at(partial, f[v], f[u])  # noqa: F821
    return int(u.size)


def seed_chunk(labels, lo, hi):
    labels[lo:hi] = np.arange(lo, hi)  # noqa: F821 -- exact owner slice
    labels[lo:hi] += 0
    return hi - lo
