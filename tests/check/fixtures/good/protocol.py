"""Wire-protocol handling done right: the near-miss twins of the bad
protocol fixture.

Every header-decoded length passes a bounds check (or a validator
call) before sizing anything, the size comment matches calcsize, and
unpack arity matches the format."""

import struct

import numpy as np

HEADER = struct.Struct("<IIQ")  # 16 bytes

MAX_EDGES = 1 << 24


def decode(header, payload):
    if header.m > MAX_EDGES:
        raise ValueError(f"header declares {header.m} edges; cap is "
                         f"{MAX_EDGES}")
    flat = np.frombuffer(payload, dtype=np.uint64, count=header.m)
    return flat[:header.m]


def decode_via_validator(header, payload):
    m = _validated_length(header.m)
    return np.frombuffer(payload, dtype=np.uint64, count=m)


def _validated_length(m):
    if not 0 <= m <= MAX_EDGES:
        raise ValueError(f"length {m} out of range")
    return m


def read_body(sock, hdr):
    if hdr.payload_bytes > MAX_EDGES * 16:
        raise ValueError("oversized payload")
    return sock.recv(hdr.payload_bytes)


def parse(buf):
    kind, flags, request_id = HEADER.unpack(buf)
    return kind, flags, request_id


def constant_sizes_are_fine(sock):
    return sock.recv(4096)
