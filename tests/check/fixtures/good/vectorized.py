"""Double-buffer-clean kernel (lint fixture).

Named ``vectorized.py`` so the path-scoped DB101 rule applies.
"""

import numpy as np


def apply_generation_fused(sched, cur, other, ws, layout):
    # reads come from cur, the spare buffer is write-only
    other[:, :] = cur[0][None, :]
    other[1, :] = ws.col
    return other


def apply_generation(sched, D, layout):
    new = D.copy()  # fresh result; D stays untouched
    new[0] = np.minimum(new[0], new[1])
    return new


def run_kernel(schedule, cur, other, ws, layout):
    for sched in schedule:
        result = apply_generation_fused(sched, cur, other, ws, layout)
        if result is other:
            cur, other = other, cur
        np.minimum(cur[0], ws.col, out=ws.scratch)  # in-place, no alloc
    return cur
