"""Async discipline done right: the near-miss twins of async_bad.

Blocking work crosses the loop boundary only through an executor
bridge, coroutines are awaited or kept as tracked tasks, cross-thread
wakeups guard against a closing loop, and sync locks are dropped
before any await."""

import asyncio
import threading
import time

_state_lock = threading.Lock()
_tasks = set()


def _read_frame(conn):
    return conn.recv()


def _decode(conn):
    return _read_frame(conn)


async def handles_request(loop, conn):
    # the sync chain still blocks -- but on a worker thread
    frame = await loop.run_in_executor(None, _decode, conn)
    await asyncio.sleep(0.01)
    return frame


async def _refresh():
    await asyncio.sleep(0)


async def kicks_off_work():
    await _refresh()
    task = asyncio.create_task(_refresh())
    _tasks.add(task)
    task.add_done_callback(_tasks.discard)
    return task


def wake_loop(loop, stop):
    try:
        loop.call_soon_threadsafe(stop.set)
    except RuntimeError:
        pass  # the loop closed under us during shutdown


async def publishes(result):
    with _state_lock:
        staged = result
    await asyncio.sleep(0)
    return staged


def sync_sleep_is_fine():
    time.sleep(0.001)
