"""Shared-memory hygiene done right (lint fixture, never imported)."""


def publish_pair(a, b):
    src = SharedArray.create(a)  # noqa: F821
    try:
        dst = SharedArray.create(b)  # guarded: failure rolls back src
    except BaseException:
        src.close()
        src.unlink()
        raise
    return src, dst  # ownership escapes to the caller


def probe(ref):
    handle = SharedArray.attach(ref)  # noqa: F821
    try:
        return int(handle.array.sum())
    finally:
        handle.close()  # released on every path


def drain(queue_lock, conn):
    with queue_lock:
        item = pop_item()  # noqa: F821 -- non-blocking under the lock
    payload = conn.recv()  # blocking call happens outside the lock
    return item, payload


def start_pool(ctx, watch):
    workers = [ctx.Process(target=watch) for _ in range(4)]
    monitor = threading.Thread(target=watch)  # noqa: F821 -- after the forks
    return workers, monitor
