"""CROW-clean rule class: reads views, writes only via CellUpdate.

Lint fixture -- parsed by the AST engine, never imported (the names
``Rule``/``CellUpdate`` are deliberately unresolved).
"""


class MinLabelRule(Rule):  # noqa: F821
    def is_active(self, cell):
        return cell.data > 0

    def pointer(self, cell):
        return cell.pointer

    def update(self, cell, neighbor):
        best = min(cell.data, neighbor.data)  # locals are fine
        return CellUpdate(data=best)  # noqa: F821

    def step(self, cell, read):
        neighbor = read(self.pointer(cell))
        return self.update(cell, neighbor)
