"""Memmap unmap discipline done right (lint fixture, never imported)."""


def windowed_read(path, offset, length):
    mapped = np.memmap(path, dtype="uint8", mode="r",  # noqa: F821
                       offset=offset, shape=(length,))
    try:
        return mapped[:16].tobytes()
    finally:
        mapped._mmap.close()  # unmapped eagerly on every path


def checksum(path, n):
    view = np.memmap(path, dtype="int64", mode="r", shape=(n,))  # noqa: F821
    total = view.sum()
    view._mmap.close()
    return int(total)


def spill_labels(path, n):
    labels = np.memmap(path, dtype="int64", mode="w+", shape=(n,))  # noqa: F821
    initialise(labels)  # noqa: F821 -- ownership handed to the callee
    return labels  # ...and onward to the caller
