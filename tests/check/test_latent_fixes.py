"""Regression tests pinning the error-path fixes the lint rules found.

Three latent issues surfaced while bringing ``src/`` clean under
``python -m repro check``:

* ``share_edge_list`` leaked the ``src`` segment when the ``dst``
  create failed (SHM202);
* ``attach_edge_list`` pinned the ``src`` mapping when the ``dst``
  attach failed (SHM202);
* ``PoolExecutor`` built multi-slab batches with unguarded consecutive
  acquisitions (SHM202) and forked replacement workers while holding
  the pool lock (LOCK301) -- the fork now happens outside the critical
  section (pinned by the lint self-check staying clean).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.shm import (
    SharedArray,
    SlabPool,
    attach_edge_list,
    live_segments,
    share_edge_list,
)
from repro.hirschberg.edgelist import random_edge_list
from repro.serve.executor import PoolExecutor


def test_share_edge_list_rolls_back_on_second_create_failure(monkeypatch):
    graph = random_edge_list(8, 12, seed=0)
    before = live_segments()
    calls = {"n": 0}
    original = SharedArray.create.__func__

    def failing(cls, source):
        calls["n"] += 1
        if calls["n"] == 2:
            raise OSError("synthetic ENOSPC")
        return original(cls, source)

    monkeypatch.setattr(SharedArray, "create", classmethod(failing))
    with pytest.raises(OSError, match="ENOSPC"):
        share_edge_list(graph)
    assert live_segments() == before  # the first segment was unlinked


def test_attach_edge_list_closes_first_mapping_on_failure(monkeypatch):
    graph = random_edge_list(8, 12, seed=1)
    workspace, ref = share_edge_list(graph)
    closed = []
    original_close = SharedArray.close

    def spying_close(self):
        closed.append(self.ref.name)
        original_close(self)

    try:
        monkeypatch.setattr(SharedArray, "close", spying_close)
        calls = {"n": 0}
        original_attach = SharedArray.attach.__func__

        def failing(cls, array_ref):
            calls["n"] += 1
            if calls["n"] == 2:
                raise FileNotFoundError("owner unlinked dst")
            return original_attach(cls, array_ref)

        monkeypatch.setattr(SharedArray, "attach", classmethod(failing))
        with pytest.raises(FileNotFoundError):
            attach_edge_list(ref)
        assert ref.src.name in closed  # src mapping rolled back
    finally:
        monkeypatch.setattr(SharedArray, "close", original_close)
        workspace.close()
        workspace.unlink()
    assert live_segments() == frozenset()


def test_pool_acquire_slabs_rolls_back_partial_batch(monkeypatch):
    executor = PoolExecutor(workers=1, calibrate=False)  # never started
    try:
        before = live_segments()  # just the heartbeat segment
        calls = {"n": 0}
        original = SlabPool.acquire

        def failing(self, shape, dtype=np.int64):
            calls["n"] += 1
            if calls["n"] == 2:
                raise OSError("synthetic shm exhaustion")
            return original(self, shape, dtype)

        monkeypatch.setattr(SlabPool, "acquire", failing)
        with pytest.raises(OSError, match="exhaustion"):
            executor._acquire_slabs(
                [((16,), np.int64), ((16,), np.int64)]
            )
        monkeypatch.setattr(SlabPool, "acquire", original)
        # the first slab was discarded (unlinked), not left checked out
        assert live_segments() == before
    finally:
        executor._slabs.close_all()
        executor._hb.close()
        executor._hb.unlink()
    assert live_segments() == frozenset()


def test_acquire_slabs_success_path():
    executor = PoolExecutor(workers=1, calibrate=False)
    try:
        slabs = executor._acquire_slabs(
            [((4, 4), np.int8), ((4,), np.int64)]
        )
        assert [s.array.shape for s in slabs] == [(4, 4), (4,)]
        for slab in slabs:
            executor._slabs.release(slab)
    finally:
        executor._slabs.close_all()
        executor._hb.close()
        executor._hb.unlink()
    assert live_segments() == frozenset()
