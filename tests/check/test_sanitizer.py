"""Runtime sanitizer behaviour: the CROW write barrier and the shm
epoch/leak observer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.shm import SharedArray, SlabPool, live_segments
from repro.check.sanitizer import (
    SanitizedAutomaton,
    SanitizerMismatch,
    ShmSanitizer,
    ShmSanitizerError,
    run_sanitized,
    shm_sanitizer,
)
from repro.core.api import connected_components
from repro.gca.cell import KEEP, CellUpdate
from repro.gca.errors import OwnerWriteViolation
from repro.gca.rules import Rule
from repro.graphs.generators import random_graph


class _EvilRule(Rule):
    """Writes a foreign cell's state through the engine reference."""

    def __init__(self, automaton, victim=5, culprit=3):
        self.automaton = automaton
        self.victim = victim
        self.culprit = culprit

    def pointer(self, cell):
        return cell.index

    def update(self, cell, neighbor):
        return KEEP

    def step(self, cell, read):
        if cell.index == self.culprit:
            self.automaton._data[self.victim] = 99
        return KEEP


class _SelfWriteRule(_EvilRule):
    """Owner-only writes through the engine are *still* caught as the
    commit goes through CellUpdate -- but a cell writing its own slot
    directly is permitted by CROW (it owns it)."""

    def step(self, cell, read):
        if cell.index == self.culprit:
            self.automaton._data[self.culprit] = 7  # own slot: allowed
        return CellUpdate(data=7)


# ----------------------------------------------------------------------
# CROW write barrier
# ----------------------------------------------------------------------
def test_cross_cell_write_raises():
    auto = SanitizedAutomaton(size=8)
    with pytest.raises(OwnerWriteViolation, match="cell 5 while cell 3"):
        auto.step(_EvilRule(auto))


def test_owner_write_is_allowed():
    auto = SanitizedAutomaton(size=8)
    auto.step(_SelfWriteRule(auto))
    assert int(auto.data[3]) == 7


def test_leaked_snapshot_alias_is_guarded():
    """The guard propagates through views/copies of the planes."""
    auto = SanitizedAutomaton(size=4)

    class AliasRule(_EvilRule):
        def step(self, cell, read):
            if cell.index == 0:
                alias = self.automaton._pointer[1:]  # a view
                alias[0] = 2  # = cell 1 -> cross-cell
            return KEEP

    with pytest.raises(OwnerWriteViolation):
        auto.step(AliasRule(auto))


def test_non_scalar_write_rejected():
    auto = SanitizedAutomaton(size=4)

    class SliceRule(_EvilRule):
        def step(self, cell, read):
            if cell.index == 0:
                self.automaton._data[:] = 1
            return KEEP

    with pytest.raises(OwnerWriteViolation, match="non-scalar"):
        auto.step(SliceRule(auto))


def test_guard_disarmed_between_generations():
    auto = SanitizedAutomaton(size=4)
    auto.load(data=np.asarray([3, 2, 1, 0]))  # engine-side writes are fine
    assert auto.data.tolist() == [3, 2, 1, 0]
    with pytest.raises(OwnerWriteViolation):
        auto.step(_EvilRule(auto, victim=0, culprit=1))
    # after the failed generation the guard is released again
    auto.load(pointers=np.asarray([0, 0, 0, 0]))


def test_sanitized_solve_matches_plain_interpreter():
    g = random_graph(16, 0.2, seed=3)
    plain = connected_components(g, engine="interpreter")
    sanitized = connected_components(g, engine="interpreter", sanitize=True)
    assert np.array_equal(plain.labels, sanitized.labels)
    assert type(sanitized.labels) is np.ndarray  # not the guarded subclass

    report = sanitized.detail.sanitizer
    assert report is not None
    assert report.generations == len(plain.detail.generation_stats)
    # the independent tally cross-validates the Table 1 accounting
    assert report.total_reads == plain.detail.access_log.total_reads
    assert report.peak_congestion == plain.detail.access_log.peak_congestion
    assert report.mismatches == []
    assert "generations verified" in report.summary()


def test_sanitize_rejects_non_interpreter_engines():
    g = random_graph(8, 0.3, seed=0)
    with pytest.raises(ValueError, match="sanitize"):
        connected_components(g, engine="vectorized", sanitize=True)


def test_sanitize_auto_routes_to_interpreter():
    g = random_graph(8, 0.3, seed=0)
    result = connected_components(g, engine="auto", sanitize=True)
    assert result.method == "interpreter"
    assert result.requested_method == "auto"
    assert np.array_equal(
        result.labels, connected_components(g, engine="vectorized").labels
    )


def test_run_sanitized_entry_point():
    g = random_graph(12, 0.25, seed=7)
    result = run_sanitized(g)
    assert result.sanitizer is not None
    assert result.sanitizer.generations == result.total_generations


def test_read_accounting_mismatch_detected(monkeypatch):
    """If the engine's congestion recorder drops reads, the sanitizer's
    independent tally disagrees and the run fails loudly."""
    from repro.gca.instrumentation import ReadRecorder

    monkeypatch.setattr(ReadRecorder, "note", lambda self, target: None)
    with pytest.raises(SanitizerMismatch, match="sanitizer counted"):
        run_sanitized(random_graph(4, 0.5, seed=1))


# ----------------------------------------------------------------------
# shm sanitizer
# ----------------------------------------------------------------------
def test_shm_sanitizer_clean_window():
    with shm_sanitizer() as san:
        pool = SlabPool(1 << 20)
        slab = pool.acquire((10,), np.int64)
        slab.array[:] = 7
        pool.release(slab)
        recycled = pool.acquire((10,), np.int64)
        pool.release(recycled)
        pool.close_all()
    assert san.leaked() == []
    assert san.violations == []
    assert san.slab_acquires == 2
    assert san.stamps_verified == 2
    assert "0 leaked" in san.summary()


def test_shm_sanitizer_detects_leak():
    arr = None
    try:
        with pytest.raises(ShmSanitizerError, match="leaked"):
            with shm_sanitizer() as _:
                arr = SharedArray.zeros((4,), np.int64)
                arr.close()  # closed but never unlinked
    finally:
        if arr is not None:
            arr.unlink()
    assert live_segments() == frozenset()


def test_shm_sanitizer_detects_epoch_clobber():
    with pytest.raises(ShmSanitizerError, match="epoch"):
        with shm_sanitizer():
            pool = SlabPool(1 << 20)
            slab = pool.acquire((10,), np.int64)  # capacity 128 > 80 + 8
            raw = np.ndarray(
                (slab.capacity,), np.uint8, buffer=slab.block._shm.buf
            )
            raw[-8:] = 0xAB  # overrun past the requested region
            pool.release(slab)
            pool.close_all()
    assert live_segments() == frozenset()


def test_shm_sanitizer_detects_double_acquire():
    san = ShmSanitizer()

    class _FakeBlock:
        class _FakeShm:
            buf = bytearray(64)

        _shm = _FakeShm()

        class ref:
            name = "psm_fake"

    class _FakeSlab:
        block = _FakeBlock()
        capacity = 64

        class ref:
            nbytes = 64  # no spare tail -> no stamping

    a, b = _FakeSlab(), _FakeSlab()
    san.on_acquire(a)
    san.on_acquire(b)  # same segment name, still checked out
    assert any("already checked out" in v for v in san.violations)


def test_shm_sanitizer_does_not_mask_body_exception():
    with pytest.raises(RuntimeError, match="body failed"):
        with shm_sanitizer():
            arr = SharedArray.zeros((4,), np.int64)
            try:
                raise RuntimeError("body failed")
            finally:
                arr.close()
                arr.unlink()


def test_observer_restored_after_window():
    from repro.analysis import shm as shm_mod

    assert shm_mod._observer is None
    with shm_sanitizer():
        assert shm_mod._observer is not None
    assert shm_mod._observer is None
