"""Shared fixtures and hypothesis strategies for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.graphs.adjacency import AdjacencyMatrix
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    empty_graph,
    from_edges,
    grid_graph,
    path_graph,
    planted_components,
    random_graph,
    star_graph,
    union_of_cliques,
    worst_case_pairing,
)


# ----------------------------------------------------------------------
# a deterministic corpus of structurally diverse graphs
# ----------------------------------------------------------------------

def build_corpus():
    """Small named graphs covering the structural corner cases."""
    return {
        "singleton": empty_graph(1),
        "two_isolated": empty_graph(2),
        "k2": from_edges(2, [(0, 1)]),
        "k3": complete_graph(3),
        "k5": complete_graph(5),
        "path4": path_graph(4),
        "path7": path_graph(7),
        "path9": path_graph(9),
        "cycle6": cycle_graph(6),
        "star8": star_graph(8),
        "star_center3": star_graph(6, center=3),
        "grid3x4": grid_graph(3, 4),
        "cliques_3_2": union_of_cliques([3, 2]),
        "cliques_4_1_3": union_of_cliques([4, 1, 3]),
        "pairing8": worst_case_pairing(8),
        "pairing9": worst_case_pairing(9),
        "planted": planted_components([5, 3, 2], intra_p=0.5, seed=1),
        "random_sparse": random_graph(12, 0.1, seed=2),
        "random_medium": random_graph(10, 0.3, seed=3),
        "random_dense": random_graph(9, 0.8, seed=4),
        "empty10": empty_graph(10),
        "k8": complete_graph(8),
    }


CORPUS = build_corpus()


@pytest.fixture(params=sorted(CORPUS), ids=sorted(CORPUS))
def corpus_graph(request) -> AdjacencyMatrix:
    """Parametrised over every corpus graph."""
    return CORPUS[request.param]


@pytest.fixture
def k2() -> AdjacencyMatrix:
    return CORPUS["k2"]


@pytest.fixture
def path4() -> AdjacencyMatrix:
    return CORPUS["path4"]


# ----------------------------------------------------------------------
# hypothesis strategies
# ----------------------------------------------------------------------

@st.composite
def adjacency_matrices(draw, min_n: int = 1, max_n: int = 16):
    """Random undirected graphs as AdjacencyMatrix."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    if n == 1:
        return AdjacencyMatrix(np.zeros((1, 1), dtype=np.int8))
    pair_count = n * (n - 1) // 2
    bits = draw(
        st.lists(st.booleans(), min_size=pair_count, max_size=pair_count)
    )
    m = np.zeros((n, n), dtype=np.int8)
    k = 0
    for i in range(n):
        for j in range(i + 1, n):
            if bits[k]:
                m[i, j] = m[j, i] = 1
            k += 1
    return AdjacencyMatrix(m)


@st.composite
def labelled_partitions(draw, min_n: int = 1, max_n: int = 20):
    """A size-n partition expressed as a parent-of mapping (for union-find
    property tests): list of (a, b) union operations."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    ops = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=2 * n,
        )
    )
    return n, ops
