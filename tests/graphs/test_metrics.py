"""Tests for the graph metrics module."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    empty_graph,
    from_edges,
    grid_graph,
    path_graph,
    star_graph,
    union_of_cliques,
)
from repro.graphs.metrics import (
    bfs_distances,
    component_sizes,
    degree_statistics,
    diameter,
    eccentricity,
    is_connected,
    summary,
)
from tests.conftest import adjacency_matrices


class TestBfsDistances:
    def test_path(self):
        assert bfs_distances(path_graph(5), 0).tolist() == [0, 1, 2, 3, 4]

    def test_unreachable(self):
        d = bfs_distances(from_edges(4, [(0, 1)]), 0)
        assert d.tolist() == [0, 1, -1, -1]

    def test_source_checked(self):
        with pytest.raises(IndexError):
            bfs_distances(path_graph(3), 3)


class TestDiameter:
    @pytest.mark.parametrize("g,expected", [
        (path_graph(6), 5),
        (cycle_graph(6), 3),
        (complete_graph(5), 1),
        (star_graph(7), 2),
        (empty_graph(4), 0),
        (grid_graph(3, 4), 5),
    ])
    def test_known_values(self, g, expected):
        assert diameter(g) == expected

    def test_eccentricity_center_vs_leaf(self):
        g = path_graph(7)
        assert eccentricity(g, 3) == 3
        assert eccentricity(g, 0) == 6

    @given(adjacency_matrices(min_n=2, max_n=10))
    @settings(max_examples=25)
    def test_diameter_bounds(self, g):
        d = diameter(g)
        assert 0 <= d < g.n


class TestComponentSizes:
    def test_cliques(self):
        assert component_sizes(union_of_cliques([3, 1, 2])) == [3, 2, 1]

    def test_connected(self):
        assert component_sizes(complete_graph(4)) == [4]

    @given(adjacency_matrices(max_n=12))
    @settings(max_examples=25)
    def test_sizes_sum_to_n(self, g):
        assert sum(component_sizes(g)) == g.n


class TestDegreeStats:
    def test_star(self):
        stats = degree_statistics(star_graph(5))
        assert stats["max_degree"] == 4
        assert stats["min_degree"] == 1
        assert stats["edges"] == 4

    def test_empty(self):
        stats = degree_statistics(empty_graph(3))
        assert stats["max_degree"] == 0
        assert stats["mean_degree"] == 0.0


class TestConnectivity:
    def test_connected(self):
        assert is_connected(path_graph(5))
        assert not is_connected(union_of_cliques([2, 2]))

    def test_singleton(self):
        assert is_connected(empty_graph(1))


class TestSummary:
    def test_mentions_figures(self):
        text = summary(path_graph(6))
        assert "n=6" in text
        assert "diameter=5" in text
        assert "components=1" in text
