"""Unit tests for repro.graphs.adjacency."""

import numpy as np
import pytest
from hypothesis import given

from repro.graphs.adjacency import AdjacencyMatrix
from tests.conftest import adjacency_matrices


def tri() -> AdjacencyMatrix:
    return AdjacencyMatrix(np.array([[0, 1, 1], [1, 0, 0], [1, 0, 0]]))


class TestConstruction:
    def test_basic_properties(self):
        g = tri()
        assert g.n == 3
        assert g.edge_count == 2
        assert 0 < g.density < 1

    def test_diagonal_cleared(self):
        m = np.array([[1, 1], [1, 1]])
        g = AdjacencyMatrix(m)
        assert g.matrix[0, 0] == 0 and g.matrix[1, 1] == 0
        assert g.edge_count == 1

    def test_input_copied(self):
        m = np.array([[0, 1], [1, 0]], dtype=np.int8)
        g = AdjacencyMatrix(m)
        m[0, 1] = 0
        assert g.has_edge(0, 1)

    def test_matrix_readonly(self):
        g = tri()
        with pytest.raises(ValueError):
            g.matrix[0, 1] = 0

    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError):
            AdjacencyMatrix(np.array([[0, 1], [0, 0]]))

    def test_rejects_values(self):
        with pytest.raises(ValueError):
            AdjacencyMatrix(np.array([[0, 3], [3, 0]]))


class TestQueries:
    def test_has_edge_symmetric(self):
        g = tri()
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(1, 2)

    def test_has_edge_range_checked(self):
        with pytest.raises(IndexError):
            tri().has_edge(0, 3)

    def test_neighbors(self):
        g = tri()
        assert g.neighbors(0).tolist() == [1, 2]
        assert g.neighbors(1).tolist() == [0]

    def test_degrees(self):
        assert tri().degrees().tolist() == [2, 1, 1]
        assert tri().degree(0) == 2

    def test_edges_upper_triangle(self):
        assert tri().edge_list() == [(0, 1), (0, 2)]


class TestDerived:
    def test_subgraph(self):
        sub = tri().subgraph([0, 2])
        assert sub.n == 2
        assert sub.has_edge(0, 1)

    def test_subgraph_rejects_duplicates(self):
        with pytest.raises(ValueError):
            tri().subgraph([0, 0])

    def test_subgraph_rejects_out_of_range(self):
        with pytest.raises(IndexError):
            tri().subgraph([0, 5])

    def test_complement(self):
        comp = tri().complement()
        assert not comp.has_edge(0, 1)
        assert comp.has_edge(1, 2)

    def test_complement_involution(self):
        g = tri()
        assert g.complement().complement() == g

    def test_relabeled_preserves_structure(self):
        g = tri()
        r = g.relabeled([2, 0, 1])  # node 0 -> 2, 1 -> 0, 2 -> 1
        assert r.has_edge(2, 0)     # old (0,1)
        assert r.has_edge(2, 1)     # old (0,2)
        assert not r.has_edge(0, 1)

    def test_relabeled_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            tri().relabeled([0, 0, 1])


class TestDunder:
    def test_equality_and_hash(self):
        a, b = tri(), tri()
        assert a == b and hash(a) == hash(b)

    def test_inequality(self):
        assert tri() != AdjacencyMatrix(np.zeros((3, 3), dtype=np.int8))

    def test_repr(self):
        assert "n=3" in repr(tri())


class TestProperties:
    @given(adjacency_matrices(max_n=10))
    def test_degree_sum_is_twice_edges(self, g):
        assert int(g.degrees().sum()) == 2 * g.edge_count

    @given(adjacency_matrices(max_n=10))
    def test_complement_edge_count(self, g):
        total = g.n * (g.n - 1) // 2
        assert g.edge_count + g.complement().edge_count == total

    @given(adjacency_matrices(max_n=8))
    def test_relabel_roundtrip(self, g):
        perm = list(range(g.n))[::-1]
        inverse = [0] * g.n
        for i, p in enumerate(perm):
            inverse[p] = i
        assert g.relabeled(perm).relabeled(inverse) == g
