"""Unit tests for repro.graphs.generators."""

import numpy as np
import pytest

from repro.graphs.components import canonical_labels, count_components
from repro.graphs.generators import (
    binary_tree_graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    from_edges,
    grid_graph,
    image_to_graph,
    path_graph,
    planted_components,
    random_graph,
    random_spanning_tree,
    star_graph,
    union_of_cliques,
    worst_case_pairing,
)


class TestDeterministicShapes:
    def test_empty(self):
        g = empty_graph(5)
        assert g.n == 5 and g.edge_count == 0

    def test_complete(self):
        g = complete_graph(6)
        assert g.edge_count == 15
        assert g.density == 1.0

    def test_path(self):
        g = path_graph(5)
        assert g.edge_count == 4
        assert g.degree(0) == 1 and g.degree(2) == 2

    def test_path_single_node(self):
        assert path_graph(1).edge_count == 0

    def test_cycle(self):
        g = cycle_graph(5)
        assert g.edge_count == 5
        assert all(g.degree(i) == 2 for i in range(5))

    def test_cycle_minimum_size(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(6)
        assert g.degree(0) == 5
        assert all(g.degree(i) == 1 for i in range(1, 6))

    def test_star_custom_center(self):
        g = star_graph(5, center=2)
        assert g.degree(2) == 4

    def test_star_center_checked(self):
        with pytest.raises(IndexError):
            star_graph(4, center=4)

    def test_grid(self):
        g = grid_graph(2, 3)
        assert g.n == 6
        assert g.edge_count == 7  # 2*2 horizontal + 3 vertical
        assert count_components(g) == 1

    def test_binary_tree(self):
        g = binary_tree_graph(7)
        assert g.edge_count == 6
        assert count_components(g) == 1


class TestFromEdges:
    def test_basic(self):
        g = from_edges(3, [(0, 2)])
        assert g.has_edge(0, 2) and not g.has_edge(0, 1)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            from_edges(3, [(1, 1)])

    def test_rejects_out_of_range(self):
        with pytest.raises(IndexError):
            from_edges(3, [(0, 3)])

    def test_duplicates_merged(self):
        g = from_edges(3, [(0, 1), (1, 0), (0, 1)])
        assert g.edge_count == 1


class TestUnionOfCliques:
    def test_structure(self):
        g = union_of_cliques([3, 2])
        assert count_components(g) == 2
        assert canonical_labels(g).tolist() == [0, 0, 0, 3, 3]

    def test_singletons(self):
        g = union_of_cliques([1, 1, 2])
        assert count_components(g) == 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            union_of_cliques([])


class TestWorstCasePairing:
    def test_even(self):
        g = worst_case_pairing(6)
        assert g.edge_count == 3
        assert canonical_labels(g).tolist() == [0, 0, 2, 2, 4, 4]

    def test_odd_leaves_last_isolated(self):
        g = worst_case_pairing(5)
        assert g.degree(4) == 0


class TestRandomGraph:
    def test_determinism(self):
        a = random_graph(10, 0.5, seed=1)
        b = random_graph(10, 0.5, seed=1)
        assert a == b

    def test_different_seeds_differ(self):
        assert random_graph(12, 0.5, seed=1) != random_graph(12, 0.5, seed=2)

    def test_extremes(self):
        assert random_graph(8, 0.0, seed=0).edge_count == 0
        assert random_graph(8, 1.0, seed=0) == complete_graph(8)

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            random_graph(4, 1.5)

    def test_density_roughly_p(self):
        g = random_graph(60, 0.3, seed=7)
        assert 0.2 < g.density < 0.4


class TestPlantedComponents:
    def test_component_structure_preserved(self):
        g = planted_components([4, 3, 2], intra_p=0.5, seed=9)
        assert count_components(g) == 3
        sizes = sorted(np.bincount(canonical_labels(g)).tolist(), reverse=True)
        assert sorted(s for s in sizes if s) == [2, 3, 4]

    def test_unshuffled_blocks_contiguous(self):
        g = planted_components([3, 2], intra_p=0.0, seed=0, shuffle=False)
        labels = canonical_labels(g)
        assert labels.tolist() == [0, 0, 0, 3, 3]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            planted_components([])
        with pytest.raises(ValueError):
            planted_components([2], intra_p=2.0)


class TestRandomSpanningTree:
    def test_tree_properties(self):
        g = random_spanning_tree(20, seed=4)
        assert g.edge_count == 19
        assert count_components(g) == 1


class TestImageToGraph:
    def test_two_blobs(self):
        image = np.array([[1, 0, 1], [1, 0, 1]])
        g, node_of = image_to_graph(image)
        labels = canonical_labels(g)
        assert labels[node_of[0, 0]] == labels[node_of[1, 0]]
        assert labels[node_of[0, 2]] == labels[node_of[1, 2]]
        assert labels[node_of[0, 0]] != labels[node_of[0, 2]]

    def test_background_isolated(self):
        image = np.array([[1, 0], [0, 1]])  # diagonal: 4-connectivity splits
        g, node_of = image_to_graph(image)
        labels = canonical_labels(g)
        assert labels[node_of[0, 0]] != labels[node_of[1, 1]]

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            image_to_graph(np.zeros(4))


class TestBipartite:
    def test_complete_bipartite(self):
        from repro.graphs.generators import bipartite_graph

        g = bipartite_graph(2, 3)
        assert g.n == 5
        assert g.edge_count == 6
        # no intra-side edges
        assert not g.has_edge(0, 1)
        assert not g.has_edge(2, 3)
        assert g.has_edge(0, 2)

    def test_random_bipartite_structure(self):
        from repro.graphs.generators import bipartite_graph

        g = bipartite_graph(6, 6, p=0.5, seed=1)
        for i in range(6):
            for j in range(6):
                assert not g.has_edge(i, j) or i == j is False
        assert 0 < g.edge_count < 36

    def test_rejects_bad_p(self):
        from repro.graphs.generators import bipartite_graph

        with pytest.raises(ValueError):
            bipartite_graph(2, 2, p=1.5)


class TestLollipopBarbellCaterpillar:
    def test_lollipop(self):
        from repro.graphs.generators import lollipop_graph
        from repro.graphs.metrics import diameter

        g = lollipop_graph(4, 5)
        assert g.n == 9
        assert count_components(g) == 1
        assert diameter(g) == 6  # across the tail plus the clique

    def test_barbell(self):
        from repro.graphs.generators import barbell_graph

        g = barbell_graph(3, 2)
        assert g.n == 8
        assert count_components(g) == 1
        assert canonical_labels(g).tolist() == [0] * 8

    def test_barbell_zero_bridge(self):
        from repro.graphs.generators import barbell_graph

        g = barbell_graph(3, 0)
        assert g.n == 6
        assert count_components(g) == 1

    def test_caterpillar(self):
        from repro.graphs.generators import caterpillar_graph

        g = caterpillar_graph(4, 2)
        assert g.n == 12
        assert g.edge_count == 3 + 8  # spine + legs
        assert count_components(g) == 1

    def test_caterpillar_no_legs(self):
        from repro.graphs.generators import caterpillar_graph
        from repro.graphs.generators import path_graph

        assert caterpillar_graph(5, 0) == path_graph(5)

    def test_gca_solves_stress_shapes(self):
        from repro.graphs.generators import barbell_graph, lollipop_graph
        import repro

        for g in (lollipop_graph(5, 7), barbell_graph(4, 3)):
            assert np.array_equal(
                repro.gca_connected_components(g).labels, canonical_labels(g)
            )
