"""Unit tests for repro.graphs.union_find."""

import pytest
from hypothesis import given

from repro.graphs.union_find import UnionFind
from tests.conftest import labelled_partitions


class TestBasics:
    def test_initial_state(self):
        uf = UnionFind(4)
        assert uf.n == 4
        assert uf.set_count == 4
        assert all(uf.find(i) == i for i in range(4))

    def test_union_reduces_count(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert uf.set_count == 3
        assert uf.connected(0, 1)

    def test_union_idempotent(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.set_count == 3

    def test_transitivity(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.connected(0, 2)
        assert not uf.connected(0, 3)

    def test_find_range_checked(self):
        with pytest.raises(IndexError):
            UnionFind(3).find(3)

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            UnionFind(0)


class TestMinimumTracking:
    def test_set_minimum(self):
        uf = UnionFind(6)
        uf.union(5, 3)
        uf.union(3, 4)
        assert uf.set_minimum(5) == 3
        assert uf.set_minimum(0) == 0

    def test_canonical_labels(self):
        uf = UnionFind(5)
        uf.union(1, 4)
        uf.union(2, 3)
        assert uf.canonical_labels().tolist() == [0, 1, 2, 2, 1]

    def test_sets(self):
        uf = UnionFind(5)
        uf.union(1, 4)
        assert uf.sets() == [[0], [1, 4], [2], [3]]


class TestProperties:
    @given(labelled_partitions(max_n=24))
    def test_labels_are_set_minima(self, case):
        n, ops = case
        uf = UnionFind(n)
        for a, b in ops:
            uf.union(a, b)
        labels = uf.canonical_labels()
        # label of each element equals the min element sharing its root
        for i in range(n):
            same = [j for j in range(n) if uf.connected(i, j)]
            assert labels[i] == min(same)

    @given(labelled_partitions(max_n=24))
    def test_set_count_consistent(self, case):
        n, ops = case
        uf = UnionFind(n)
        for a, b in ops:
            uf.union(a, b)
        assert uf.set_count == len({uf.find(i) for i in range(n)})
        assert uf.set_count == len(uf.sets())
