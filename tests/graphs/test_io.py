"""Unit tests for repro.graphs.io."""

import pytest
from hypothesis import given

from repro.graphs.generators import from_edges, random_graph
from repro.graphs.io import (
    dumps_edge_list,
    dumps_matrix,
    load_edge_list,
    load_matrix,
    loads_edge_list,
    save_edge_list,
    save_matrix,
)
from tests.conftest import adjacency_matrices


class TestEdgeListText:
    def test_roundtrip(self):
        g = from_edges(4, [(0, 1), (2, 3)])
        assert loads_edge_list(dumps_edge_list(g)) == g

    def test_format(self):
        g = from_edges(3, [(0, 2)])
        assert dumps_edge_list(g) == "3\n0 2\n"

    def test_comments_and_blanks_ignored(self):
        text = "# comment\n3\n\n0 1\n# another\n"
        g = loads_edge_list(text)
        assert g.has_edge(0, 1)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            loads_edge_list("")

    def test_rejects_bad_header(self):
        with pytest.raises(ValueError):
            loads_edge_list("abc\n0 1\n")

    def test_rejects_malformed_edge(self):
        with pytest.raises(ValueError):
            loads_edge_list("3\n0 1 2\n")

    @given(adjacency_matrices(max_n=10))
    def test_roundtrip_property(self, g):
        assert loads_edge_list(dumps_edge_list(g)) == g


class TestFiles:
    def test_edge_list_file_roundtrip(self, tmp_path):
        g = random_graph(8, 0.4, seed=0)
        path = tmp_path / "g.edges"
        save_edge_list(g, path)
        assert load_edge_list(path) == g

    def test_matrix_file_roundtrip(self, tmp_path):
        g = random_graph(7, 0.5, seed=1)
        path = tmp_path / "g.mat"
        save_matrix(g, path)
        assert load_matrix(path) == g

    def test_matrix_single_node(self, tmp_path):
        g = from_edges(1, [])
        path = tmp_path / "one.mat"
        save_matrix(g, path)
        assert load_matrix(path) == g

    def test_dumps_matrix_contains_rows(self):
        g = from_edges(2, [(0, 1)])
        text = dumps_matrix(g)
        assert text.splitlines() == ["0 1", "1 0"]
