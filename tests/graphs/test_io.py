"""Unit tests for repro.graphs.io."""

import numpy as np
import pytest
from hypothesis import given

from repro.graphs.generators import from_edges, random_graph
from repro.graphs.io import (
    dumps_edge_list,
    dumps_edge_list_sparse,
    dumps_matrix,
    load_edge_list,
    load_edge_list_sparse,
    load_matrix,
    loads_edge_list,
    loads_edge_list_sparse,
    save_edge_list,
    save_edge_list_sparse,
    save_matrix,
)
from repro.hirschberg.edgelist import EdgeListGraph, random_edge_list
from tests.conftest import adjacency_matrices


class TestEdgeListText:
    def test_roundtrip(self):
        g = from_edges(4, [(0, 1), (2, 3)])
        assert loads_edge_list(dumps_edge_list(g)) == g

    def test_format(self):
        g = from_edges(3, [(0, 2)])
        assert dumps_edge_list(g) == "3\n0 2\n"

    def test_comments_and_blanks_ignored(self):
        text = "# comment\n3\n\n0 1\n# another\n"
        g = loads_edge_list(text)
        assert g.has_edge(0, 1)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            loads_edge_list("")

    def test_rejects_bad_header(self):
        with pytest.raises(ValueError):
            loads_edge_list("abc\n0 1\n")

    def test_rejects_malformed_edge(self):
        with pytest.raises(ValueError):
            loads_edge_list("3\n0 1 2\n")

    @given(adjacency_matrices(max_n=10))
    def test_roundtrip_property(self, g):
        assert loads_edge_list(dumps_edge_list(g)) == g


class TestSparseEdgeListText:
    def test_roundtrip(self):
        g = random_edge_list(500, 1200, seed=0)
        g2 = loads_edge_list_sparse(dumps_edge_list_sparse(g))
        assert g2.n == g.n
        assert np.array_equal(g2.src, g.src)
        assert np.array_equal(g2.dst, g.dst)

    def test_format_matches_dense_writer(self):
        g = EdgeListGraph.from_edges(3, [(0, 2)])
        assert dumps_edge_list_sparse(g) == "3\n0 2\n"

    def test_interop_with_dense_loader(self):
        sparse = EdgeListGraph.from_edges(5, [(0, 1), (2, 3)])
        dense = loads_edge_list(dumps_edge_list_sparse(sparse))
        assert dense.n == 5 and dense.edge_count == 2
        # and the reverse direction
        back = loads_edge_list_sparse(dumps_edge_list(dense))
        assert back.edge_count == 2

    def test_strict_path_handles_comments_and_blanks(self):
        g = loads_edge_list_sparse("# comment\n4\n\n0 1\n# another\n2 3\n")
        assert g.n == 4 and g.edge_count == 2

    def test_fast_and_strict_paths_agree(self):
        g = random_edge_list(200, 400, seed=1)
        text = dumps_edge_list_sparse(g)
        fast = loads_edge_list_sparse(text)
        strict = loads_edge_list_sparse("# force strict\n" + text)
        assert fast.n == strict.n
        assert np.array_equal(fast.src, strict.src)

    def test_normalises_messy_input(self):
        g = loads_edge_list_sparse("4\n1 1\n0 1\n1 0\n0 1\n")
        assert g.edge_count == 1  # self-loop dropped, duplicates merged

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            loads_edge_list_sparse("")

    def test_rejects_odd_token_count(self):
        with pytest.raises(ValueError):
            loads_edge_list_sparse("4\n0 1 2\n")

    def test_rejects_out_of_range(self):
        with pytest.raises(IndexError):
            loads_edge_list_sparse("3\n0 7\n")
        with pytest.raises(IndexError):
            loads_edge_list_sparse("3\n0 -1\n")

    def test_rejects_bad_header(self):
        with pytest.raises(ValueError):
            loads_edge_list_sparse("abc\n0 1\n")


class TestFiles:
    def test_edge_list_file_roundtrip(self, tmp_path):
        g = random_graph(8, 0.4, seed=0)
        path = tmp_path / "g.edges"
        save_edge_list(g, path)
        assert load_edge_list(path) == g

    def test_matrix_file_roundtrip(self, tmp_path):
        g = random_graph(7, 0.5, seed=1)
        path = tmp_path / "g.mat"
        save_matrix(g, path)
        assert load_matrix(path) == g

    def test_matrix_single_node(self, tmp_path):
        g = from_edges(1, [])
        path = tmp_path / "one.mat"
        save_matrix(g, path)
        assert load_matrix(path) == g

    def test_dumps_matrix_contains_rows(self):
        g = from_edges(2, [(0, 1)])
        text = dumps_matrix(g)
        assert text.splitlines() == ["0 1", "1 0"]

    def test_sparse_file_roundtrip(self, tmp_path):
        g = random_edge_list(300, 700, seed=2)
        path = tmp_path / "g.edges"
        save_edge_list_sparse(g, path)
        g2 = load_edge_list_sparse(path)
        assert g2.n == g.n and np.array_equal(g2.src, g.src)


class TestOpenEdgeListStream:
    """The streaming ingestion path of the sharded engine."""

    def _write(self, tmp_path, text):
        path = tmp_path / "g.edges"
        path.write_text(text)
        return path

    def test_round_trips_a_saved_sparse_file(self, tmp_path):
        from repro.graphs.io import open_edge_list_stream
        from repro.hirschberg.edgelist import random_edge_list

        g = random_edge_list(200, 400, seed=5)
        path = tmp_path / "g.edges"
        save_edge_list_sparse(g, path)
        n, stream = open_edge_list_stream(path, chunk_edges=64)
        assert n == g.n
        us, vs = [], []
        for u, v in stream:
            assert u.size == v.size <= 64
            assert u.dtype == np.int64
            us.append(u)
            vs.append(v)
        got = set(zip(np.concatenate(us).tolist(),
                      np.concatenate(vs).tolist()))
        half = g.src.size // 2
        want = set(zip(g.src[:half].tolist(), g.dst[:half].tolist()))
        assert got == want

    def test_comments_and_blank_lines_tolerated(self, tmp_path):
        from repro.graphs.io import open_edge_list_stream

        path = self._write(
            tmp_path,
            "# a comment\n\n4\n0 1\n# inline comment line\n\n2 3\n",
        )
        n, stream = open_edge_list_stream(path)
        pairs = [(int(u[i]), int(v[i]))
                 for u, v in stream for i in range(u.size)]
        assert n == 4
        assert pairs == [(0, 1), (2, 3)]

    def test_missing_trailing_newline(self, tmp_path):
        from repro.graphs.io import open_edge_list_stream

        path = self._write(tmp_path, "3\n0 1\n1 2")
        n, stream = open_edge_list_stream(path)
        pairs = [(int(u[i]), int(v[i]))
                 for u, v in stream for i in range(u.size)]
        assert pairs == [(0, 1), (1, 2)]

    def test_empty_body_yields_nothing(self, tmp_path):
        from repro.graphs.io import open_edge_list_stream

        path = self._write(tmp_path, "7\n")
        n, stream = open_edge_list_stream(path)
        assert n == 7
        assert list(stream) == []

    def test_bad_header_is_a_clear_error(self, tmp_path):
        from repro.graphs.io import open_edge_list_stream

        path = self._write(tmp_path, "nodes=4\n0 1\n")
        with pytest.raises(ValueError, match="node count"):
            open_edge_list_stream(path)

    def test_empty_file_is_an_error(self, tmp_path):
        from repro.graphs.io import open_edge_list_stream

        path = self._write(tmp_path, "")
        with pytest.raises(ValueError, match="empty"):
            open_edge_list_stream(path)

    def test_malformed_line_raises_during_iteration(self, tmp_path):
        from repro.graphs.io import open_edge_list_stream

        path = self._write(tmp_path, "4\n0 1\n0 1 2\n")
        _n, stream = open_edge_list_stream(path)
        with pytest.raises(ValueError):
            list(stream)

    def test_chunk_edges_validated(self, tmp_path):
        from repro.graphs.io import open_edge_list_stream

        path = self._write(tmp_path, "2\n0 1\n")
        with pytest.raises(ValueError):
            open_edge_list_stream(path, chunk_edges=0)
