"""NetworkX interop tests -- including the external-oracle cross-check."""

import numpy as np
import pytest
from hypothesis import given, settings

networkx = pytest.importorskip("networkx")

from repro.core.vectorized import connected_components_vectorized
from repro.graphs.components import canonical_labels
from repro.graphs.generators import from_edges, random_graph
from repro.graphs.interop import (
    from_networkx,
    networkx_canonical_labels,
    to_networkx,
)
from tests.conftest import adjacency_matrices


class TestConversions:
    def test_to_networkx(self):
        g = from_edges(4, [(0, 1), (2, 3)])
        nxg = to_networkx(g)
        assert nxg.number_of_nodes() == 4
        assert nxg.number_of_edges() == 2
        assert nxg.has_edge(0, 1)

    def test_roundtrip(self):
        g = random_graph(12, 0.3, seed=4)
        assert from_networkx(to_networkx(g)) == g

    def test_from_networkx_relabels(self):
        nxg = networkx.Graph()
        nxg.add_edge("b", "a")
        nxg.add_node("c")
        g = from_networkx(nxg)
        assert g.n == 3
        assert g.has_edge(0, 1)     # 'a'-'b'
        assert g.degree(2) == 0     # 'c'

    def test_from_networkx_drops_self_loops(self):
        nxg = networkx.Graph()
        nxg.add_edge(0, 0)
        nxg.add_edge(0, 1)
        g = from_networkx(nxg)
        assert g.edge_count == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            from_networkx(networkx.Graph())

    @given(adjacency_matrices(max_n=12))
    @settings(max_examples=25)
    def test_roundtrip_property(self, g):
        assert from_networkx(to_networkx(g)) == g


class TestExternalOracle:
    """networkx shares no code with this library's oracles -- agreement
    here independently validates the whole correctness chain."""

    def test_internal_oracle_agrees(self, corpus_graph):
        assert np.array_equal(
            networkx_canonical_labels(corpus_graph),
            canonical_labels(corpus_graph),
        )

    @given(adjacency_matrices(max_n=16))
    @settings(max_examples=40)
    def test_gca_agrees_with_networkx(self, g):
        assert np.array_equal(
            connected_components_vectorized(g),
            networkx_canonical_labels(g),
        )
