"""Unit tests for the sequential connected-components baselines.

The three oracles (union-find, BFS, DFS) must agree with each other on
every input -- this is what lets the rest of the suite trust any one of
them as ground truth.
"""

import numpy as np
import pytest
from hypothesis import given

from repro.graphs.components import (
    canonical_labels,
    components_bfs,
    components_dfs,
    components_union_find,
    count_components,
    is_canonical_labelling,
)
from repro.graphs.generators import (
    complete_graph,
    empty_graph,
    from_edges,
    path_graph,
    union_of_cliques,
)
from tests.conftest import adjacency_matrices


class TestKnownGraphs:
    def test_empty_graph(self):
        labels = canonical_labels(empty_graph(4))
        assert labels.tolist() == [0, 1, 2, 3]
        assert count_components(empty_graph(4)) == 4

    def test_complete_graph(self):
        assert canonical_labels(complete_graph(5)).tolist() == [0] * 5
        assert count_components(complete_graph(5)) == 1

    def test_path(self):
        assert canonical_labels(path_graph(6)).tolist() == [0] * 6

    def test_two_cliques(self):
        labels = canonical_labels(union_of_cliques([3, 2]))
        assert labels.tolist() == [0, 0, 0, 3, 3]

    def test_accepts_plain_arrays(self):
        m = np.array([[0, 1], [1, 0]])
        assert components_union_find(m).tolist() == [0, 0]

    def test_singleton(self):
        assert canonical_labels(empty_graph(1)).tolist() == [0]


class TestOracleAgreement:
    @given(adjacency_matrices(max_n=14))
    def test_three_oracles_agree(self, g):
        uf = components_union_find(g)
        bfs = components_bfs(g)
        dfs = components_dfs(g)
        assert np.array_equal(uf, bfs)
        assert np.array_equal(uf, dfs)

    @given(adjacency_matrices(max_n=14))
    def test_labels_are_component_minima(self, g):
        labels = canonical_labels(g)
        for i in range(g.n):
            # the label is <= i and is itself labelled with itself
            assert labels[i] <= i
            assert labels[labels[i]] == labels[i]

    @given(adjacency_matrices(max_n=12))
    def test_edges_connect_same_label(self, g):
        labels = canonical_labels(g)
        for i, j in g.edges():
            assert labels[i] == labels[j]


class TestIsCanonicalLabelling:
    def test_accepts_oracle(self):
        g = union_of_cliques([2, 3])
        assert is_canonical_labelling(g, canonical_labels(g))

    def test_rejects_wrong_shape(self):
        g = empty_graph(3)
        assert not is_canonical_labelling(g, np.zeros(2, dtype=np.int64))

    def test_rejects_wrong_labels(self):
        g = empty_graph(3)
        assert not is_canonical_labelling(g, np.zeros(3, dtype=np.int64))


class TestCountComponents:
    @pytest.mark.parametrize(
        "sizes,expected", [([5], 1), ([2, 2], 2), ([1, 1, 1], 3), ([4, 3, 2, 1], 4)]
    )
    def test_cliques(self, sizes, expected):
        assert count_components(union_of_cliques(sizes)) == expected

    def test_bridge_merges(self):
        g = from_edges(4, [(0, 1), (2, 3), (1, 2)])
        assert count_components(g) == 1


class TestScipyOracle:
    """scipy.sparse.csgraph as a second external oracle."""

    def test_agrees_on_corpus(self, corpus_graph):
        from repro.graphs.components import components_scipy

        assert np.array_equal(
            components_scipy(corpus_graph), canonical_labels(corpus_graph)
        )

    @given(adjacency_matrices(max_n=14))
    def test_agrees_on_random(self, g):
        from repro.graphs.components import components_scipy

        assert np.array_equal(components_scipy(g), canonical_labels(g))
