"""Stateful (model-based) hypothesis testing.

Two rule-based state machines drive long random operation sequences:

* :class:`UnionFindMachine` checks the union-find oracle against a naive
  set-of-frozensets model -- if the oracle itself were wrong, every other
  correctness result in the suite would be built on sand;
* :class:`IncrementalConnectivityMachine` grows a graph edge by edge and
  re-solves it with the vectorised GCA after every mutation, checking the
  full labelling against the naive model -- connectivity as a *dynamic*
  process, complementing the static random-graph properties.
"""

from typing import Dict, FrozenSet, Set

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.vectorized import connected_components_vectorized
from repro.graphs.adjacency import AdjacencyMatrix
from repro.graphs.union_find import UnionFind

MAX_N = 12


class _NaivePartition:
    """The obviously-correct model: a set of frozensets."""

    def __init__(self, n: int):
        self.sets: Set[FrozenSet[int]] = {frozenset([i]) for i in range(n)}

    def find_set(self, x: int) -> FrozenSet[int]:
        for s in self.sets:
            if x in s:
                return s
        raise AssertionError(f"element {x} lost from the partition")

    def union(self, a: int, b: int) -> None:
        sa, sb = self.find_set(a), self.find_set(b)
        if sa is sb:
            return
        self.sets.discard(sa)
        self.sets.discard(sb)
        self.sets.add(sa | sb)

    def labels(self, n: int):
        out = [0] * n
        for s in self.sets:
            m = min(s)
            for x in s:
                out[x] = m
        return out


class UnionFindMachine(RuleBasedStateMachine):
    """Union-find vs the naive partition model."""

    @initialize(n=st.integers(min_value=1, max_value=MAX_N))
    def setup(self, n):
        self.n = n
        self.uf = UnionFind(n)
        self.model = _NaivePartition(n)

    @rule(data=st.data())
    def union(self, data):
        a = data.draw(st.integers(0, self.n - 1), label="a")
        b = data.draw(st.integers(0, self.n - 1), label="b")
        expected_new = self.model.find_set(a) is not self.model.find_set(b)
        assert self.uf.union(a, b) == expected_new
        self.model.union(a, b)

    @rule(data=st.data())
    def connected_query(self, data):
        a = data.draw(st.integers(0, self.n - 1), label="a")
        b = data.draw(st.integers(0, self.n - 1), label="b")
        assert self.uf.connected(a, b) == (
            self.model.find_set(a) is self.model.find_set(b)
        )

    @invariant()
    def count_and_labels_agree(self):
        if not hasattr(self, "uf"):
            return
        assert self.uf.set_count == len(self.model.sets)
        assert self.uf.canonical_labels().tolist() == self.model.labels(self.n)


class IncrementalConnectivityMachine(RuleBasedStateMachine):
    """Grow a graph edge by edge; the GCA must track the model partition."""

    @initialize(n=st.integers(min_value=2, max_value=MAX_N))
    def setup(self, n):
        self.n = n
        self.matrix = np.zeros((n, n), dtype=np.int8)
        self.model = _NaivePartition(n)

    @rule(data=st.data())
    def add_edge(self, data):
        a = data.draw(st.integers(0, self.n - 1), label="a")
        b = data.draw(st.integers(0, self.n - 1), label="b")
        if a == b:
            return
        self.matrix[a, b] = self.matrix[b, a] = 1
        self.model.union(a, b)

    @invariant()
    def gca_matches_model(self):
        if not hasattr(self, "matrix"):
            return
        labels = connected_components_vectorized(AdjacencyMatrix(self.matrix))
        assert labels.tolist() == self.model.labels(self.n)


TestUnionFindStateful = UnionFindMachine.TestCase
TestUnionFindStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)

TestIncrementalConnectivity = IncrementalConnectivityMachine.TestCase
TestIncrementalConnectivity.settings = settings(
    max_examples=15, stateful_step_count=15, deadline=None
)
