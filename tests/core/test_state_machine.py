"""Unit tests for the Figure 2 state machine."""

import pytest

from repro.core.schedule import full_schedule
from repro.core.state_machine import HirschbergStateMachine


class TestDynamicWalk:
    def test_emits_static_schedule(self):
        """The dynamic controller must emit exactly the static schedule."""
        for n in (1, 2, 3, 4, 8, 9):
            sm = HirschbergStateMachine(n)
            dynamic = [s.label for s in sm]
            static = [s.label for s in full_schedule(n)]
            assert dynamic == static, f"n={n}"

    def test_generation_count(self):
        sm = HirschbergStateMachine(8)
        list(sm)
        assert sm.generations_executed == len(full_schedule(8))

    def test_done_lifecycle(self):
        sm = HirschbergStateMachine(2)
        assert not sm.done
        steps = 0
        while not sm.done:
            sm.advance()
            steps += 1
        assert steps == len(full_schedule(2))

    def test_advance_after_done_raises(self):
        sm = HirschbergStateMachine(1)
        sm.advance()  # gen0
        assert sm.done
        with pytest.raises(StopIteration):
            sm.advance()


class TestStateReporting:
    def test_initial_state(self):
        sm = HirschbergStateMachine(4)
        st = sm.state()
        assert st.generation_number == 0
        assert st.label == "gen0"
        assert not st.done

    def test_state_tracks_emission(self):
        sm = HirschbergStateMachine(4)
        sm.advance()                 # gen0
        sm.advance()                 # it0.gen1
        st = sm.state()
        assert st.iteration == 0
        assert st.generation_number == 1
        assert st.step == 2
        assert st.label == "it0.gen1"

    def test_sub_generation_label(self):
        sm = HirschbergStateMachine(4)
        labels = []
        for _ in range(5):           # gen0, gen1, gen2, gen3.sub0, gen3.sub1
            labels.append(sm.advance().label)
        assert labels[3] == "it0.gen3.sub0"
        assert sm.state().label == "it0.gen3.sub1"

    def test_done_state_label(self):
        sm = HirschbergStateMachine(1)
        sm.advance()
        assert sm.done


class TestConfiguration:
    def test_explicit_iterations(self):
        sm = HirschbergStateMachine(8, iterations=1)
        assert len(list(sm)) == len(full_schedule(8, iterations=1))

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            HirschbergStateMachine(0)
        with pytest.raises(ValueError):
            HirschbergStateMachine(4, iterations=-2)

    def test_counters_exposed(self):
        sm = HirschbergStateMachine(16)
        assert sm.subgens == 4
        assert sm.jumps == 4
        assert sm.iterations == 4
