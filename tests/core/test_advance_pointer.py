"""The paper's pointer-timing remark, verified.

"The pointer p can either be computed in the current generation, just
before the global data d* is accessed, or one generation in advance.  In
our algorithm the pointer is computed in the current generation."

The two schemes must be observationally equivalent for this algorithm:
the pointer computed at the *end* of generation g-1 (from the committed
field) addresses exactly the cell the current-generation computation
addresses at the *start* of generation g, because the field only changes
at commit boundaries.  These tests execute both schemes in lockstep and
assert target-for-target equality -- including for the data-dependent
generations 10/11, where the equivalence is the interesting part.
"""

import numpy as np
from hypothesis import given, settings

from repro.core.field import FieldLayout
from repro.core.schedule import full_schedule
from repro.core.vectorized import apply_generation, pointer_targets
from repro.graphs.generators import complete_graph, path_graph, random_graph
from tests.conftest import adjacency_matrices


def advance_vs_current(graph) -> None:
    n = graph.n
    layout = FieldLayout(n)
    A = graph.matrix.astype(np.int64)
    schedule = full_schedule(n)

    D = np.zeros((n + 1, n), dtype=np.int64)
    # "one generation in advance": precompute targets for generation g
    # from the field state after generation g-1 committed.
    advance_targets = [pointer_targets(schedule[0], D, layout)]
    current_targets = []
    for g, sched in enumerate(schedule):
        # current-generation computation (the paper's choice)
        current_targets.append(pointer_targets(sched, D, layout))
        D = apply_generation(sched, D, A, layout)
        if g + 1 < len(schedule):
            # advance computation for the NEXT generation, post-commit
            advance_targets.append(pointer_targets(schedule[g + 1], D, layout))

    assert len(advance_targets) == len(current_targets)
    for g, (adv, cur) in enumerate(zip(advance_targets, current_targets)):
        if adv is None or cur is None:
            assert adv is None and cur is None
            continue
        assert np.array_equal(adv, cur), (
            f"pointer-timing schemes diverged at generation index {g} "
            f"({schedule[g].label})"
        )


class TestPointerTimingEquivalence:
    def test_path(self):
        advance_vs_current(path_graph(6))

    def test_complete(self):
        advance_vs_current(complete_graph(4))

    def test_random(self):
        for seed in range(3):
            advance_vs_current(random_graph(6, 0.4, seed=seed))

    @given(adjacency_matrices(min_n=2, max_n=8))
    @settings(max_examples=15, deadline=None)
    def test_property(self, g):
        advance_vs_current(g)
