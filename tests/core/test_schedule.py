"""Unit tests for the generation schedule and Table 2 closed forms."""

import pytest

from repro.core.schedule import (
    STEP_OF_GENERATION,
    full_schedule,
    generations_per_iteration,
    generations_per_step,
    iteration_generations,
    total_generations,
)
from repro.util.intmath import ceil_log2, outer_iterations


class TestStepMapping:
    def test_every_generation_mapped(self):
        assert sorted(STEP_OF_GENERATION) == list(range(12))

    def test_paper_assignment(self):
        assert STEP_OF_GENERATION[0] == 1
        assert all(STEP_OF_GENERATION[g] == 2 for g in (1, 2, 3, 4))
        assert all(STEP_OF_GENERATION[g] == 3 for g in (5, 6, 7, 8))
        assert STEP_OF_GENERATION[9] == 4
        assert STEP_OF_GENERATION[10] == 5
        assert STEP_OF_GENERATION[11] == 6


class TestIterationGenerations:
    def test_numbered_sequence(self):
        gens = iteration_generations(8, 0)
        numbers = [g.number for g in gens]
        log = 3
        expected = (
            [1, 2] + [3] * log + [4, 5, 6] + [7] * log + [8, 9] + [10] * log + [11]
        )
        assert numbers == expected

    def test_sub_generation_indices(self):
        gens = iteration_generations(8, 1)
        subs3 = [g.sub_generation for g in gens if g.number == 3]
        assert subs3 == [0, 1, 2]

    def test_labels(self):
        gens = iteration_generations(4, 2)
        labels = [g.label for g in gens]
        assert labels[0] == "it2.gen1"
        assert "it2.gen3.sub0" in labels
        assert labels[-1] == "it2.gen11"

    def test_steps_attached(self):
        for g in iteration_generations(4, 0):
            assert g.step == STEP_OF_GENERATION[g.number]


class TestFullSchedule:
    def test_starts_with_gen0(self):
        sched = full_schedule(8)
        assert sched[0].number == 0
        assert sched[0].label == "gen0"

    def test_length_matches_formula(self):
        for n in (2, 3, 4, 5, 8, 16, 33):
            assert len(full_schedule(n)) == total_generations(n)

    def test_explicit_iterations(self):
        assert len(full_schedule(8, iterations=1)) == 1 + generations_per_iteration(8)

    def test_zero_iterations(self):
        sched = full_schedule(8, iterations=0)
        assert len(sched) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            full_schedule(8, iterations=-1)

    def test_n1_is_init_only(self):
        assert [g.number for g in full_schedule(1)] == [0]


class TestClosedForms:
    def test_table2_at_8(self):
        per = generations_per_step(8)
        assert per == {1: 1, 2: 6, 3: 6, 4: 1, 5: 3, 6: 1}

    def test_table2_formula_shape(self):
        for n in (2, 4, 16, 64):
            log = ceil_log2(n)
            per = generations_per_step(n)
            assert per[2] == per[3] == 3 + log
            assert per[5] == log
            assert per[1] == per[4] == per[6] == 1

    def test_per_iteration_is_3log_plus_8(self):
        for n in (2, 4, 8, 16, 32, 64, 128):
            assert generations_per_iteration(n) == 3 * ceil_log2(n) + 8

    def test_total_formula(self):
        """total = 1 + log(n) * (3 log(n) + 8), the paper's bound."""
        for n in (2, 4, 8, 16, 32, 256):
            log = ceil_log2(n)
            assert total_generations(n) == 1 + log * (3 * log + 8)

    def test_total_uses_outer_iterations_for_non_powers(self):
        for n in (3, 5, 9, 33):
            iters = outer_iterations(n)
            assert total_generations(n) == 1 + iters * generations_per_iteration(n)
