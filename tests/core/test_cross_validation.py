"""Cross-validation: interpreter and vectorised engines must agree on the
entire field (D matrix) after *every* generation, not just on the final
labels.  This is the strongest internal consistency check in the suite --
a divergence in any generation's semantics is caught at the exact
generation where it happens.
"""

import numpy as np
from hypothesis import given, settings

from repro.core.machine import GCAConnectedComponents
from repro.core.schedule import full_schedule
from repro.core.vectorized import apply_generation
from repro.graphs.components import canonical_labels
from repro.graphs.generators import (
    complete_graph,
    from_edges,
    path_graph,
    random_graph,
    worst_case_pairing,
)
from repro.core.field import FieldLayout
from tests.conftest import adjacency_matrices


def fields_agree_on(graph) -> None:
    """Step the interpreter and the vectorised semantics in lockstep."""
    n = graph.n
    layout = FieldLayout(n)
    A = graph.matrix.astype(np.int64)
    machine = GCAConnectedComponents(graph)
    D = np.zeros((n + 1, n), dtype=np.int64)
    for sched in full_schedule(n):
        machine.step_generation()
        D = apply_generation(sched, D, A, layout)
        assert np.array_equal(machine.D, D), (
            f"divergence at {sched.label} for graph with edges "
            f"{graph.edge_list()}:\ninterpreter:\n{machine.D}\n"
            f"vectorised:\n{D}"
        )


class TestLockstepAgreement:
    def test_k2(self):
        fields_agree_on(from_edges(2, [(0, 1)]))

    def test_path(self):
        fields_agree_on(path_graph(5))

    def test_complete(self):
        fields_agree_on(complete_graph(4))

    def test_pairing(self):
        fields_agree_on(worst_case_pairing(6))

    def test_disconnected(self):
        fields_agree_on(from_edges(5, [(1, 3)]))

    def test_random_instances(self):
        for seed in range(5):
            fields_agree_on(random_graph(6, 0.4, seed=seed))

    @given(adjacency_matrices(min_n=2, max_n=6))
    @settings(max_examples=15, deadline=None)
    def test_random_property(self, g):
        fields_agree_on(g)


class TestAllEnginesAgree:
    @given(adjacency_matrices(max_n=10))
    @settings(max_examples=20, deadline=None)
    def test_four_engines_and_oracle(self, g):
        from repro.core.api import gca_connected_components

        oracle = canonical_labels(g)
        for method in ("vectorized", "interpreter", "reference", "pram"):
            got = gca_connected_components(g, method=method).labels
            assert np.array_equal(got, oracle), method
