"""Tests for the batched engine (`repro.core.batched`)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batched import (
    BatchedGCA,
    BatchedResult,
    connected_components_batch,
)
from repro.core.machine import connected_components_interpreter
from repro.core.schedule import generations_per_iteration, total_generations
from repro.core.vectorized import run_vectorized
from repro.graphs.components import canonical_labels
from repro.graphs.generators import (
    complete_graph,
    empty_graph,
    path_graph,
    random_graph,
)
from repro.util.intmath import outer_iterations
from tests.conftest import CORPUS, adjacency_matrices


class TestCorrectness:
    def test_corpus_as_one_size_buckets(self):
        """Every corpus graph, routed through the mixed-size front-end."""
        graphs = [CORPUS[k] for k in sorted(CORPUS)]
        labels = connected_components_batch(graphs)
        assert len(labels) == len(graphs)
        for g, got in zip(graphs, labels):
            assert np.array_equal(got, canonical_labels(g))

    @pytest.mark.parametrize("early_exit", [False, True])
    def test_same_size_batch(self, early_exit):
        graphs = [random_graph(12, p, seed=s)
                  for p in (0.05, 0.2, 0.6) for s in (0, 1)]
        res = BatchedGCA(graphs, early_exit=early_exit).run()
        for slot, g in enumerate(graphs):
            assert np.array_equal(res.labels[slot], canonical_labels(g))

    @given(
        st.lists(adjacency_matrices(min_n=2, max_n=32), min_size=1, max_size=6),
        st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_mixed_sizes_vs_oracle(self, graphs, early_exit):
        """Randomized graphs (sizes 2-32, mixed densities): batched labels
        must be bit-identical to the union-find oracle."""
        labels = connected_components_batch(graphs, early_exit=early_exit)
        for g, got in zip(graphs, labels):
            assert np.array_equal(got, canonical_labels(g))

    @given(adjacency_matrices(min_n=2, max_n=10))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_interpreter(self, g):
        """Batched labels equal the cell-accurate interpreter's labels."""
        slow = connected_components_interpreter(g)
        res = BatchedGCA([g, g]).run()
        assert np.array_equal(res.labels[0], slow.labels)
        assert np.array_equal(res.labels[1], slow.labels)


class TestConvergenceAccounting:
    def test_matches_single_engine_early_exit(self):
        graphs = [random_graph(16, p, seed=s)
                  for p in (0.05, 0.3) for s in range(3)]
        res = BatchedGCA(graphs).run()
        for slot, g in enumerate(graphs):
            single = run_vectorized(g, early_exit=True)
            if single.converged_at_iteration is None:
                assert res.converged_at_iteration[slot] == -1
            else:
                assert (res.converged_at_iteration[slot]
                        == single.converged_at_iteration)
            assert res.iterations_run[slot] == single.iterations
            assert res.generations_run()[slot] == single.total_generations

    def test_no_early_exit_runs_full_schedule(self):
        n = 16
        res = BatchedGCA([path_graph(n), empty_graph(n)],
                         early_exit=False).run()
        assert np.all(res.converged_at_iteration == -1)
        assert np.all(res.iterations_run == outer_iterations(n))
        assert np.all(res.generations_run() == total_generations(n))

    def test_empty_graph_retires_first(self):
        """An edgeless graph hits its fixed point in the first iteration."""
        res = BatchedGCA([empty_graph(8), path_graph(8)]).run()
        assert res.converged_at_iteration[0] == 0
        assert res.iterations_run[0] == 1
        assert res.converged_at_iteration[1] > 0

    def test_generations_run_formula(self):
        res = BatchedGCA([complete_graph(8)]).run()
        expected = 1 + res.iterations_run * generations_per_iteration(8)
        assert np.array_equal(res.generations_run(), expected)

    def test_iterations_override(self):
        res = BatchedGCA([path_graph(8)], iterations=0,
                         early_exit=False).run()
        assert res.labels[0].tolist() == list(range(8))


class TestResultShape:
    def test_fields(self):
        graphs = [random_graph(8, 0.3, seed=s) for s in range(3)]
        res = BatchedGCA(graphs).run()
        assert isinstance(res, BatchedResult)
        assert res.n == 8
        assert res.batch_size == 3
        assert res.labels.shape == (3, 8)
        assert res.labels.dtype == np.int64
        assert res.iterations_run.shape == (3,)
        assert res.converged_at_iteration.shape == (3,)

    def test_component_counts(self):
        res = BatchedGCA([empty_graph(6), complete_graph(6)]).run()
        assert res.component_counts.tolist() == [6, 1]

    def test_batch_order_preserved(self):
        """Retirement compaction must not permute output slots."""
        graphs = [empty_graph(10), path_graph(10), complete_graph(10),
                  random_graph(10, 0.15, seed=4)]
        res = BatchedGCA(graphs).run()
        for slot, g in enumerate(graphs):
            assert np.array_equal(res.labels[slot], canonical_labels(g))


class TestValidation:
    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="at least one graph"):
            BatchedGCA([])

    def test_mixed_sizes_rejected(self):
        with pytest.raises(ValueError, match="connected_components_batch"):
            BatchedGCA([path_graph(4), path_graph(5)])

    def test_batch_front_end_accepts_mixed_sizes(self):
        labels = connected_components_batch([path_graph(4), path_graph(5)])
        assert [len(l) for l in labels] == [4, 5]

    def test_batch_front_end_empty(self):
        assert connected_components_batch([]) == []


class TestDtypeSelection:
    def test_int32_for_small_n(self):
        eng = BatchedGCA([path_graph(8)])
        assert eng._dtype == np.int32

    def test_labels_always_int64(self):
        res = BatchedGCA([path_graph(8)]).run()
        assert res.labels.dtype == np.int64


class TestDegenerateInputs:
    """Zero-node graphs through the batched engine and the front door.

    Regression tests: ``BatchedGCA`` used to crash building the stacked
    field for ``n == 0``, and ``connected_components`` dispatched an
    engine for the empty graph instead of short-circuiting.
    """

    def test_batched_zero_node_graphs(self):
        res = BatchedGCA([np.zeros((0, 0), dtype=np.int8)] * 3).run()
        assert res.labels.shape == (3, 0)
        assert np.array_equal(res.generations_run(), np.zeros(3))
        assert np.array_equal(res.iterations_run, np.zeros(3))

    def test_batch_front_end_zero_node_graphs(self):
        labels = connected_components_batch(
            [np.zeros((0, 0), dtype=np.int8)] * 2
        )
        assert [vec.shape for vec in labels] == [(0,), (0,)]

    def test_connected_components_empty_graph(self):
        from repro.core.api import connected_components

        result = connected_components(np.zeros((0, 0), dtype=np.int8))
        assert result.labels.shape == (0,)
        assert result.component_count == 0

    @pytest.mark.parametrize(
        "engine", ["vectorized", "interpreter", "edgelist", "contracting"]
    )
    def test_connected_components_empty_graph_any_engine(self, engine):
        from repro.core.api import connected_components

        result = connected_components(
            np.zeros((0, 0), dtype=np.int8), engine=engine
        )
        assert result.labels.shape == (0,)
        assert result.method == engine

    def test_single_vertex_graph(self):
        from repro.core.api import connected_components

        result = connected_components(np.zeros((1, 1), dtype=np.int8))
        assert np.array_equal(result.labels, [0])
