"""Tests for the lockstep validator, including failure injection.

The validator is only trustworthy if it *detects* divergence, so these
tests corrupt the field mid-run in several ways and assert the monitors
fire -- and fire at the right place.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.verification import (
    LockstepValidator,
    LockstepViolation,
    validated_connected_components,
)
from repro.graphs.components import canonical_labels
from repro.graphs.generators import complete_graph, path_graph, random_graph
from tests.conftest import adjacency_matrices


class TestCleanRuns:
    def test_corpus(self, corpus_graph):
        labels = validated_connected_components(corpus_graph)
        assert np.array_equal(labels, canonical_labels(corpus_graph))

    @given(adjacency_matrices(max_n=12))
    @settings(max_examples=25)
    def test_random(self, g):
        report = LockstepValidator(g, strict=False).run()
        assert report.ok, report.failures()

    def test_report_structure(self):
        report = LockstepValidator(path_graph(4), strict=False).run()
        assert report.ok
        labels_checked = [c for c in report.checks if c.label.endswith("gen11")]
        assert len(labels_checked) >= 2  # one per iteration
        assert report.checks[-1].label == "final"


class TestFailureInjection:
    def test_corrupted_label_detected(self):
        """Flipping a C entry after an iteration boundary must be caught
        at the next boundary."""
        def corrupt(D):
            D[0, 0] = D[0, 0] + 1 if D[0, 0] + 1 < D.shape[1] else 0

        validator = LockstepValidator(complete_graph(8), strict=True)
        validator.inject("it0.gen11", corrupt)
        with pytest.raises(LockstepViolation):
            validator.run()

    def test_out_of_range_value_detected_immediately(self):
        def corrupt(D):
            D[2, 1] = 10**9

        validator = LockstepValidator(path_graph(8), strict=True)
        validator.inject("it0.gen5", corrupt)
        with pytest.raises(LockstepViolation, match="out of range"):
            validator.run()

    def test_corrupted_t_detected_at_gen4(self):
        def corrupt(D):
            D[1, 0] = 7  # falsify the step-2 minimum (true value is 0)

        validator = LockstepValidator(path_graph(8), strict=True)
        validator.inject("it0.gen3.sub2", corrupt)
        with pytest.raises(LockstepViolation, match="step-2 T"):
            validator.run()

    def test_nonstrict_records_failures(self):
        def corrupt(D):
            D[0, 0] = 1

        validator = LockstepValidator(complete_graph(4), strict=False)
        validator.inject("it0.gen11", corrupt)
        report = validator.run()
        assert not report.ok
        assert report.failures()

    def test_benign_corruption_of_dead_cells_passes(self):
        """Corrupting a cell whose value is overwritten before being read
        again must NOT trip the validator -- the monitors check semantics,
        not bit-identity of scratch space."""
        def corrupt(D):
            D[2, 3] = 0  # interior cell, rewritten by the next broadcast

        validator = LockstepValidator(path_graph(4), strict=True)
        validator.inject("it0.gen11", corrupt)  # before next gen1 broadcast
        report = validator.run()
        assert report.ok


class TestInjectionPlumbing:
    def test_inject_returns_self(self):
        v = LockstepValidator(path_graph(2))
        assert v.inject("gen0", lambda D: None) is v

    def test_unknown_label_never_fires(self):
        fired = []
        v = LockstepValidator(path_graph(2), strict=False)
        v.inject("no.such.generation", lambda D: fired.append(1))
        v.run()
        assert not fired
