"""Tests for the cell-accurate interpreter (GCAConnectedComponents)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.machine import (
    GCAConnectedComponents,
    connected_components_interpreter,
)
from repro.core.schedule import total_generations
from repro.graphs.components import canonical_labels
from repro.graphs.generators import from_edges, path_graph, random_graph
from tests.conftest import adjacency_matrices


class TestCorrectness:
    def test_corpus(self, corpus_graph):
        res = connected_components_interpreter(corpus_graph)
        assert np.array_equal(res.labels, canonical_labels(corpus_graph))

    @given(adjacency_matrices(max_n=8))
    @settings(max_examples=15, deadline=None)
    def test_random(self, g):
        res = connected_components_interpreter(g)
        assert np.array_equal(res.labels, canonical_labels(g))


class TestInstrumentation:
    def test_generation_count_matches_formula(self):
        for n in (2, 4, 5, 8):
            g = random_graph(n, 0.4, seed=n)
            res = connected_components_interpreter(g)
            assert res.total_generations == total_generations(n)
            assert res.access_log.total_generations == total_generations(n)

    def test_one_handed_throughout(self):
        """Every generation issues at most one read per active cell."""
        g = random_graph(6, 0.5, seed=1)
        res = connected_components_interpreter(g)
        for stats in res.access_log:
            assert stats.total_reads <= 6 * 7  # never more than one per cell

    def test_gen0_reads_nothing(self):
        g = path_graph(4)
        res = connected_components_interpreter(g)
        gen0 = res.access_log.by_label("gen0")[0]
        assert gen0.total_reads == 0
        assert gen0.active_cells == 20

    def test_gen1_congestion(self):
        """Generation 1: first-column cells are read by n+1 readers each."""
        n = 4
        res = connected_components_interpreter(path_graph(n))
        gen1 = res.access_log.by_label("it0.gen1")[0]
        assert gen1.congestion_histogram() == [(n, n + 1)]

    def test_reduction_congestion_is_one(self):
        n = 8
        res = connected_components_interpreter(path_graph(n))
        for stats in res.access_log.by_label("it0.gen3"):
            assert stats.max_congestion == 1


class TestMachineObject:
    def test_stepwise_execution(self):
        m = GCAConnectedComponents(path_graph(4))
        first = m.step_generation()
        assert first.label == "gen0"
        assert m.D[:4, 0].tolist() == [0, 1, 2, 3]

    def test_labels_property_after_run(self):
        m = GCAConnectedComponents(from_edges(3, [(0, 2)]))
        m.run()
        assert m.labels.tolist() == [0, 1, 0]

    def test_run_callback(self):
        seen = []
        m = GCAConnectedComponents(path_graph(2))
        m.run(on_generation=lambda label, machine: seen.append(label))
        assert seen[0] == "gen0"
        assert len(seen) == total_generations(2)

    def test_field_synced_after_run(self):
        m = GCAConnectedComponents(path_graph(4))
        m.run()
        assert np.array_equal(m.field.D, m.D)

    def test_iterations_override(self):
        res = connected_components_interpreter(path_graph(8), iterations=1)
        assert res.iterations == 1
        assert res.total_generations == total_generations(8, iterations=1)

    def test_d_p_shapes(self):
        m = GCAConnectedComponents(path_graph(3))
        assert m.D.shape == (4, 3)
        assert m.P.shape == (4, 3)

    def test_n1(self):
        res = connected_components_interpreter(from_edges(1, []))
        assert res.labels.tolist() == [0]
        assert res.total_generations == 1
