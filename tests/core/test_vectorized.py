"""Tests for the vectorised engine, including per-generation semantics."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.field import FieldLayout
from repro.core.schedule import full_schedule, total_generations
from repro.core.vectorized import (
    active_mask,
    apply_generation,
    connected_components_vectorized,
    pointer_targets,
    run_vectorized,
)
from repro.graphs.components import canonical_labels
from repro.graphs.generators import empty_graph, path_graph, random_graph
from tests.conftest import adjacency_matrices


class TestCorrectness:
    def test_corpus(self, corpus_graph):
        got = connected_components_vectorized(corpus_graph)
        assert np.array_equal(got, canonical_labels(corpus_graph))

    @given(adjacency_matrices(max_n=20))
    @settings(max_examples=60)
    def test_random(self, g):
        got = connected_components_vectorized(g)
        assert np.array_equal(got, canonical_labels(g))

    def test_larger_instance(self):
        g = random_graph(96, 0.03, seed=5)
        assert np.array_equal(
            connected_components_vectorized(g), canonical_labels(g)
        )


class TestActiveMasks:
    def setup_method(self):
        self.n = 4
        self.layout = FieldLayout(self.n)
        self.sched = {s.label: s for s in full_schedule(self.n, iterations=1)}

    def counts(self, label):
        return int(active_mask(self.sched[label], self.layout).sum())

    def test_paper_active_counts(self):
        n = self.n
        assert self.counts("gen0") == n * (n + 1)
        assert self.counts("it0.gen1") == n * (n + 1)
        assert self.counts("it0.gen2") == n * n
        assert self.counts("it0.gen3.sub0") == n * n // 2
        assert self.counts("it0.gen4") == n
        assert self.counts("it0.gen5") == n * (n + 1)
        assert self.counts("it0.gen6") == n * n
        assert self.counts("it0.gen9") == n * (n + 1)
        assert self.counts("it0.gen10.sub0") == n
        assert self.counts("it0.gen11") == n

    def test_reduction_mask_shrinks(self):
        sub0 = self.counts("it0.gen3.sub0")
        sub1 = self.counts("it0.gen3.sub1")
        assert sub1 < sub0


class TestPointerTargets:
    def test_gen0_has_none(self):
        layout = FieldLayout(4)
        sched = full_schedule(4, iterations=1)[0]
        D = np.zeros((5, 4), dtype=np.int64)
        assert pointer_targets(sched, D, layout) is None

    def test_targets_in_range_every_generation(self):
        n = 4
        layout = FieldLayout(n)
        g = random_graph(n, 0.5, seed=2)
        A = g.matrix.astype(np.int64)
        D = np.zeros((n + 1, n), dtype=np.int64)
        for sched in full_schedule(n):
            t = pointer_targets(sched, D, layout)
            if t is not None:
                assert t.min() >= 0 and t.max() < layout.size
            D = apply_generation(sched, D, A, layout)

    def test_data_dependent_targets(self):
        n = 4
        layout = FieldLayout(n)
        sched = [s for s in full_schedule(n) if s.number == 10][0]
        D = np.zeros((n + 1, n), dtype=np.int64)
        D[:n, 0] = [2, 0, 1, 3]
        t = pointer_targets(sched, D, layout)
        assert t.tolist() == [8, 0, 4, 12]


class TestRunner:
    def test_total_generations(self):
        for n in (2, 5, 8):
            res = run_vectorized(random_graph(n, 0.3, seed=n))
            assert res.total_generations == total_generations(n)

    def test_snapshots(self):
        res = run_vectorized(path_graph(4), keep_snapshots=True)
        assert len(res.snapshots) == res.total_generations
        assert res.snapshots[0][:4, 0].tolist() == [0, 1, 2, 3]

    def test_callback(self):
        labels = []
        run_vectorized(path_graph(2), on_generation=lambda s, D: labels.append(s.label))
        assert labels[0] == "gen0"

    def test_access_log_optional(self):
        res = run_vectorized(path_graph(4))
        assert res.access_log is None
        res2 = run_vectorized(path_graph(4), record_access=True)
        assert res2.access_log is not None
        assert res2.access_log.total_generations == res2.total_generations

    def test_component_count(self):
        res = run_vectorized(path_graph(4))
        assert res.component_count == 1

    def test_iterations_override(self):
        res = run_vectorized(path_graph(8), iterations=0)
        assert res.labels.tolist() == list(range(8))


class TestEarlyExit:
    @given(adjacency_matrices(min_n=2, max_n=20))
    @settings(max_examples=50, deadline=None)
    def test_labels_identical_to_full_run(self, g):
        """Early exit stops at a fixed point, so the labels must be
        bit-identical to the full schedule's."""
        full = run_vectorized(g)
        early = run_vectorized(g, early_exit=True)
        assert np.array_equal(early.labels, full.labels)

    def test_full_schedule_counts_unchanged(self):
        """Regression (Table 2 invariant): with ``early_exit=False`` the
        engine must execute exactly the closed-form generation count."""
        for n in (2, 3, 5, 8, 16, 33):
            g = random_graph(n, 0.3, seed=n)
            res = run_vectorized(g, early_exit=False)
            assert res.total_generations == total_generations(n)
            assert res.converged_at_iteration is None

    def test_converged_at_semantics(self):
        """converged_at_iteration is the 0-based outer iteration whose
        label column matched the previous one; counts reflect executed
        work only."""
        from repro.core.schedule import generations_per_iteration

        g = empty_graph(16)  # fixed point after the first iteration
        res = run_vectorized(g, early_exit=True)
        assert res.converged_at_iteration == 0
        assert res.iterations == 1
        assert res.total_generations == 1 + generations_per_iteration(16)
        assert np.array_equal(res.labels, np.arange(16))

    def test_early_exit_can_skip_iterations(self):
        g = random_graph(64, 0.1, seed=7)
        full = run_vectorized(g)
        early = run_vectorized(g, early_exit=True)
        assert early.total_generations < full.total_generations
        assert early.converged_at_iteration is not None

    def test_no_convergence_before_schedule_end(self):
        """A worst-case chain that needs every iteration reports no early
        convergence marker."""
        g = path_graph(8)
        res = run_vectorized(g, early_exit=True)
        full = run_vectorized(g)
        assert np.array_equal(res.labels, full.labels)
        if res.converged_at_iteration is None:
            assert res.total_generations == full.total_generations


class TestCallbackViews:
    def test_callback_view_is_read_only(self):
        def cb(sched, D):
            with pytest.raises((ValueError, RuntimeError)):
                D[0, 0] = 99

        run_vectorized(path_graph(4), on_generation=cb)

    def test_snapshot_view_is_read_only_but_stored_copy_writable(self):
        res = run_vectorized(
            path_graph(4),
            keep_snapshots=True,
            on_generation=lambda s, D: pytest.raises(
                (ValueError, RuntimeError), D.__setitem__, (0, 0), 99
            ),
        )
        # the archived snapshots themselves stay writable copies
        assert all(s.flags.writeable for s in res.snapshots)

    def test_snapshots_are_distinct_copies(self):
        res = run_vectorized(path_graph(4), keep_snapshots=True)
        assert res.snapshots[0] is not res.snapshots[1]
        assert not np.array_equal(res.snapshots[0], res.snapshots[-1])


class TestAccessLogEquivalence:
    def test_matches_interpreter_log(self):
        """The vectorised access accounting must equal the interpreter's."""
        from repro.core.machine import connected_components_interpreter

        g = random_graph(5, 0.4, seed=9)
        slow = connected_components_interpreter(g)
        fast = run_vectorized(g, record_access=True)
        assert len(slow.access_log) == len(fast.access_log)
        for s, f in zip(slow.access_log, fast.access_log):
            assert s.label == f.label
            assert s.active_cells == f.active_cells, s.label
            assert s.reads_per_cell == f.reads_per_cell, s.label
