"""Tests for the top-level public API."""

import numpy as np
import pytest

import repro
from repro.core.api import ComponentsResult, gca_connected_components
from repro.graphs.generators import from_edges, union_of_cliques


class TestGcaConnectedComponents:
    def test_default_method(self):
        res = gca_connected_components(union_of_cliques([2, 3]))
        assert res.method == "vectorized"
        assert res.labels.tolist() == [0, 0, 2, 2, 2]

    def test_accepts_plain_array(self):
        m = np.array([[0, 1], [1, 0]])
        res = gca_connected_components(m)
        assert res.labels.tolist() == [0, 0]

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="method"):
            gca_connected_components(union_of_cliques([2]), method="quantum")

    @pytest.mark.parametrize("method", ["vectorized", "interpreter", "reference", "pram"])
    def test_detail_objects(self, method):
        res = gca_connected_components(union_of_cliques([2, 2]), method=method)
        assert res.method == method
        assert res.detail is not None

    def test_iterations_forwarded(self):
        res = gca_connected_components(
            union_of_cliques([4, 4]), method="vectorized", iterations=0
        )
        assert res.labels.tolist() == list(range(8))


class TestComponentsResult:
    def make(self) -> ComponentsResult:
        return gca_connected_components(from_edges(5, [(0, 4), (1, 2)]))

    def test_counts(self):
        res = self.make()
        assert res.n == 5
        assert res.component_count == 3

    def test_components_sorted(self):
        assert self.make().components() == [[0, 4], [1, 2], [3]]

    def test_same_component(self):
        res = self.make()
        assert res.same_component(0, 4)
        assert not res.same_component(0, 1)


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_reexports(self):
        assert callable(repro.gca_connected_components)
        assert callable(repro.random_graph)
        assert callable(repro.canonical_labels)
        assert callable(repro.hirschberg_reference)

    def test_all_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name
