"""Tests for the trace recorder and Figure 3 access patterns."""

import numpy as np

from repro.core.field import FieldLayout
from repro.core.schedule import full_schedule
from repro.core.trace import (
    TraceRecorder,
    access_pattern,
    figure3_patterns,
)
from repro.graphs.generators import from_edges, path_graph


class TestFigure3Patterns:
    """Pin the n = 4 access patterns the paper's Figure 3 depicts."""

    def setup_method(self):
        self.patterns = figure3_patterns(4)

    def test_all_panels_present(self):
        assert "gen0" in self.patterns
        assert "gen1" in self.patterns
        assert "gen3.sub0" in self.patterns
        assert "gen11" in self.patterns

    def test_gen1_pattern(self):
        """Gen 1: every cell of column i reads cell <i>[0] (indices 0,4,8,12)."""
        p = self.patterns["gen1"]
        assert p.active_count == 20
        for col, head in enumerate([0, 4, 8, 12]):
            assert (p.targets[:, col] == head).all()
            assert p.reads_of(head) == 5  # n+1 readers per head

    def test_gen2_pattern(self):
        """Gen 2: row j of the square reads D_N[j] (indices 16..19)."""
        p = self.patterns["gen2"]
        assert p.active_count == 16
        for row in range(4):
            assert (p.targets[row, :] == 16 + row).all()
        assert (p.targets[4, :] == -1).all()  # last row passive

    def test_gen3_tree_reduction_pattern(self):
        p0 = self.patterns["gen3.sub0"]
        # active columns 0 and 2; each reads its right neighbour
        assert p0.targets[0, 0] == 1 and p0.targets[0, 2] == 3
        assert p0.targets[0, 1] == -1
        p1 = self.patterns["gen3.sub1"]
        assert p1.targets[0, 0] == 2
        assert p1.targets[0, 2] == -1

    def test_gen9_pattern(self):
        p = self.patterns["gen9"]
        # square rows read their own row head; last row reads column heads
        assert (p.targets[2, :] == 8).all()
        assert p.targets[4, 0] == 0 and p.targets[4, 3] == 12

    def test_gen10_identity_field(self):
        # on the identity labelling C(j) = j the jump reads row j itself
        p = self.patterns["gen10.sub0"]
        assert [p.targets[j, 0] for j in range(4)] == [0, 4, 8, 12]

    def test_gen0_active_no_read(self):
        p = self.patterns["gen0"]
        assert p.active_count == 20
        assert (p.targets == -1).all()

    def test_render_shapes(self):
        text = self.patterns["gen1"].render()
        assert len(text.splitlines()) == 5  # n+1 rows


class TestAccessPattern:
    def test_reads_of(self):
        layout = FieldLayout(4)
        sched = full_schedule(4, iterations=1)[1]  # gen1
        D = np.zeros((5, 4), dtype=np.int64)
        p = access_pattern(sched, D, layout)
        assert p.reads_of(0) == 5
        assert p.reads_of(1) == 0


class TestTraceRecorder:
    def test_full_run(self):
        g = from_edges(4, [(0, 1), (1, 3)])
        rec = TraceRecorder(g)
        snaps = rec.run()
        assert len(snaps) == len(full_schedule(4))
        assert rec.labels.tolist() == [0, 0, 2, 0]

    def test_snapshots_chain(self):
        rec = TraceRecorder(path_graph(4))
        snaps = rec.run()
        for a, b in zip(snaps, snaps[1:]):
            assert np.array_equal(a.D_after, b.D_before)

    def test_gen0_snapshot(self):
        rec = TraceRecorder(path_graph(4))
        snaps = rec.run()
        assert snaps[0].label == "gen0"
        assert snaps[0].D_after[:, 0].tolist() == [0, 1, 2, 3, 4]

    def test_render_smoke(self):
        rec = TraceRecorder(from_edges(2, [(0, 1)]))
        text = rec.render()
        assert "gen0" in text
        assert "final labels: [0, 0]" in text

    def test_render_triggers_run(self):
        rec = TraceRecorder(path_graph(2))
        assert rec.snapshots == []
        rec.render()
        assert rec.snapshots  # run() invoked lazily

    def test_iterations_override(self):
        rec = TraceRecorder(path_graph(8), iterations=1)
        snaps = rec.run()
        assert len(snaps) == len(full_schedule(8, iterations=1))
