"""Unit tests for the cell-field layout."""

import numpy as np
import pytest

from repro.core.field import CellField, FieldLayout
from repro.graphs.generators import from_edges, random_graph


class TestFieldLayout:
    def test_shape_constants(self):
        lay = FieldLayout(4)
        assert lay.rows == 5
        assert lay.cols == 4
        assert lay.size == 20
        assert lay.square_size == 16
        assert lay.last_row_start == 16
        assert lay.infinity == 20

    def test_row_col(self):
        lay = FieldLayout(4)
        assert lay.row(0) == 0 and lay.col(0) == 0
        assert lay.row(7) == 1 and lay.col(7) == 3
        assert lay.row(16) == 4 and lay.col(16) == 0

    def test_index_roundtrip(self):
        lay = FieldLayout(5)
        for idx in range(lay.size):
            assert lay.index(lay.row(idx), lay.col(idx)) == idx
            assert lay.coordinates(idx) == (lay.row(idx), lay.col(idx))

    def test_range_checks(self):
        lay = FieldLayout(4)
        with pytest.raises(IndexError):
            lay.row(20)
        with pytest.raises(IndexError):
            lay.index(5, 0)
        with pytest.raises(IndexError):
            lay.index(0, 4)

    def test_predicates(self):
        lay = FieldLayout(3)
        assert lay.is_last_row(9) and lay.is_last_row(11)
        assert not lay.is_last_row(8)
        assert lay.is_first_column(0) and lay.is_first_column(3)
        assert not lay.is_first_column(1)
        assert lay.is_square(8) and not lay.is_square(9)

    def test_index_vectors(self):
        lay = FieldLayout(3)
        assert lay.first_column_indices().tolist() == [0, 3, 6]
        assert lay.last_row_indices().tolist() == [9, 10, 11]
        assert lay.row_indices(1).tolist() == [3, 4, 5]
        assert lay.column_indices(1).tolist() == [1, 4, 7, 10]

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            FieldLayout(0)


class TestCellField:
    def test_shapes(self):
        g = random_graph(4, 0.5, seed=0)
        f = CellField(g)
        assert f.D.shape == (5, 4)
        assert f.P.shape == (5, 4)
        assert f.A_plane.shape == (20,)

    def test_adjacency_embedded(self):
        g = from_edges(3, [(0, 2)])
        f = CellField(g)
        A = f.A_plane[:9].reshape(3, 3)
        assert np.array_equal(A, g.matrix)
        assert f.A_plane[9:].tolist() == [0, 0, 0]  # bottom row has no A

    def test_a_plane_readonly(self):
        f = CellField(from_edges(2, [(0, 1)]))
        with pytest.raises(ValueError):
            f.A_plane[0] = 1

    def test_views_alias_storage(self):
        f = CellField(from_edges(3, []))
        f.D_square[0, 0] = 42
        assert f.D[0, 0] == 42
        f.D_N[1] = 7
        assert f.D[3, 1] == 7

    def test_c_column_copy(self):
        f = CellField(from_edges(3, []))
        c = f.C_column
        c[0] = 99
        assert f.D[0, 0] == 0  # copies do not write back

    def test_flat_roundtrip(self):
        f = CellField(from_edges(2, [(0, 1)]))
        data = np.arange(6)
        pointers = np.arange(6) % 6
        f.load_flat(data=data, pointers=pointers)
        assert f.flat_data().tolist() == data.tolist()
        assert f.flat_pointers().tolist() == pointers.tolist()

    def test_load_flat_shape_checked(self):
        f = CellField(from_edges(2, [(0, 1)]))
        with pytest.raises(ValueError):
            f.load_flat(data=np.arange(5))
        with pytest.raises(ValueError):
            f.load_flat(pointers=np.arange(7))

    def test_repr(self):
        assert "cells=6" in repr(CellField(from_edges(2, [(0, 1)])))
