"""Unit tests for the twelve generation rules (scalar semantics).

These tests pin each generation's pointer operation, activity set and data
operation to the paper's Figure 2 (with the documented DESIGN.md readings),
independent of the engines that execute them.
"""

import pytest

from repro.core.field import FieldLayout
from repro.core.generations import (
    Gen0Initialise,
    Gen1CopyVectorToRows,
    Gen2MaskNonNeighbors,
    Gen3ReduceMin,
    Gen4FallbackToOwn,
    Gen5CopyVectorToRowsKeepLast,
    Gen6MaskNonMembers,
    Gen9DistributeAndArchive,
    Gen10PointerJump,
    Gen11ResolvePairs,
)

LAY = FieldLayout(4)  # 5x4 field, INF = 20, last row starts at 16


class TestGen0:
    def test_no_reads(self):
        assert Gen0Initialise.reads is False

    def test_active_everywhere(self):
        g = Gen0Initialise()
        assert all(g.active(LAY, i) for i in range(LAY.size))

    def test_data_is_row_number(self):
        g = Gen0Initialise()
        assert g.data(LAY, 0, 99, 0, 0) == 0
        assert g.data(LAY, 7, 99, 0, 0) == 1
        assert g.data(LAY, 17, 99, 0, 0) == 4


class TestGen1:
    def test_pointer_targets_first_column(self):
        g = Gen1CopyVectorToRows()
        # cell (j, i) points to <i>[0] = i*n
        assert g.pointer(LAY, LAY.index(2, 3), 0) == 12
        assert g.pointer(LAY, LAY.index(4, 1), 0) == 4

    def test_data_copies_neighbor(self):
        g = Gen1CopyVectorToRows()
        assert g.data(LAY, 5, 1, 0, 42) == 42

    def test_active_everywhere(self):
        g = Gen1CopyVectorToRows()
        assert sum(g.active(LAY, i) for i in range(LAY.size)) == 20


class TestGen2:
    def test_square_only(self):
        g = Gen2MaskNonNeighbors()
        assert g.active(LAY, 15)
        assert not g.active(LAY, 16)

    def test_pointer_targets_dn_row(self):
        g = Gen2MaskNonNeighbors()
        # cell in row j reads D_N[j] = n^2 + j
        assert g.pointer(LAY, LAY.index(2, 1), 0) == 18

    def test_keep_condition(self):
        g = Gen2MaskNonNeighbors()
        # keep own d when adjacent and foreign
        assert g.data(LAY, 5, d=3, a=1, d_star=1) == 3
        # same component -> INF
        assert g.data(LAY, 5, d=3, a=1, d_star=3) == 20
        # not adjacent -> INF
        assert g.data(LAY, 5, d=3, a=0, d_star=1) == 20


class TestGen3:
    def test_stride_doubling(self):
        assert Gen3ReduceMin(0).stride == 1
        assert Gen3ReduceMin(2).stride == 4

    def test_active_alignment_sub0(self):
        g = Gen3ReduceMin(0)
        # columns 0, 2 active (partner in range); 1, 3 passive
        row1 = [g.active(LAY, LAY.index(1, c)) for c in range(4)]
        assert row1 == [True, False, True, False]

    def test_active_alignment_sub1(self):
        g = Gen3ReduceMin(1)
        row0 = [g.active(LAY, LAY.index(0, c)) for c in range(4)]
        assert row0 == [True, False, False, False]

    def test_last_row_excluded(self):
        g = Gen3ReduceMin(0)
        assert not g.active(LAY, LAY.index(4, 0))

    def test_pointer_is_partner(self):
        g = Gen3ReduceMin(1)
        assert g.pointer(LAY, 4, 0) == 6

    def test_data_is_min(self):
        g = Gen3ReduceMin(0)
        assert g.data(LAY, 0, 5, 0, 3) == 3
        assert g.data(LAY, 0, 2, 0, 9) == 2

    def test_boundary_guard_non_power_of_two(self):
        lay5 = FieldLayout(5)
        g = Gen3ReduceMin(2)  # stride 4: only col 0 has partner 4 < 5
        actives = [g.active(lay5, lay5.index(0, c)) for c in range(5)]
        assert actives == [True, False, False, False, False]

    def test_rejects_negative_sub(self):
        with pytest.raises(ValueError):
            Gen3ReduceMin(-1)

    def test_label(self):
        assert Gen3ReduceMin(1, label="gen7").label == "gen7.sub1"


class TestGen4:
    def test_first_column_square_only(self):
        g = Gen4FallbackToOwn()
        assert g.active(LAY, LAY.index(1, 0))
        assert not g.active(LAY, LAY.index(1, 1))
        assert not g.active(LAY, LAY.index(4, 0))

    def test_fallback_on_infinity(self):
        g = Gen4FallbackToOwn()
        assert g.data(LAY, 0, d=20, a=0, d_star=7) == 7
        assert g.data(LAY, 0, d=2, a=0, d_star=7) == 2

    def test_pointer(self):
        g = Gen4FallbackToOwn()
        assert g.pointer(LAY, LAY.index(3, 0), 0) == 19


class TestGen5:
    def test_last_row_keeps(self):
        g = Gen5CopyVectorToRowsKeepLast()
        assert g.data(LAY, LAY.index(4, 2), d=5, a=0, d_star=9) == 5
        assert g.data(LAY, LAY.index(2, 2), d=5, a=0, d_star=9) == 9

    def test_same_pointer_as_gen1(self):
        g5, g1 = Gen5CopyVectorToRowsKeepLast(), Gen1CopyVectorToRows()
        for idx in range(LAY.size):
            assert g5.pointer(LAY, idx, 0) == g1.pointer(LAY, idx, 0)


class TestGen6:
    def test_pointer_targets_dn_column(self):
        g = Gen6MaskNonMembers()
        # cell (j, i) reads D_N[i] = n^2 + i  (the DESIGN.md reading)
        assert g.pointer(LAY, LAY.index(2, 1), 0) == 17

    def test_keep_condition(self):
        g = Gen6MaskNonMembers()
        idx = LAY.index(2, 1)  # row j = 2
        # member (C(i)=j) with non-trivial candidate (T(i) != j): keep
        assert g.data(LAY, idx, d=0, a=0, d_star=2) == 0
        # member with trivial candidate: INF
        assert g.data(LAY, idx, d=2, a=0, d_star=2) == 20
        # non-member: INF
        assert g.data(LAY, idx, d=0, a=0, d_star=3) == 20

    def test_square_only(self):
        g = Gen6MaskNonMembers()
        assert not g.active(LAY, 17)


class TestGen9:
    def test_square_points_to_own_row_head(self):
        g = Gen9DistributeAndArchive()
        assert g.pointer(LAY, LAY.index(2, 3), 0) == 8

    def test_last_row_points_to_column_row_head(self):
        g = Gen9DistributeAndArchive()
        assert g.pointer(LAY, LAY.index(4, 3), 0) == 12

    def test_copies(self):
        g = Gen9DistributeAndArchive()
        assert g.data(LAY, 0, 1, 0, 33) == 33


class TestGen10:
    def test_data_dependent_pointer(self):
        g = Gen10PointerJump(0)
        assert g.pointer(LAY, 0, d=2) == 8  # row C(j)=2, column 0

    def test_only_first_column(self):
        g = Gen10PointerJump(0)
        assert g.active(LAY, LAY.index(2, 0))
        assert not g.active(LAY, LAY.index(2, 1))
        assert not g.active(LAY, LAY.index(4, 0))

    def test_label_carries_sub(self):
        assert Gen10PointerJump(2).label == "gen10.sub2"

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Gen10PointerJump(-1)


class TestGen11:
    def test_pointer_dereferences_column1(self):
        g = Gen11ResolvePairs()
        assert g.pointer(LAY, 0, d=2) == 9  # <2>[1]

    def test_min_semantics(self):
        g = Gen11ResolvePairs()
        assert g.data(LAY, 0, d=3, a=0, d_star=1) == 1
        assert g.data(LAY, 0, d=0, a=0, d_star=5) == 0
