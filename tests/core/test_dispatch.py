"""Tests for the adaptive engine dispatcher and its cost model."""

import numpy as np
import pytest

from repro.core.api import connected_components
from repro.core.dispatch import (
    DISPATCHABLE,
    CostModel,
    calibrate,
    choose_engine,
    explain_choice,
    predict_costs,
)
from repro.graphs.components import canonical_labels
from repro.graphs.generators import random_graph
from repro.graphs.union_find import UnionFind
from repro.hirschberg.edgelist import random_edge_list


class TestPredictCosts:
    def test_all_engines_priced(self):
        costs = predict_costs(64, 200)
        assert set(costs) == set(DISPATCHABLE)
        assert all(v > 0 for v in costs.values())

    def test_batched_requires_batch(self):
        assert predict_costs(16, 30, batch_size=1)["batched"] == float("inf")
        assert predict_costs(16, 30, batch_size=8)["batched"] < float("inf")

    def test_memory_gates_dense_engines(self):
        tiny_budget = CostModel(memory_budget=1024.0)
        costs = predict_costs(10_000, 20_000, model=tiny_budget)
        assert costs["vectorized"] == float("inf")
        assert costs["interpreter"] == float("inf")
        # the in-RAM sparse engines are gated by the same budget...
        assert costs["edgelist"] == float("inf")
        assert costs["contracting"] == float("inf")
        # ...while the out-of-core engine stays feasible at any budget
        assert costs["sharded"] < float("inf")

    def test_memory_gate_thresholds_are_the_predicted_bytes(self):
        from repro.core.dispatch import predict_memory

        n, m = 10_000, 20_000
        need = predict_memory(n, m)["edgelist"]
        fits = CostModel(memory_budget=need)
        tight = CostModel(memory_budget=need - 1)
        assert predict_costs(n, m, model=fits)["edgelist"] < float("inf")
        assert predict_costs(n, m, model=tight)["edgelist"] == float("inf")

    def test_sharded_priced_but_never_preferred_in_ram(self):
        # with the shipped budget, small and mid workloads never pick
        # the disk path: its fixed overhead dominates
        for n, m in ((64, 200), (20_000, 30_000), (2_000_000, 6_000_000)):
            costs = predict_costs(n, m)
            assert costs["sharded"] < float("inf")
            assert costs["contracting"] < costs["sharded"]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            predict_costs(0, 1)
        with pytest.raises(ValueError):
            predict_costs(4, -1)
        with pytest.raises(ValueError):
            predict_costs(4, 1, batch_size=0)


class TestChooseEngine:
    def test_large_sparse_goes_contracting(self):
        assert choose_engine(2_000_000, 6_000_000) == "contracting"

    def test_choice_is_always_dispatchable(self):
        for n in (1, 4, 64, 1024, 100_000):
            for m in (0, n, 4 * n):
                assert choose_engine(n, m) in DISPATCHABLE

    def test_instrumentation_forces_interpreter(self):
        assert choose_engine(8, 10, require_instrumentation=True) == "interpreter"

    def test_instrumentation_infeasible_raises(self):
        tiny = CostModel(memory_budget=1024.0)
        with pytest.raises(ValueError):
            choose_engine(10_000, 100, model=tiny, require_instrumentation=True)

    def test_respects_model_override(self):
        # a model where scattering is free and everything else absurd
        rigged = CostModel(
            scatter_edge=1e-15, edgelist_iter_dispatch=1e-15,
            contracting_unit=1.0, interpreter_cell_gen=1.0,
            vectorized_gen_dispatch=1.0, vectorized_cell_gen=1.0,
        )
        assert choose_engine(1000, 2000, model=rigged) == "edgelist"


class TestExplainChoice:
    def test_fields(self):
        doc = explain_choice(64, 100)
        assert doc["n"] == 64 and doc["m"] == 100
        assert doc["choice"] in doc["feasible"]
        assert set(doc["predicted_seconds"]) == set(DISPATCHABLE)

    def test_infeasible_excluded(self):
        tiny = CostModel(memory_budget=1024.0)
        doc = explain_choice(10_000, 100, model=tiny)
        assert "vectorized" not in doc["feasible"]
        # nothing in-RAM fits a 1 KiB budget; only the disk path remains
        assert doc["feasible"] == ["sharded"]
        assert doc["choice"] == "sharded"

    def test_reports_memory_dimension(self):
        from repro.core.dispatch import predict_memory

        doc = explain_choice(10_000, 20_000)
        memory = doc["memory"]
        assert memory["budget_bytes"] == CostModel().memory_budget
        assert memory["predicted_bytes"] == predict_memory(10_000, 20_000)
        assert set(memory["predicted_bytes"]) == set(DISPATCHABLE)
        # the out-of-core engine's resident set is clamped to the budget
        assert (memory["predicted_bytes"]["sharded"]
                <= memory["budget_bytes"])


class TestDecisionGridCorrectness:
    """``engine="auto"`` must return oracle-identical labels across the
    dispatcher's whole decision grid -- whatever it picks."""

    @pytest.mark.parametrize("n,p", [
        (2, 1.0), (8, 0.4), (16, 0.2), (48, 0.1), (48, 0.6), (96, 0.05),
    ])
    def test_dense_grid(self, n, p):
        g = random_graph(n, p, seed=n)
        res = connected_components(g, engine="auto")
        assert res.requested_method == "auto"
        assert res.method in DISPATCHABLE
        assert np.array_equal(res.labels, canonical_labels(g))

    @pytest.mark.parametrize("n,m", [
        (1, 0), (2, 1), (100, 0), (500, 400), (5_000, 12_000), (20_000, 30_000),
    ])
    def test_sparse_grid(self, n, m):
        g = random_edge_list(n, m, seed=n)
        res = connected_components(g, engine="auto")
        uf = UnionFind(g.n)
        half = g.src.size // 2
        for u, v in zip(g.src[:half].tolist(), g.dst[:half].tolist()):
            uf.union(u, v)
        assert np.array_equal(res.labels, uf.canonical_labels())

    def test_every_forced_engine_agrees_with_auto(self):
        g = random_graph(24, 0.2, seed=9)
        auto = connected_components(g, engine="auto").labels
        for engine in DISPATCHABLE:
            forced = connected_components(g, engine=engine).labels
            assert np.array_equal(forced, auto), engine


class TestMemoryRouting:
    """The acceptance surface: auto routes out-of-core when the working
    set exceeds the budget, and the labels still match the oracle."""

    def test_choose_engine_routes_to_sharded_under_tight_budget(self):
        tight = CostModel(memory_budget=float(1 << 20))
        assert choose_engine(100_000, 400_000, model=tight) == "sharded"

    def test_auto_dispatches_sharded_and_matches_oracle(self):
        g = random_edge_list(3_000, 6_000, seed=11)
        tight = CostModel(memory_budget=float(64 << 10))
        res = connected_components(g, engine="auto", cost_model=tight)
        assert res.method == "sharded"
        assert res.requested_method == "auto"
        uf = UnionFind(g.n)
        half = g.src.size // 2
        for u, v in zip(g.src[:half].tolist(), g.dst[:half].tolist()):
            uf.union(u, v)
        assert np.array_equal(res.labels, uf.canonical_labels())

    def test_probe_available_memory_is_sane(self):
        from repro.core.dispatch import probe_available_memory

        probed = probe_available_memory()
        assert isinstance(probed, int)
        assert probed > 1 << 20  # any real host has more than 1 MiB free

    def test_probe_default_passthrough(self):
        from unittest import mock

        from repro.core.dispatch import probe_available_memory

        with mock.patch("builtins.open", side_effect=OSError):
            assert probe_available_memory(default=12345) == 12345


class TestCalibrate:
    def test_returns_positive_constants(self):
        model = calibrate(seconds_budget=0.5)
        assert isinstance(model, CostModel)
        for field in ("interpreter_cell_gen", "vectorized_gen_dispatch",
                      "vectorized_cell_gen", "batched_cell_gen",
                      "scatter_edge", "edgelist_iter_dispatch",
                      "contracting_unit", "contracting_level_dispatch"):
            assert getattr(model, field) > 0, field

    def test_calibrated_model_still_dispatches(self):
        model = calibrate(seconds_budget=0.5)
        assert choose_engine(1_000_000, 5_000_000, model=model) in DISPATCHABLE


class TestCostModelCache:
    """Persistence of calibrated cost models (cached_cost_model)."""

    def _fast_calibrate(self, monkeypatch, marker=123.0):
        import repro.core.dispatch as dispatch

        calls = {"count": 0}

        def fake_calibrate(seconds_budget=1.0):
            calls["count"] += 1
            return CostModel(request_overhead=marker)

        monkeypatch.setattr(dispatch, "calibrate", fake_calibrate)
        return calls

    def test_cache_path_respects_env_override(self, tmp_path, monkeypatch):
        from repro.core.dispatch import default_cache_path

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert default_cache_path() == tmp_path / "costmodel.json"

    def test_save_then_load_round_trips(self, tmp_path):
        from repro.core.dispatch import load_cost_model, save_cost_model

        model = CostModel(request_overhead=42.0)
        path = save_cost_model(model, tmp_path / "cm.json")
        assert path.exists()
        loaded = load_cost_model(path)
        assert loaded is not None
        assert loaded.request_overhead == 42.0

    def test_load_missing_returns_none(self, tmp_path):
        from repro.core.dispatch import load_cost_model

        assert load_cost_model(tmp_path / "absent.json") is None

    def test_load_corrupt_returns_none(self, tmp_path):
        from repro.core.dispatch import load_cost_model

        path = tmp_path / "cm.json"
        path.write_text("{not json")
        assert load_cost_model(path) is None

    def test_load_wrong_version_returns_none(self, tmp_path):
        import json

        from repro.core.dispatch import load_cost_model

        path = tmp_path / "cm.json"
        path.write_text(json.dumps({"version": -1, "constants": {}}))
        assert load_cost_model(path) is None

    def test_load_ignores_unknown_constants(self, tmp_path):
        import json

        from repro.core.dispatch import (
            _CACHE_VERSION,
            host_fingerprint,
            load_cost_model,
        )

        path = tmp_path / "cm.json"
        path.write_text(json.dumps({
            "version": _CACHE_VERSION,
            "host": host_fingerprint(),
            "constants": {"request_overhead": 7.0, "not_a_field": 1.0},
        }))
        loaded = load_cost_model(path)
        assert loaded is not None
        assert loaded.request_overhead == 7.0

    def test_load_foreign_host_returns_none(self, tmp_path):
        """Satellite: a calibration cache carried to a different core
        count (or arch) must recalibrate, not misprice dispatch."""
        import json

        from repro.core.dispatch import (
            host_fingerprint,
            load_cost_model,
            save_cost_model,
        )

        path = save_cost_model(CostModel(), tmp_path / "cm.json")
        assert load_cost_model(path) is not None
        payload = json.loads(path.read_text())
        assert payload["host"] == host_fingerprint()
        payload["host"]["cpu_count"] = (payload["host"]["cpu_count"] or 0) + 64
        path.write_text(json.dumps(payload))
        assert load_cost_model(path) is None
        # and a cache missing the host stamp entirely is equally stale
        del payload["host"]
        path.write_text(json.dumps(payload))
        assert load_cost_model(path) is None

    def test_cached_calibrates_once(self, tmp_path, monkeypatch):
        from repro.core.dispatch import cached_cost_model

        calls = self._fast_calibrate(monkeypatch)
        path = tmp_path / "cm.json"
        first = cached_cost_model(path)
        second = cached_cost_model(path)
        assert calls["count"] == 1  # second call served from the cache
        assert first.request_overhead == second.request_overhead == 123.0

    def test_recalibrate_escape_hatch(self, tmp_path, monkeypatch):
        from repro.core.dispatch import cached_cost_model

        calls = self._fast_calibrate(monkeypatch)
        path = tmp_path / "cm.json"
        cached_cost_model(path)
        cached_cost_model(path, recalibrate=True)
        assert calls["count"] == 2  # forced fresh measurement

    def test_calibrate_measures_request_overhead(self):
        model = calibrate(seconds_budget=0.05)
        assert model.request_overhead > 0


class TestParallelDispatch:
    """The parallelism dimension: chunk-parallel label propagation is
    offered only when the per-round serial work amortises the measured
    barrier cost, and never on one core."""

    MULTI = CostModel(parallel_workers=4.0, parallel_round_sync=1e-4)

    def test_one_core_never_prices_parallel(self):
        costs = predict_costs(1_000_000, 5_000_000, model=CostModel())
        assert costs["parallel"] == float("inf")

    def test_big_sparse_prefers_parallel_on_many_cores(self):
        costs = predict_costs(1_000_000, 5_000_000, model=self.MULTI)
        assert costs["parallel"] < costs["contracting"]
        assert choose_engine(1_000_000, 5_000_000, model=self.MULTI) \
            == "parallel"

    def test_small_graphs_never_route_parallel(self):
        """Acceptance bar: auto never regresses small graphs."""
        for n, m in ((10, 20), (200, 400), (2_000, 3_000)):
            assert choose_engine(n, m, model=self.MULTI) != "parallel"

    def test_sync_dominated_rounds_stay_serial(self):
        slow_barrier = CostModel(
            parallel_workers=8.0, parallel_round_sync=10.0
        )
        costs = predict_costs(1_000_000, 5_000_000, model=slow_barrier)
        assert costs["parallel"] == float("inf")

    def test_explain_choice_reports_the_verdict(self):
        exp = explain_choice(1_000_000, 5_000_000, model=self.MULTI)
        verdict = exp["parallel"]
        assert verdict["workers"] == 4
        assert verdict["worth_parallel"] and verdict["amortizes_barriers"]
        assert verdict["per_round_serial_seconds"] \
            >= 2.0 * verdict["per_round_sync_seconds"]
        tiny = explain_choice(100, 200, model=self.MULTI)["parallel"]
        assert not tiny["amortizes_barriers"]
        assert not tiny["worth_parallel"]

    def test_gate_is_the_two_x_rule(self):
        from repro.core.dispatch import parallel_verdict

        v = parallel_verdict(50_000, 100_000, model=self.MULTI)
        expected = (
            v["per_round_serial_seconds"] >= 2.0 * v["per_round_sync_seconds"]
        )
        assert v["amortizes_barriers"] == expected
        solo = parallel_verdict(
            50_000, 100_000,
            model=CostModel(parallel_workers=1.0, parallel_round_sync=1e-9),
        )
        assert not solo["worth_parallel"]  # one worker never "parallel"

    def test_forced_parallel_engine_matches_auto(self):
        g = random_edge_list(3_000, 8_000, seed=77)
        auto = connected_components(g)
        forced = connected_components(g, engine="parallel")
        assert forced.method == "parallel"
        assert np.array_equal(auto.labels, forced.labels)
