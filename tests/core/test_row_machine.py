"""Tests for the n-cell design alternative (repro.core.row_machine)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.row_machine import (
    RowGCA,
    connected_components_row_gca,
    memory_words,
    row_generations_per_iteration,
    row_total_generations,
)
from repro.core.schedule import total_generations
from repro.graphs.components import canonical_labels
from repro.graphs.generators import complete_graph, path_graph, random_graph
from repro.util.intmath import ceil_log2
from tests.conftest import adjacency_matrices


class TestCorrectness:
    def test_corpus(self, corpus_graph):
        got = connected_components_row_gca(corpus_graph)
        assert np.array_equal(got, canonical_labels(corpus_graph))

    @given(adjacency_matrices(max_n=16))
    @settings(max_examples=40)
    def test_random(self, g):
        got = connected_components_row_gca(g)
        assert np.array_equal(got, canonical_labels(g))

    def test_singleton(self):
        res = RowGCA(random_graph(1, 0.0)).run()
        assert res.labels.tolist() == [0]
        assert res.iterations == 0


class TestGenerationCounts:
    @pytest.mark.parametrize("n", [2, 3, 4, 8, 13, 16])
    def test_total_matches_closed_form(self, n):
        res = RowGCA(path_graph(n)).run()
        assert res.total_generations == row_total_generations(n)

    def test_per_iteration_formula(self):
        # 2n + 5 + log n
        assert row_generations_per_iteration(8) == 16 + 5 + 3
        assert row_generations_per_iteration(16) == 32 + 5 + 4

    def test_linear_growth(self):
        """The n-cell design pays Theta(n) per iteration -- the price of
        giving up the n^2-cell tree reduction."""
        per = [row_generations_per_iteration(n) for n in (8, 16, 32)]
        assert per[1] > 1.6 * per[0]
        assert per[2] > 1.6 * per[1]

    @pytest.mark.parametrize("n", [8, 16, 32])
    def test_slower_than_square_design(self, n):
        assert row_total_generations(n) > total_generations(n)


class TestAccessBehaviour:
    def test_scan_congestion_is_one(self):
        """The rotation scans give every sub-generation congestion 1."""
        res = RowGCA(random_graph(8, 0.4, seed=0)).run()
        for stats in res.access_log:
            if ".s2scan" in stats.label:
                assert stats.max_congestion == 1, stats.label
            if ".s3scan" in stats.label:
                assert stats.max_congestion == 2, stats.label  # two-handed

    def test_jump_congestion_bounded_by_n(self):
        n = 8
        res = RowGCA(complete_graph(n)).run()
        peaks = [
            s.max_congestion for s in res.access_log if ".s5jump" in s.label
        ]
        assert max(peaks) <= n

    def test_local_generations_read_nothing(self):
        res = RowGCA(path_graph(4)).run()
        for stats in res.access_log:
            if any(tag in stats.label for tag in ("init", "fix", "adopt")) or stats.label == "gen0":
                assert stats.total_reads == 0, stats.label

    def test_record_access_off(self):
        res = RowGCA(path_graph(4), record_access=False).run()
        assert res.total_generations == 0  # nothing logged
        assert np.array_equal(res.labels, canonical_labels(path_graph(4)))

    def test_total_reads_closed_form(self):
        """Scans read once per cell per sub-generation; step 3 reads twice."""
        n = 8
        res = RowGCA(path_graph(n)).run()
        it0 = [s for s in res.access_log if s.label.startswith("it0.")]
        scan2 = sum(s.total_reads for s in it0 if ".s2scan" in s.label)
        scan3 = sum(s.total_reads for s in it0 if ".s3scan" in s.label)
        assert scan2 == n * (n - 1)
        assert scan3 == 2 * n * n


class TestDesignComparison:
    def test_memory_parity(self):
        """Both designs are dominated by the n^2 adjacency bits -- the
        paper's argument that fewer cells buy no asymptotic memory win."""
        words = memory_words(32)
        assert words["n2_design_adjacency_bits"] == words["row_design_adjacency_bits"]
        assert words["row_design_words"] < words["n2_design_words"]

    def test_iterations_unchanged(self):
        """Outer-loop structure is shared: same ceil(log2 n) iterations."""
        res = RowGCA(path_graph(16)).run()
        assert res.iterations == ceil_log2(16)

    def test_rejects_negative_iterations(self):
        with pytest.raises(ValueError):
            RowGCA(path_graph(4), iterations=-1)
