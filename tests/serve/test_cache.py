"""Tests for the content-addressed result cache and graph fingerprints.

The property the whole cache rests on: **fingerprint-equal implies
label-equivalent**.  Hypothesis drives it from both directions --
representation changes that must NOT move the fingerprint (dense vs
sparse, edge order, duplicated edges, swapped endpoints) and structural
changes that MUST move it (any difference in the canonical edge set,
e.g. a vertex permutation that actually moves an edge).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.hashing import canonical_edge_pairs, graph_fingerprint
from repro.core.api import connected_components
from repro.graphs.union_find import UnionFind
from repro.hirschberg.edgelist import EdgeListGraph
from repro.serve.cache import ResultCache


# -- strategies --------------------------------------------------------
@st.composite
def edge_lists(draw, max_n=24, max_m=48):
    # go through from_arrays: the EdgeListGraph contract requires both
    # directions of every undirected edge, which the constructor
    # guarantees (self-loops dropped, parallel edges deduplicated)
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    return EdgeListGraph.from_arrays(
        n,
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
    )


def _labels(graph: EdgeListGraph) -> np.ndarray:
    uf = UnionFind(graph.n)
    for s, d in zip(graph.src, graph.dst):
        uf.union(int(s), int(d))
    return uf.canonical_labels()


def _densify(graph: EdgeListGraph) -> np.ndarray:
    mat = np.zeros((graph.n, graph.n), dtype=np.int8)
    mat[graph.src, graph.dst] = 1
    mat[graph.dst, graph.src] = 1
    np.fill_diagonal(mat, 0)
    return mat


class TestFingerprintInvariance:
    @given(edge_lists(), st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_representation_independent(self, graph, rng):
        """Dense form, shuffled edges, swapped endpoints and duplicated
        edges all share one fingerprint -- and one label vector."""
        reference = graph_fingerprint(graph)
        assert graph_fingerprint(_densify(graph)) == reference

        order = list(range(graph.src.size))
        rng.shuffle(order)
        shuffled = EdgeListGraph(
            n=graph.n, src=graph.src[order], dst=graph.dst[order]
        )
        assert graph_fingerprint(shuffled) == reference

        swapped = EdgeListGraph(n=graph.n, src=graph.dst, dst=graph.src)
        assert graph_fingerprint(swapped) == reference

        doubled = EdgeListGraph(
            n=graph.n,
            src=np.concatenate([graph.src, graph.src]),
            dst=np.concatenate([graph.dst, graph.dst]),
        )
        assert graph_fingerprint(doubled) == reference

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_fingerprint_equal_implies_label_equal(self, graph):
        """The contract the server relies on, end to end: the engine
        labels of the dense and sparse forms of one fingerprint agree."""
        dense = _densify(graph)
        assert graph_fingerprint(dense) == graph_fingerprint(graph)
        sparse_labels = connected_components(graph, engine="contracting")
        dense_labels = connected_components(dense, engine="vectorized")
        assert np.array_equal(
            np.asarray(sparse_labels.labels), np.asarray(dense_labels.labels)
        )
        assert np.array_equal(np.asarray(sparse_labels.labels),
                              _labels(graph))

    @given(edge_lists(), st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_permuted_vertices_move_the_fingerprint(self, graph, rng):
        """A vertex relabelling that changes the canonical edge set must
        change the fingerprint (no false cache hits on permuted
        variants); one that happens to be an automorphism must not."""
        perm = list(range(graph.n))
        rng.shuffle(perm)
        perm = np.asarray(perm, dtype=np.int64)
        permuted = EdgeListGraph(
            n=graph.n, src=perm[graph.src], dst=perm[graph.dst]
        )

        def canon(g):
            n, lo, hi = canonical_edge_pairs(g)
            return (n, lo.tolist(), hi.tolist())

        same_structure = canon(graph) == canon(permuted)
        same_print = graph_fingerprint(graph) == graph_fingerprint(permuted)
        assert same_print == same_structure


class TestResultCacheCounters:
    def test_forced_hit_miss_sequence(self):
        cache = ResultCache(byte_budget=1 << 20)
        labels = np.arange(5, dtype=np.int64)
        assert cache.get("a") is None                    # miss
        cache.put("a", labels)
        hit = cache.get("a")                             # hit
        assert hit is not None and hit[1] is True
        assert np.array_equal(hit[0], labels)
        assert cache.get("b") is None                    # miss
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 2
        assert stats["inserts"] == 1
        assert stats["evictions"] == 0

    def test_lru_eviction_under_byte_budget(self):
        one_entry = 8 * 8  # eight int64 labels
        cache = ResultCache(byte_budget=2 * one_entry)
        labels = np.zeros(8, dtype=np.int64)
        cache.put("a", labels)
        cache.put("b", labels)
        cache.get("a")          # "a" is now most recent
        cache.put("c", labels)  # evicts "b", the LRU
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        assert cache.stats()["evictions"] == 1
        assert cache.bytes_used <= cache.byte_budget

    def test_oversized_entry_is_not_stored(self):
        cache = ResultCache(byte_budget=8)
        cache.put("big", np.zeros(100, dtype=np.int64))
        assert len(cache) == 0
        assert cache.get("big") is None

    def test_hits_return_read_only_labels(self):
        cache = ResultCache(byte_budget=1 << 10)
        cache.put("a", np.arange(4, dtype=np.int64))
        labels, _ = cache.get("a")
        with pytest.raises(ValueError):
            labels[0] = 99

    def test_replacement_accounts_bytes_once(self):
        cache = ResultCache(byte_budget=1 << 10)
        cache.put("a", np.zeros(8, dtype=np.int64))
        cache.put("a", np.zeros(16, dtype=np.int64))
        assert cache.bytes_used == 16 * 8
        assert len(cache) == 1

    def test_clear(self):
        cache = ResultCache(byte_budget=1 << 10)
        cache.put("a", np.zeros(4, dtype=np.int64))
        cache.clear()
        assert len(cache) == 0
        assert cache.bytes_used == 0


class TestVerifiedOnFirstHit:
    def test_first_hit_is_unverified_then_confirmed(self):
        cache = ResultCache(byte_budget=1 << 10, verify_first_hit=True)
        labels = np.arange(6, dtype=np.int64)
        cache.put("a", labels)
        got, verified = cache.get("a")
        assert not verified                 # advisory: caller re-solves
        assert cache.confirm("a", labels)   # fresh solve matches
        _, verified = cache.get("a")
        assert verified                     # trusted from now on
        stats = cache.stats()
        assert stats["verifications"] == 1
        assert stats["mismatches"] == 0

    def test_mismatch_evicts_and_counts(self):
        cache = ResultCache(byte_budget=1 << 10, verify_first_hit=True)
        cache.put("a", np.arange(6, dtype=np.int64))
        cache.get("a")
        wrong = np.zeros(6, dtype=np.int64)
        assert not cache.confirm("a", wrong)
        assert cache.get("a") is None       # evicted
        stats = cache.stats()
        assert stats["mismatches"] == 1

    def test_confirm_after_eviction_is_benign(self):
        cache = ResultCache(byte_budget=1 << 10, verify_first_hit=True)
        assert cache.confirm("gone", np.zeros(2, dtype=np.int64))

    @given(edge_lists())
    @settings(max_examples=30, deadline=None)
    def test_round_trip_with_real_fingerprints(self, graph):
        cache = ResultCache(byte_budget=1 << 20)
        fp = graph_fingerprint(graph)
        labels = _labels(graph)
        cache.put(fp, labels)
        hit = cache.get(fp)
        assert hit is not None
        assert np.array_equal(hit[0], labels)
        # the dense representation hits the same entry
        assert cache.get(graph_fingerprint(_densify(graph))) is not None


class TestServerCacheIntegration:
    def test_duplicate_stream_hits_and_stays_correct(self):
        from repro.serve import Server, ServerConfig
        from repro.hirschberg.edgelist import random_edge_list

        g = random_edge_list(64, 150, seed=7)
        with Server(ServerConfig(cache_bytes=1 << 20, workers=2)) as server:
            first = server.submit(g).response()
            second = server.submit(g).response()
            snap = server.metrics_snapshot()
        assert first.ok and second.ok
        assert second.engine == "cache"
        assert second.cache_hit and not first.cache_hit
        assert np.array_equal(first.labels, second.labels)
        assert np.array_equal(first.labels, _labels(g))
        assert snap["cache"]["hits"] == 1
        assert snap["cache"]["misses"] == 1

    def test_verify_mode_resolves_and_confirms(self):
        from repro.serve import Server, ServerConfig
        from repro.hirschberg.edgelist import random_edge_list

        g = random_edge_list(48, 100, seed=9)
        config = ServerConfig(cache_bytes=1 << 20, cache_verify=True,
                              workers=2)
        with Server(config) as server:
            responses = [server.submit(g).response() for _ in range(3)]
            snap = server.metrics_snapshot()
        assert [r.engine for r in responses][0] != "cache"
        assert responses[1].engine != "cache"   # verification solve
        assert responses[2].engine == "cache"   # trusted now
        for r in responses:
            assert np.array_equal(r.labels, _labels(g))
        assert snap["cache"]["verifications"] == 1
        assert snap["cache"]["mismatches"] == 0
