"""End-to-end tests for the asyncio socket gateway.

Every test drives a real TCP connection against a
:class:`~repro.serve.gateway.GatewayHandle` fronting a live
:class:`~repro.serve.server.Server` -- binary framing, JSON lines and
the HTTP surface all travel the loopback, and label vectors are checked
against the in-process oracle the wire layer must reproduce.
"""

import json
import socket
import struct
import threading

import numpy as np
import pytest

from repro.hirschberg.edgelist import random_edge_list
from repro.serve import protocol
from repro.serve.gateway import Gateway, GatewayConfig, GatewayHandle
from repro.serve.loadgen import (
    LoadSpec,
    make_workload,
    oracle_labels,
    run_socket_closed_loop,
    run_socket_open_loop,
)
from repro.serve.server import Server, ServerConfig


@pytest.fixture()
def server():
    with Server(ServerConfig(workers=1, max_wait=0.002)) as s:
        yield s


@pytest.fixture()
def gateway(server):
    with GatewayHandle(server, chunk_labels=256) as gw:
        yield gw


def _connect(gateway):
    sock = socket.create_connection(gateway.address)
    return sock, sock.makefile("rwb")


def _read_response(stream):
    """One full response: (header, message_or_labels)."""
    head = stream.read(protocol.RESPONSE_HEADER_SIZE)
    assert len(head) == protocol.RESPONSE_HEADER_SIZE
    rh = protocol.decode_response_header(head)
    if rh.kind == protocol.KIND_ERROR:
        return rh, stream.read(rh.payload_bytes).decode()
    if rh.kind != protocol.KIND_LABELS:
        return rh, None
    labels = np.empty(rh.n, dtype=np.int64)
    while True:
        payload = stream.read(rh.payload_bytes)
        labels[rh.offset:rh.offset + rh.count] = \
            protocol.decode_labels(rh, payload)
        if rh.final:
            return rh, labels
        rh = protocol.decode_response_header(
            stream.read(protocol.RESPONSE_HEADER_SIZE))


class TestBinaryDialect:
    def test_solve_round_trip_matches_oracle(self, gateway):
        g = random_edge_list(500, 1200, seed=4)
        sock, stream = _connect(gateway)
        stream.write(protocol.encode_graph_request(g, request_id=21))
        stream.flush()
        rh, labels = _read_response(stream)
        assert rh.request_id == 21
        assert np.array_equal(labels, oracle_labels(g))
        sock.close()

    def test_chunked_streaming_reassembles(self, gateway):
        # chunk_labels=256 in the fixture forces a multi-chunk stream
        g = random_edge_list(2000, 4000, seed=5)
        sock, stream = _connect(gateway)
        stream.write(protocol.encode_graph_request(g, request_id=1))
        stream.flush()
        head = stream.read(protocol.RESPONSE_HEADER_SIZE)
        rh = protocol.decode_response_header(head)
        chunks = 0
        labels = np.empty(rh.n, dtype=np.int64)
        while True:
            chunks += 1
            labels[rh.offset:rh.offset + rh.count] = protocol.decode_labels(
                rh, stream.read(rh.payload_bytes))
            if rh.final:
                break
            rh = protocol.decode_response_header(
                stream.read(protocol.RESPONSE_HEADER_SIZE))
        assert chunks > 1
        assert np.array_equal(labels, oracle_labels(g))
        sock.close()

    def test_pipelined_requests_both_answered(self, gateway):
        a = random_edge_list(100, 200, seed=1)
        b = random_edge_list(120, 240, seed=2)
        sock, stream = _connect(gateway)
        stream.write(protocol.encode_graph_request(a, request_id=1))
        stream.write(protocol.encode_graph_request(b, request_id=2))
        stream.flush()
        got = {}
        for _ in range(2):
            rh, labels = _read_response(stream)
            got[rh.request_id] = labels
        assert np.array_equal(got[1], oracle_labels(a))
        assert np.array_equal(got[2], oracle_labels(b))
        sock.close()

    def test_ping_pong(self, gateway):
        sock, stream = _connect(gateway)
        stream.write(protocol.encode_ping(request_id=77))
        stream.flush()
        rh, _ = _read_response(stream)
        assert rh.kind == protocol.KIND_PONG and rh.request_id == 77
        sock.close()

    def test_deadline_propagates_into_request(self, gateway):
        # an already-hopeless deadline resolves TIMEOUT (or OK if the
        # scheduler wins the race); the wire must carry it either way
        g = random_edge_list(64, 128, seed=3)
        sock, stream = _connect(gateway)
        stream.write(protocol.encode_graph_request(
            g, request_id=5, deadline=1e-6))
        stream.flush()
        rh, body = _read_response(stream)
        assert rh.request_id == 5
        if rh.kind == protocol.KIND_ERROR:
            assert rh.status == protocol.STATUS_TIMEOUT, body
        sock.close()


class TestRejectionOverTheWire:
    def test_recoverable_rejection_keeps_the_connection(self, gateway):
        g = random_edge_list(50, 100, seed=6)
        bad = bytearray(protocol.encode_graph_request(g, request_id=8))
        bad[4] = 200  # unknown dtype code
        sock, stream = _connect(gateway)
        stream.write(bytes(bad))
        stream.flush()
        rh, message = _read_response(stream)
        assert rh.kind == protocol.KIND_ERROR
        assert rh.status == protocol.STATUS_UNSUPPORTED
        assert rh.request_id == 8
        assert "dtype" in message
        # the declared payload was drained: the stream is still framed
        stream.write(protocol.encode_graph_request(g, request_id=9))
        stream.flush()
        rh, labels = _read_response(stream)
        assert rh.request_id == 9
        assert np.array_equal(labels, oracle_labels(g))
        sock.close()

    def test_oversized_declaration_bounded_and_typed(self, server):
        with GatewayHandle(server, max_payload_bytes=1 << 16) as gw:
            header = bytearray(protocol.encode_ping())
            struct.pack_into("<B", header, 3, protocol.KIND_SOLVE)
            struct.pack_into("<B", header, 4, protocol.DTYPE_I64)
            struct.pack_into("<Q", header, 12, 10)        # n
            struct.pack_into("<Q", header, 20, 1 << 40)   # m
            struct.pack_into("<Q", header, 28, 1 << 44)   # payload_bytes
            sock, stream = _connect(gw)
            stream.write(bytes(header))
            stream.flush()
            rh, message = _read_response(stream)
            assert rh.status == protocol.STATUS_OVERSIZED
            # declared size is beyond any drain bound: connection closes
            # without the gateway ever reading (or allocating) 16 TiB
            assert stream.read(1) == b""
            sock.close()

    def test_bad_magic_closes_the_connection(self, gateway):
        sock, stream = _connect(gateway)
        stream.write(b"R" + b"\x00" * (protocol.REQUEST_HEADER_SIZE - 1))
        stream.flush()
        rh, _ = _read_response(stream)
        assert rh.status == protocol.STATUS_BAD_FRAME
        assert stream.read(1) == b""
        sock.close()

    def test_shed_maps_to_typed_error_frame(self):
        config = ServerConfig(workers=1, max_wait=0.05, max_queue=1,
                              admission="shed")
        g = random_edge_list(64, 128, seed=7)
        with Server(config) as server:
            with GatewayHandle(server) as gw:
                sock, stream = _connect(gw)
                # enough pipelined frames to overflow a queue of 1
                for i in range(30):
                    stream.write(protocol.encode_graph_request(
                        random_edge_list(64, 128, seed=100 + i),
                        request_id=i))
                stream.flush()
                statuses = []
                for _ in range(30):
                    rh, _ = _read_response(stream)
                    status = (protocol.STATUS_OK
                              if rh.kind == protocol.KIND_LABELS
                              else rh.status)
                    statuses.append(status)
                sock.close()
        assert protocol.STATUS_SHED in statuses
        assert protocol.STATUS_OK in statuses


class TestCacheOverTheWire:
    def test_duplicate_socket_requests_hit_the_result_cache(self):
        config = ServerConfig(workers=1, max_wait=0.0,
                              cache_bytes=32 << 20)
        g = random_edge_list(1000, 2500, seed=8)
        with Server(config) as server:
            with GatewayHandle(server) as gw:
                sock, stream = _connect(gw)
                first = None
                for rid in (1, 2):
                    stream.write(protocol.encode_graph_request(
                        g, request_id=rid))
                    stream.flush()
                    _, labels = _read_response(stream)
                    if first is None:
                        first = labels
                    else:
                        assert np.array_equal(labels, first)
                sock.close()
                snap = server.metrics_snapshot()
        # the duplicate resolved from the content-addressed cache: it
        # never touched the planner or an engine
        assert snap["cache"]["hits"] == 1
        assert snap["cache"]["misses"] == 1


class TestJsonAndHttp:
    def test_json_lines_round_trip(self, gateway):
        sock, stream = _connect(gateway)
        stream.write(
            b'{"id": 4, "n": 6, "edges": [[0, 1], [1, 2], [4, 5]]}\n')
        stream.flush()
        doc = json.loads(stream.readline())
        assert doc["id"] == 4 and doc["status"] == "ok"
        assert doc["labels"] == [0, 0, 0, 3, 4, 4]
        stream.write(b'{"n": 3, "u": [0]}\n')  # u without v
        stream.flush()
        doc = json.loads(stream.readline())
        assert doc["status"] == "bad_frame"
        sock.close()

    def _http(self, gateway, raw):
        sock = socket.create_connection(gateway.address)
        sock.sendall(raw)
        chunks = []
        while True:
            data = sock.recv(65536)
            if not data:
                break
            chunks.append(data)
        sock.close()
        head, _, body = b"".join(chunks).partition(b"\r\n\r\n")
        status = int(head.split(b" ", 2)[1])
        return status, json.loads(body) if body else None

    def test_http_solve(self, gateway):
        body = json.dumps({"n": 4, "edges": [[0, 3]]}).encode()
        status, doc = self._http(
            gateway,
            b"POST /solve HTTP/1.1\r\nHost: t\r\nContent-Length: "
            + str(len(body)).encode() + b"\r\n\r\n" + body)
        assert status == 200
        assert doc["labels"] == [0, 1, 2, 0]

    def test_http_metrics_and_healthz(self, gateway):
        status, doc = self._http(
            gateway, b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
        assert status == 200 and "wire" in doc
        status, doc = self._http(
            gateway, b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        assert status == 200 and doc["status"] == "ok"

    def test_http_unknown_route_404(self, gateway):
        status, doc = self._http(
            gateway, b"GET /nope HTTP/1.1\r\nHost: t\r\n\r\n")
        assert status == 404


class TestWireMetrics:
    def test_wire_section_counts_traffic(self, server, gateway):
        g = random_edge_list(100, 200, seed=9)
        sock, stream = _connect(gateway)
        stream.write(protocol.encode_graph_request(g, request_id=1))
        stream.flush()
        _read_response(stream)
        sock.close()
        snap = server.metrics_snapshot()["wire"]
        assert snap["connections_total"] >= 1
        assert snap["frames_in"] >= 1
        assert snap["frames_out"] >= 1
        assert snap["bytes_in"] > protocol.REQUEST_HEADER_SIZE
        assert snap["bytes_out"] > protocol.RESPONSE_HEADER_SIZE
        assert snap["accept_to_admit"]["count"] >= 1


class TestLoadgenDrivers:
    def test_open_loop_verifies_against_oracle(self, gateway):
        graphs = make_workload(LoadSpec(count=40, sizes=(8, 16, 32),
                                        seed=12))
        results = run_socket_open_loop(gateway.address, graphs,
                                       offered_rps=2000, connections=8,
                                       seed=1)
        assert all(r is not None and r.ok for r in results)
        for r in results:
            assert np.array_equal(r.labels,
                                  oracle_labels(graphs[r.request_id]))

    def test_closed_loop_verifies_against_oracle(self, gateway):
        graphs = make_workload(LoadSpec(count=24, sizes=(8, 16), seed=13))
        results = run_socket_closed_loop(gateway.address, graphs,
                                         connections=4)
        assert all(r is not None and r.ok for r in results)
        for r in results:
            assert np.array_equal(r.labels,
                                  oracle_labels(graphs[r.request_id]))

    def test_dense_graphs_rejected(self, gateway):
        from repro.graphs.generators import random_graph

        with pytest.raises(TypeError):
            run_socket_closed_loop(gateway.address,
                                   [random_graph(8, 0.5, seed=1)])


class TestDrain:
    def test_aclose_waits_for_inflight_then_sheds_new(self):
        with Server(ServerConfig(workers=1, max_wait=0.002)) as server:
            handle = GatewayHandle(server).start()
            g = random_edge_list(200, 400, seed=10)
            sock, stream = _connect(handle)
            stream.write(protocol.encode_graph_request(g, request_id=1))
            stream.flush()
            rh, labels = _read_response(stream)
            assert np.array_equal(labels, oracle_labels(g))
            handle.stop(drain=True)
            sock.close()
        assert handle.gateway is not None
        assert handle.gateway.inflight == 0

    def test_stop_does_not_stop_the_fronted_server(self):
        with Server(ServerConfig(workers=1)) as server:
            handle = GatewayHandle(server).start()
            handle.stop()
            # the server is still the caller's: in-process traffic works
            g = random_edge_list(32, 64, seed=11)
            assert np.array_equal(server.submit(g).result(timeout=30),
                                  oracle_labels(g))

    def test_gateway_requires_a_running_loop_for_start(self):
        with Server(ServerConfig(workers=1)) as server:
            gw = Gateway(server, GatewayConfig())
            with pytest.raises(RuntimeError):
                gw.address  # not started

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GatewayConfig(chunk_labels=0)
        with pytest.raises(ValueError):
            GatewayConfig(drain_timeout=0.0)
        with pytest.raises(ValueError):
            GatewayConfig(submit_threads=0)


class TestConcurrentConnections:
    def test_many_connections_share_one_gateway(self, gateway):
        graphs = [random_edge_list(64, 128, seed=20 + i) for i in range(8)]
        expected = [oracle_labels(g) for g in graphs]
        errors = []

        def client(idx):
            try:
                sock, stream = _connect(gateway)
                stream.write(protocol.encode_graph_request(
                    graphs[idx], request_id=idx))
                stream.flush()
                rh, labels = _read_response(stream)
                assert rh.request_id == idx
                assert np.array_equal(labels, expected[idx])
                sock.close()
            except Exception as exc:  # noqa: BLE001 -- collected for assert
                errors.append((idx, exc))

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(len(graphs))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
