"""Tests for the serve execution backends."""

import numpy as np
import pytest

from repro.graphs.components import components_union_find
from repro.graphs.generators import path_graph, random_graph
from repro.graphs.union_find import UnionFind
from repro.hirschberg.edgelist import EdgeListGraph, random_edge_list
from repro.serve.workers import (
    SparseProcessPool,
    as_edge_list,
    pad_matrix,
    solve_coalesced,
    solve_dense_stack,
    solve_solo,
)


def _oracle_sparse(graph: EdgeListGraph) -> np.ndarray:
    uf = UnionFind(graph.n)
    for s, d in zip(graph.src, graph.dst):
        uf.union(int(s), int(d))
    return uf.canonical_labels()


class TestPadMatrix:
    def test_identity_at_exact_size(self):
        m = path_graph(4).matrix
        assert pad_matrix(m, 4) is m

    def test_pads_top_left(self):
        m = path_graph(3).matrix
        padded = pad_matrix(m, 5)
        assert padded.shape == (5, 5)
        assert np.array_equal(padded[:3, :3], m)
        assert not padded[3:, :].any()
        assert not padded[:, 3:].any()

    def test_rejects_shrinking(self):
        with pytest.raises(ValueError, match="cannot pad"):
            pad_matrix(path_graph(5).matrix, 3)


class TestSolveDenseStack:
    def test_mixed_sizes_padded_and_sliced(self):
        graphs = [random_graph(n, 0.3, seed=n) for n in (3, 5, 8)]
        labels = solve_dense_stack([g.matrix for g in graphs], 8)
        for g, vec in zip(graphs, labels):
            assert vec.shape == (g.n,)
            assert np.array_equal(vec, components_union_find(g))

    def test_padding_cannot_leak_into_labels(self):
        # a fully connected graph embedded in a much larger stack size
        g = random_graph(4, 1.0, seed=0)
        (vec,) = solve_dense_stack([g.matrix], 16)
        assert np.array_equal(vec, np.zeros(4, dtype=np.int64))


class TestSolveCoalesced:
    @pytest.mark.parametrize("engine", ["edgelist", "contracting"])
    def test_matches_oracle_per_member(self, engine):
        graphs = [random_edge_list(n, 2 * n, seed=n) for n in (4, 9, 16, 30)]
        labels = solve_coalesced(graphs, engine)
        assert len(labels) == len(graphs)
        for g, vec in zip(graphs, labels):
            assert np.array_equal(vec, _oracle_sparse(g))

    def test_singleton_batch(self):
        g = random_edge_list(12, 24, seed=1)
        (vec,) = solve_coalesced([g])
        assert np.array_equal(vec, _oracle_sparse(g))

    def test_accepts_dense_members(self):
        dense = random_graph(6, 0.4, seed=2)
        sparse = random_edge_list(6, 12, seed=3)
        labels = solve_coalesced([dense, sparse])
        assert np.array_equal(labels[0],
                              components_union_find(dense))
        assert np.array_equal(labels[1], _oracle_sparse(sparse))

    def test_members_with_zero_nodes(self):
        empty = EdgeListGraph(
            n=0,
            src=np.empty(0, dtype=np.int64),
            dst=np.empty(0, dtype=np.int64),
        )
        g = random_edge_list(5, 10, seed=4)
        labels = solve_coalesced([empty, g, empty])
        assert labels[0].size == 0
        assert labels[2].size == 0
        assert np.array_equal(labels[1], _oracle_sparse(g))

    def test_all_empty(self):
        empty = EdgeListGraph(
            n=0,
            src=np.empty(0, dtype=np.int64),
            dst=np.empty(0, dtype=np.int64),
        )
        labels = solve_coalesced([empty, empty])
        assert all(vec.size == 0 for vec in labels)


class TestSoloAndConversion:
    def test_solve_solo(self):
        g = random_edge_list(10, 20, seed=5)
        assert np.array_equal(solve_solo(g, "contracting"),
                              _oracle_sparse(g))

    def test_as_edge_list_passthrough(self):
        g = random_edge_list(4, 8, seed=6)
        assert as_edge_list(g) is g

    def test_as_edge_list_converts_dense(self):
        g = random_graph(5, 0.5, seed=7)
        converted = as_edge_list(g.matrix)
        assert isinstance(converted, EdgeListGraph)
        assert converted.n == 5


class TestSparseProcessPool:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="workers"):
            SparseProcessPool(0)

    def test_solve_round_trip(self):
        pool = SparseProcessPool(1)
        try:
            g = random_edge_list(50, 120, seed=8)
            labels = pool.solve(g, "contracting")
            assert np.array_equal(labels, _oracle_sparse(g))
        finally:
            pool.shutdown()

    def test_shutdown_refuses_new_work(self):
        pool = SparseProcessPool(1)
        pool.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            pool.solve(random_edge_list(5, 10, seed=9), "contracting")
