"""Tests for the repro.serve micro-batching request server."""
