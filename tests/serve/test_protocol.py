"""Tests for the binary wire codec (:mod:`repro.serve.protocol`).

The Hypothesis suites pin the contract the gateway's zero-copy path
depends on: encode -> decode is the identity for arbitrary edge arrays
under both dtype codes, the decoded endpoint views alias the payload
buffer (no copy), and every malformed-header class is rejected with the
right status and recoverability before any allocation is sized from it.
"""

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hirschberg.edgelist import EdgeListGraph, random_edge_list
from repro.serve import protocol
from repro.serve.protocol import (
    DTYPE_I32,
    DTYPE_I64,
    KIND_PING,
    KIND_SOLVE,
    MAGIC,
    REQUEST_HEADER_SIZE,
    RESPONSE_HEADER_SIZE,
    STATUS_BAD_FRAME,
    STATUS_OVERSIZED,
    STATUS_UNSUPPORTED,
    VERSION,
    ProtocolError,
    decode_labels,
    decode_pairs,
    decode_request_header,
    decode_response_header,
    declared_payload_bytes,
    declared_request_id,
    encode_error,
    encode_graph_request,
    encode_labels_header,
    encode_ping,
    encode_pong,
    encode_solve_request,
    graph_from_frame,
    iter_label_chunks,
)


def _edge_arrays(draw, max_n=64, max_m=128):
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    ints = st.integers(min_value=0, max_value=n - 1)
    u = np.array(draw(st.lists(ints, min_size=m, max_size=m)),
                 dtype=np.int64)
    v = np.array(draw(st.lists(ints, min_size=m, max_size=m)),
                 dtype=np.int64)
    return n, u, v


@st.composite
def edge_arrays(draw):
    return _edge_arrays(draw)


class TestRoundTrip:
    @given(edge_arrays(), st.sampled_from([DTYPE_I64, DTYPE_I32]))
    @settings(max_examples=60)
    def test_encode_decode_identity(self, arrays, dtype_code):
        n, u, v = arrays
        frame = encode_solve_request(n, u, v, request_id=7,
                                     dtype_code=dtype_code)
        header = decode_request_header(frame[:REQUEST_HEADER_SIZE])
        assert header.kind == KIND_SOLVE
        assert header.request_id == 7
        assert header.n == n
        assert header.m == len(u)
        assert header.deadline is None
        du, dv = decode_pairs(header, frame[REQUEST_HEADER_SIZE:])
        assert np.array_equal(du, u)
        assert np.array_equal(dv, v)

    @given(edge_arrays())
    @settings(max_examples=30)
    def test_graph_frame_reproduces_components(self, arrays):
        n, u, v = arrays
        frame = encode_solve_request(n, u, v)
        header = decode_request_header(frame[:REQUEST_HEADER_SIZE])
        graph = graph_from_frame(header, frame[REQUEST_HEADER_SIZE:])
        direct = EdgeListGraph.from_arrays(n, u, v)
        assert graph.n == direct.n
        assert graph.edge_count == direct.edge_count

    def test_deadline_microseconds_round_trip(self):
        frame = encode_solve_request(4, np.array([0]), np.array([1]),
                                     deadline=0.25)
        header = decode_request_header(frame[:REQUEST_HEADER_SIZE])
        assert header.deadline == pytest.approx(0.25)

    def test_graph_request_is_canonical_stamped(self):
        g = random_edge_list(64, 128, seed=3)
        frame = encode_graph_request(g, request_id=9)
        header = decode_request_header(frame[:REQUEST_HEADER_SIZE])
        assert header.canonical
        rebuilt = graph_from_frame(header, frame[REQUEST_HEADER_SIZE:])
        assert rebuilt.edge_count == g.edge_count

    def test_ping_pong(self):
        header = decode_request_header(encode_ping(request_id=3))
        assert header.kind == KIND_PING and header.request_id == 3
        pong = decode_response_header(encode_pong(3))
        assert pong.kind == protocol.KIND_PONG and pong.request_id == 3


class TestZeroCopy:
    def test_decoded_views_alias_the_payload(self):
        n, m = 100, 50
        rng = np.random.default_rng(0)
        u = rng.integers(0, n, m, dtype=np.int64)
        v = rng.integers(0, n, m, dtype=np.int64)
        frame = encode_solve_request(n, u, v)
        payload = np.frombuffer(frame[REQUEST_HEADER_SIZE:], dtype=np.uint8)
        header = decode_request_header(frame[:REQUEST_HEADER_SIZE])
        du, dv = decode_pairs(header, payload)
        assert np.shares_memory(du, payload)
        assert np.shares_memory(dv, payload)
        # the u-then-v block layout keeps each endpoint view contiguous,
        # so downstream ascontiguousarray never copies either
        assert du.flags["C_CONTIGUOUS"] and dv.flags["C_CONTIGUOUS"]
        assert np.shares_memory(np.ascontiguousarray(du), payload)

    def test_canonical_frame_decodes_without_renormalising(self):
        # the canonical stamp lets graph_from_frame feed the payload
        # views straight into from_arrays(assume_canonical=True): the
        # decode stage is copy-free (views alias the socket buffer) and
        # the pair set survives bit-exactly -- no sort, no dedup pass
        g = random_edge_list(256, 512, seed=1)
        frame = encode_graph_request(g)
        payload = np.frombuffer(frame[REQUEST_HEADER_SIZE:], dtype=np.uint8)
        header = decode_request_header(frame[:REQUEST_HEADER_SIZE])
        assert header.canonical
        du, dv = decode_pairs(header, payload)
        assert np.shares_memory(du, payload)
        assert np.shares_memory(dv, payload)
        rebuilt = graph_from_frame(header, payload)
        m = rebuilt.edge_count
        assert m == g.edge_count
        assert np.array_equal(rebuilt.src[:m], du)
        assert np.array_equal(rebuilt.dst[:m], dv)

    def test_label_chunks_alias_the_vector(self):
        labels = np.arange(1000, dtype=np.int64)
        chunks = iter_label_chunks(5, labels, chunk_labels=256)
        assert len(chunks) == 4
        for head, payload in chunks:
            assert np.shares_memory(
                np.frombuffer(payload, dtype=np.int64), labels)


class TestLabelStreaming:
    @given(st.integers(min_value=1, max_value=500),
           st.integers(min_value=1, max_value=64))
    @settings(max_examples=40)
    def test_chunks_reassemble_exactly(self, n, chunk):
        labels = np.random.default_rng(n).integers(0, n, n, dtype=np.int64)
        out = np.empty(n, dtype=np.int64)
        finals = 0
        for head, payload in iter_label_chunks(1, labels, chunk):
            rh = decode_response_header(head)
            assert rh.n == n
            out[rh.offset:rh.offset + rh.count] = decode_labels(rh, payload)
            finals += rh.final
        assert finals == 1
        assert np.array_equal(out, labels)

    def test_empty_vector_still_sends_a_final_frame(self):
        chunks = iter_label_chunks(2, np.empty(0, dtype=np.int64), 16)
        assert len(chunks) == 1
        rh = decode_response_header(chunks[0][0])
        assert rh.final and rh.count == 0


class TestRejection:
    def _frame(self, **patch):
        frame = bytearray(encode_solve_request(
            8, np.array([0, 1]), np.array([1, 2]), request_id=11))
        for offset, fmt, value in patch.values():
            struct.pack_into(fmt, frame, offset, value)
        return bytes(frame)

    def test_truncated_header_unrecoverable(self):
        with pytest.raises(ProtocolError) as exc:
            decode_request_header(b"RG\x01")
        assert not exc.value.recoverable

    def test_bad_magic_unrecoverable(self):
        bad = self._frame(magic=(0, "<H", 0x0000))
        with pytest.raises(ProtocolError) as exc:
            decode_request_header(bad)
        assert not exc.value.recoverable
        assert exc.value.status == STATUS_BAD_FRAME

    def test_bad_version_recoverable(self):
        bad = self._frame(version=(2, "<B", VERSION + 1))
        with pytest.raises(ProtocolError) as exc:
            decode_request_header(bad)
        assert exc.value.recoverable
        assert exc.value.status == STATUS_UNSUPPORTED

    def test_unknown_kind_and_dtype(self):
        for patch in ({"kind": (3, "<B", 99)}, {"dtype": (4, "<B", 99)}):
            with pytest.raises(ProtocolError) as exc:
                decode_request_header(self._frame(**patch))
            assert exc.value.status == STATUS_UNSUPPORTED

    def test_oversized_declaration_rejected_before_sizing(self):
        # declare an absurd payload; the decoder must reject on the
        # declared size alone, never allocating from it
        bad = self._frame(m=(20, "<Q", (1 << 61)),
                          payload=(28, "<Q", (1 << 62)))
        with pytest.raises(ProtocolError) as exc:
            decode_request_header(bad, max_payload=1 << 20)
        assert exc.value.status == STATUS_OVERSIZED
        assert exc.value.recoverable

    def test_inconsistent_payload_length(self):
        bad = self._frame(payload=(28, "<Q", 24))  # m=2 needs 32 bytes
        with pytest.raises(ProtocolError) as exc:
            decode_request_header(bad)
        assert exc.value.status == STATUS_BAD_FRAME
        assert exc.value.recoverable

    def test_zero_n_rejected(self):
        bad = self._frame(n=(12, "<Q", 0), m=(20, "<Q", 0),
                          payload=(28, "<Q", 0))
        with pytest.raises(ProtocolError):
            decode_request_header(bad)

    def test_declared_fields_survive_rejection(self):
        bad = self._frame(dtype=(4, "<B", 99))
        assert declared_payload_bytes(bad) == 32
        assert declared_request_id(bad) == 11
        assert declared_payload_bytes(b"short") == 0
        assert declared_request_id(b"short") == 0

    def test_ping_with_payload_rejected(self):
        frame = bytearray(encode_ping())
        struct.pack_into("<Q", frame, 28, 8)
        with pytest.raises(ProtocolError):
            decode_request_header(bytes(frame))


class TestErrorFrames:
    def test_error_round_trip(self):
        frame = encode_error(4, protocol.STATUS_SHED, "queue full", n=10)
        rh = decode_response_header(frame[:RESPONSE_HEADER_SIZE])
        assert rh.kind == protocol.KIND_ERROR
        assert rh.status == protocol.STATUS_SHED
        assert rh.request_id == 4 and rh.n == 10
        assert frame[RESPONSE_HEADER_SIZE:].decode() == "queue full"

    def test_response_header_validates_magic(self):
        with pytest.raises(ProtocolError):
            decode_response_header(b"\x00" * RESPONSE_HEADER_SIZE)


class TestJsonDialect:
    def test_edges_and_arrays_forms_agree(self):
        a = protocol.decode_json_request(
            b'{"n": 4, "edges": [[0, 1], [2, 3]]}')
        b = protocol.decode_json_request(
            b'{"n": 4, "u": [0, 2], "v": [1, 3]}')
        assert a["n"] == b["n"] == 4
        assert np.array_equal(a["u"], b["u"])
        assert np.array_equal(a["v"], b["v"])

    def test_id_and_deadline_pass_through(self):
        fields = protocol.decode_json_request(
            b'{"id": 9, "n": 2, "edges": [], "deadline": 1.5}')
        assert fields["id"] == 9
        assert fields["deadline"] == pytest.approx(1.5)

    def test_malformed_json_raises_protocol_error(self):
        for raw in (b"{not json", b'{"edges": []}', b'{"n": 2, "u": [0]}'):
            with pytest.raises(ProtocolError):
                protocol.decode_json_request(raw)
