"""Tests for the serve request/response value types and ResultHandle."""

import threading

import numpy as np
import pytest

from repro.serve.request import (
    CCRequest,
    CCResponse,
    RequestStatus,
    ResultHandle,
    ServeError,
)


def _graph():
    return np.zeros((2, 2), dtype=np.int8)


def _ok_response(request, labels=None):
    return CCResponse(
        request_id=request.request_id,
        status=RequestStatus.OK,
        labels=labels if labels is not None else np.zeros(2, dtype=np.int64),
    )


class TestCCRequest:
    def test_auto_request_id_unique(self):
        a, b = CCRequest(graph=_graph()), CCRequest(graph=_graph())
        assert a.request_id != b.request_id
        assert a.request_id.startswith("req-")

    def test_explicit_request_id_kept(self):
        req = CCRequest(graph=_graph(), request_id="mine")
        assert req.request_id == "mine"

    @pytest.mark.parametrize("deadline", [0.0, -1.0])
    def test_nonpositive_deadline_rejected(self, deadline):
        with pytest.raises(ValueError, match="deadline"):
            CCRequest(graph=_graph(), deadline=deadline)


class TestResultHandle:
    def test_not_done_until_resolved(self):
        handle = ResultHandle(CCRequest(graph=_graph()))
        assert not handle.done()
        assert handle._resolve(_ok_response(handle.request))
        assert handle.done()

    def test_resolve_first_writer_wins(self):
        handle = ResultHandle(CCRequest(graph=_graph()))
        first = _ok_response(handle.request)
        second = CCResponse(
            request_id=handle.request.request_id,
            status=RequestStatus.ERROR,
            error="late",
        )
        assert handle._resolve(first)
        assert not handle._resolve(second)
        assert handle.response() is first

    def test_response_timeout_raises(self):
        handle = ResultHandle(CCRequest(graph=_graph()))
        with pytest.raises(ServeError, match="within"):
            handle.response(timeout=0.01)

    def test_result_raises_on_non_ok(self):
        handle = ResultHandle(CCRequest(graph=_graph()))
        handle._resolve(CCResponse(
            request_id=handle.request.request_id,
            status=RequestStatus.ERROR,
            error="boom",
        ))
        with pytest.raises(ServeError, match="boom"):
            handle.result()

    def test_result_returns_labels(self):
        handle = ResultHandle(CCRequest(graph=_graph()))
        labels = np.array([0, 0], dtype=np.int64)
        handle._resolve(_ok_response(handle.request, labels))
        assert handle.result() is labels

    def test_cancel_before_resolution(self):
        handle = ResultHandle(CCRequest(graph=_graph()))
        assert handle.cancel()
        assert handle.cancel_requested
        # cancellation only flags; the server still resolves it
        assert not handle.done()

    def test_cancel_after_resolution_refused(self):
        handle = ResultHandle(CCRequest(graph=_graph()))
        handle._resolve(_ok_response(handle.request))
        assert not handle.cancel()
        assert not handle.cancel_requested

    def test_blocking_waiter_woken_by_resolver(self):
        handle = ResultHandle(CCRequest(graph=_graph()))
        got = []

        def wait():
            got.append(handle.response(timeout=5.0))

        waiter = threading.Thread(target=wait)
        waiter.start()
        response = _ok_response(handle.request)
        handle._resolve(response)
        waiter.join(timeout=5.0)
        assert not waiter.is_alive()
        assert got == [response]

    def test_many_waiters_all_woken(self):
        handle = ResultHandle(CCRequest(graph=_graph()))
        got = []
        lock = threading.Lock()

        def wait():
            resp = handle.response(timeout=5.0)
            with lock:
                got.append(resp)

        waiters = [threading.Thread(target=wait) for _ in range(4)]
        for t in waiters:
            t.start()
        handle._resolve(_ok_response(handle.request))
        for t in waiters:
            t.join(timeout=5.0)
        assert len(got) == 4

    def test_response_fast_path_after_resolution(self):
        handle = ResultHandle(CCRequest(graph=_graph()))
        handle._resolve(_ok_response(handle.request))
        # no condition was ever allocated: nobody blocked
        assert handle._cond is None
        assert handle.response(timeout=0).ok
