"""Tests for the persistent shared-memory pool executor.

Covers the PoolExecutor in isolation (round trips against a union-find
oracle, crash replacement with single-retry failover, leak-free
shutdown) and through the Server (``executor="pool"``), including a
worker killed mid-``serve_many`` with every unrelated request still
resolving correctly.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.analysis.shm import live_segments
from repro.graphs.components import components_union_find
from repro.graphs.generators import random_graph
from repro.graphs.union_find import UnionFind
from repro.hirschberg.edgelist import EdgeListGraph, random_edge_list
from repro.serve import (
    PoolExecutor,
    RequestStatus,
    Server,
    ServerConfig,
    WorkerDied,
    serve_many,
)


def _oracle_sparse(graph: EdgeListGraph) -> np.ndarray:
    uf = UnionFind(graph.n)
    for s, d in zip(graph.src, graph.dst):
        uf.union(int(s), int(d))
    return uf.canonical_labels()


@pytest.fixture
def pool():
    executor = PoolExecutor(workers=1, calibrate=False).start()
    yield executor
    executor.shutdown()


class TestPoolExecutor:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="workers"):
            PoolExecutor(0)

    def test_ping_round_trip(self, pool):
        pool.ping()
        assert pool.inflight == 0

    def test_dense_stack_matches_oracle(self, pool):
        graphs = [random_graph(n, 0.3, seed=n) for n in (3, 5, 8)]
        labels = pool.solve_dense_stack([g.matrix for g in graphs], 8)
        for g, vec in zip(graphs, labels):
            assert vec.shape == (g.n,)
            assert np.array_equal(vec, components_union_find(g))

    def test_coalesced_matches_oracle(self, pool):
        graphs = [random_edge_list(40, 90, seed=s) for s in range(4)]
        labels = pool.solve_coalesced(graphs, "contracting")
        for g, vec in zip(graphs, labels):
            assert np.array_equal(vec, _oracle_sparse(g))

    def test_solo_matches_oracle(self, pool):
        g = random_edge_list(200, 500, seed=3)
        assert np.array_equal(
            pool.solve_solo(g, "contracting"), _oracle_sparse(g)
        )

    def test_empty_batches(self, pool):
        assert pool.solve_dense_stack([], 8) == []
        (empty,) = pool.solve_coalesced(
            [EdgeListGraph(n=0, src=np.empty(0, dtype=np.int64),
                           dst=np.empty(0, dtype=np.int64))]
        )
        assert empty.size == 0

    def test_engine_error_not_retried(self, pool):
        with pytest.raises(RuntimeError, match="pool worker error"):
            pool.solve_coalesced([random_edge_list(10, 20, seed=0)],
                                 "no-such-engine")

    def test_heartbeats_advance(self, pool):
        before = pool.heartbeats()[0]
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if pool.heartbeats()[0] > before:
                return
            time.sleep(0.02)
        pytest.fail("heartbeat never advanced")

    def test_calibration_measures_overhead(self):
        with PoolExecutor(workers=1, calibrate=True) as pool:
            assert pool.measured_overhead > 0.0

    def test_context_manager_shutdown_leaves_no_segments(self):
        before = live_segments()
        with PoolExecutor(workers=1, calibrate=False) as pool:
            pool.solve_coalesced([random_edge_list(30, 60, seed=1)])
            assert len(live_segments()) > len(before)
        assert live_segments() == before

    def test_shutdown_is_idempotent(self):
        pool = PoolExecutor(workers=1, calibrate=False).start()
        pool.shutdown()
        pool.shutdown()

    def test_shutdown_refuses_new_work(self):
        pool = PoolExecutor(workers=1, calibrate=False).start()
        pool.shutdown()
        with pytest.raises(WorkerDied, match="shut down"):
            pool.ping()


class TestCrashRecovery:
    def test_killed_worker_is_replaced_and_work_retried(self):
        with PoolExecutor(workers=1, calibrate=False) as pool:
            (victim,) = pool.worker_pids()
            # hold the worker busy long enough to be killed mid-task
            import threading

            done = {}

            def probe():
                pool.ping(sleep=0.4)
                done["ok"] = True

            t = threading.Thread(target=probe)
            t.start()
            time.sleep(0.1)  # the worker has claimed the ping by now
            os.kill(victim, signal.SIGKILL)
            t.join(timeout=15.0)
            assert done.get("ok"), "retried ping never resolved"
            assert pool.restarts >= 1
            assert pool.worker_pids() != [victim]
            # the replacement serves real work
            g = random_edge_list(50, 120, seed=4)
            assert np.array_equal(
                pool.solve_coalesced([g])[0], _oracle_sparse(g)
            )
        assert not any(
            name for name in live_segments() if name
        ), "crash recovery leaked shared segments"


class TestServerPoolExecutor:
    def _config(self, **overrides):
        defaults = dict(
            executor="pool", process_workers=1, workers=2, max_wait=0.005,
        )
        defaults.update(overrides)
        return ServerConfig(**defaults)

    def test_config_rejects_unknown_executor(self):
        with pytest.raises(ValueError, match="executor"):
            ServerConfig(executor="quantum")

    def test_serve_many_matches_oracle(self):
        graphs = [random_edge_list(60, 140, seed=s) for s in range(12)]
        graphs += [random_graph(16, 0.3, seed=s).matrix for s in range(6)]
        responses = serve_many(graphs, config=self._config())
        for g, resp in zip(graphs, responses):
            assert resp.status is RequestStatus.OK
            if isinstance(g, EdgeListGraph):
                assert np.array_equal(resp.labels, _oracle_sparse(g))

    def test_measured_overhead_feeds_cost_model(self):
        with Server(self._config()) as server:
            assert (server.cost_model.pool_dispatch_overhead
                    == server._pool.measured_overhead > 0.0)
            assert (server._planner.model.pool_dispatch_overhead
                    == server.cost_model.pool_dispatch_overhead)

    def test_paying_batches_ride_the_pool(self):
        from dataclasses import replace

        graphs = [random_graph(64, 0.05, seed=s) for s in range(12)]
        with Server(self._config(max_wait=0.05)) as server:
            # zero the dispatch overhead so every batch pays for the pool
            server._planner.model = replace(
                server._planner.model, pool_dispatch_overhead=0.0
            )
            handles = [server.submit(g) for g in graphs]
            responses = [h.response(timeout=30.0) for h in handles]
        engines = {r.engine for r in responses}
        assert any(e.startswith("pool:") for e in engines), engines

    def test_tiny_batches_stay_inline(self):
        graphs = [random_edge_list(8, 12, seed=s) for s in range(6)]
        responses = serve_many(graphs, config=self._config())
        assert not any(
            r.engine.startswith("pool:") for r in responses
        )

    def test_pool_gauges_in_snapshot(self):
        with Server(self._config()) as server:
            server.submit(random_edge_list(20, 40, seed=0)).response()
            gauges = server.metrics_snapshot()["gauges"]
        assert "pool_restarts" in gauges
        assert gauges["pool_dispatch_overhead_s"] > 0.0

    def test_server_stop_leaves_no_segments(self):
        before = live_segments()
        with Server(self._config()) as server:
            server.submit(random_edge_list(30, 70, seed=2)).response()
        assert live_segments() == before

    def test_worker_killed_during_serve_many_all_requests_resolve(self):
        graphs = [random_edge_list(64, 150, seed=s) for s in range(40)]
        before = live_segments()
        with Server(self._config(max_wait=0.002)) as server:
            handles = [server.submit(g) for g in graphs[:20]]
            (victim,) = server._pool.worker_pids()
            os.kill(victim, signal.SIGKILL)
            handles += [server.submit(g) for g in graphs[20:]]
            responses = [h.response(timeout=30.0) for h in handles]
        for g, resp in zip(graphs, responses):
            assert resp.status is RequestStatus.OK, resp
            assert np.array_equal(resp.labels, _oracle_sparse(g))
        assert live_segments() == before
