"""Tests for the thread-free batching policy (BatchPlanner)."""

import numpy as np
import pytest

from repro.core.dispatch import CostModel
from repro.hirschberg.edgelist import random_edge_list
from repro.serve.request import CCRequest, ResultHandle
from repro.serve.scheduler import (
    BatchPlanner,
    BucketKey,
    PendingRequest,
    sample_mean_m,
)


def _pending(n=8, sparse=True, m=16, submitted_at=0.0, deadline_at=None,
             priority=0, graph=None):
    if graph is None:
        graph = (random_edge_list(n, m, seed=0) if sparse
                 else np.zeros((n, n), dtype=np.int8))
    handle = ResultHandle(CCRequest(graph=graph, priority=priority))
    return PendingRequest(
        handle=handle, n=n, sparse=sparse, submitted_at=submitted_at,
        deadline_at=deadline_at, m_known=m if sparse else None,
    )


class TestPendingRequest:
    def test_lazy_edge_count_for_dense(self):
        g = np.zeros((4, 4), dtype=np.int8)
        g[0, 1] = g[1, 0] = 1
        p = _pending(n=4, sparse=False, graph=g)
        assert p.m_known is None  # not measured at admission
        assert p.m == 1
        assert p.m_known == 1  # memoised

    def test_slack_unbounded(self):
        assert _pending().slack(1e9) == float("inf")

    def test_slack_counts_down(self):
        p = _pending(deadline_at=10.0)
        assert p.slack(4.0) == pytest.approx(6.0)

    def test_sort_key_urgency_order(self):
        tight = _pending(deadline_at=5.0, submitted_at=1.0)
        loose = _pending(deadline_at=50.0, submitted_at=0.0)
        assert tight.sort_key(0.0) < loose.sort_key(0.0)


class TestSampleMeanM:
    def test_empty(self):
        assert sample_mean_m([]) == 0.0

    def test_small_list_exact(self):
        members = [_pending(m=10), _pending(m=30)]
        assert sample_mean_m(members) == pytest.approx(20.0)

    def test_large_list_samples_at_most_k(self):
        members = [_pending(m=7) for _ in range(100)]
        assert sample_mean_m(members, k=4) == pytest.approx(7.0)


class TestBucketing:
    def test_dense_padded_to_power_of_two(self):
        planner = BatchPlanner(pad_buckets=True)
        key = planner.key_for(_pending(n=12, sparse=False))
        assert key == BucketKey("dense", 16)

    def test_dense_unpadded(self):
        planner = BatchPlanner(pad_buckets=False)
        assert planner.key_for(_pending(n=12, sparse=False)).size == 12

    def test_padding_preserves_exact_powers(self):
        planner = BatchPlanner(pad_buckets=True)
        assert planner.key_for(_pending(n=16, sparse=False)).size == 16

    def test_sparse_and_dense_never_share_buckets(self):
        planner = BatchPlanner()
        sparse_key = planner.key_for(_pending(n=8, sparse=True))
        dense_key = planner.key_for(_pending(n=8, sparse=False))
        assert sparse_key != dense_key

    def test_sparse_cap_respects_coalesce_units(self):
        planner = BatchPlanner(coalesce_units=100)
        members = [_pending(n=8, m=16) for _ in range(10)]  # 40 units each
        cap = planner.bucket_cap(BucketKey("sparse", 8), members)
        assert cap == 2  # 100 // 40

    def test_sparse_cap_never_below_one(self):
        planner = BatchPlanner(coalesce_units=1)
        members = [_pending(n=1000, m=2000)]
        assert planner.bucket_cap(BucketKey("sparse", 1000), members) == 1

    def test_dense_cap_respects_memory_budget(self):
        small = CostModel(memory_budget=100_000.0)
        planner = BatchPlanner(model=small)
        cap = planner.bucket_cap(BucketKey("dense", 64))
        expected = int(100_000 // (64 * 65 * small.dense_bytes_per_cell))
        assert cap == max(1, expected)

    def test_max_batch_clamps(self):
        planner = BatchPlanner(max_batch=3)
        members = [_pending(n=2, m=1) for _ in range(10)]
        assert planner.bucket_cap(BucketKey("sparse", 2), members) <= 3


class TestPoolPays:
    def test_small_batches_stay_inline(self):
        model = CostModel(pool_dispatch_overhead=10.0)  # absurdly costly
        planner = BatchPlanner(model=model)
        assert not planner.pool_pays(BucketKey("sparse", 64), 4, 128.0)
        assert not planner.pool_pays(BucketKey("dense", 64), 16, 0.0)

    def test_expensive_batches_pay(self):
        model = CostModel(pool_dispatch_overhead=0.0)
        planner = BatchPlanner(model=model)
        assert planner.pool_pays(BucketKey("sparse", 512), 8, 1024.0)

    def test_empty_key_never_pays(self):
        model = CostModel(pool_dispatch_overhead=0.0)
        planner = BatchPlanner(model=model)
        assert not planner.pool_pays(BucketKey("dense", 0), 1, 0.0)

    def test_break_even_is_twice_the_overhead(self):
        planner = BatchPlanner(model=CostModel(pool_dispatch_overhead=1.0))
        key = BucketKey("sparse", 256)
        # grow occupancy until the estimate crosses 2x the overhead;
        # pool_pays must flip exactly there
        for occupancy in (1, 4, 16, 64, 256, 1024, 4096):
            est = planner.estimate_batch_seconds(key, occupancy, 512.0)
            assert planner.pool_pays(key, occupancy, 512.0) == (est >= 2.0)


class TestFlushTriggers:
    def test_no_flush_inside_window(self):
        planner = BatchPlanner(max_wait=10.0)
        planner.add(_pending(submitted_at=100.0))
        assert planner.take_ready(now=100.001) == []
        assert planner.queued_count() == 1

    def test_window_timeout_flushes(self):
        planner = BatchPlanner(max_wait=0.002)
        planner.add(_pending(submitted_at=100.0))
        flushes = planner.take_ready(now=100.5)
        assert [len(b) for b in flushes] == [1]
        assert planner.queued_count() == 0

    def test_full_bucket_flushes_immediately(self):
        planner = BatchPlanner(max_wait=10.0, coalesce_units=80)
        # 40 units each -> cap 2
        assert not planner.add(_pending(n=8, m=16, submitted_at=100.0))
        assert planner.add(_pending(n=8, m=16, submitted_at=100.0))
        flushes = planner.take_ready(now=100.0)
        assert [len(b) for b in flushes] == [2]

    def test_deadline_pressure_flushes_early(self):
        planner = BatchPlanner(max_wait=10.0, deadline_margin=0.005)
        planner.add(_pending(submitted_at=100.0, deadline_at=100.004))
        # window far from closing, but the deadline is about to pass
        flushes = planner.take_ready(now=100.0)
        assert [len(b) for b in flushes] == [1]

    def test_force_flushes_everything(self):
        planner = BatchPlanner(max_wait=10.0)
        for _ in range(3):
            planner.add(_pending(submitted_at=100.0))
        flushes = planner.take_ready(now=100.0, force=True)
        assert sum(len(b) for b in flushes) == 3
        assert planner.queued_count() == 0

    def test_urgent_members_packed_first_on_overflow(self):
        planner = BatchPlanner(max_wait=10.0, coalesce_units=80)
        loose = _pending(n=8, m=16, submitted_at=100.0, deadline_at=200.0)
        tight = _pending(n=8, m=16, submitted_at=100.0, deadline_at=101.0)
        mid = _pending(n=8, m=16, submitted_at=100.0, deadline_at=150.0)
        for p in (loose, tight, mid):
            planner.add(p)
        flushes = planner.take_ready(now=100.0, force=True)
        first = flushes[0]
        assert first[0] is tight

    def test_fifo_without_deadlines_skips_sort(self):
        planner = BatchPlanner(max_wait=10.0)
        a = _pending(submitted_at=100.0)
        b = _pending(submitted_at=100.1)
        planner.add(a)
        planner.add(b)
        flushes = planner.take_ready(now=200.0)
        assert flushes[0][0] is a  # arrival order preserved

    def test_remainder_requeued_when_not_timed_out(self):
        planner = BatchPlanner(max_wait=10.0, coalesce_units=80)
        for _ in range(3):  # cap 2: one full flush + 1 leftover
            planner.add(_pending(n=8, m=16, submitted_at=100.0))
        flushes = planner.take_ready(now=100.0)
        assert [len(b) for b in flushes] == [2]
        assert planner.queued_count() == 1

    def test_drain_all_empties(self):
        planner = BatchPlanner()
        for _ in range(5):
            planner.add(_pending())
        drained = planner.drain_all()
        assert len(drained) == 5
        assert planner.queued_count() == 0
        assert planner.take_ready(force=True) == []


class TestNextDue:
    def test_none_when_empty(self):
        assert BatchPlanner().next_due(now=0.0) is None

    def test_window_remaining(self):
        planner = BatchPlanner(max_wait=0.5)
        planner.add(_pending(submitted_at=100.0))
        assert planner.next_due(now=100.1) == pytest.approx(0.4)

    def test_deadline_tightens_due(self):
        planner = BatchPlanner(max_wait=10.0, deadline_margin=0.0)
        planner.add(_pending(submitted_at=100.0, deadline_at=100.25))
        assert planner.next_due(now=100.0) == pytest.approx(0.25)

    def test_never_negative(self):
        planner = BatchPlanner(max_wait=0.001)
        planner.add(_pending(submitted_at=100.0))
        assert planner.next_due(now=200.0) == 0.0


class TestEngineChoice:
    def test_degenerate_size_zero(self):
        planner = BatchPlanner()
        assert planner.choose_batch_engine(BucketKey("dense", 0), 4, 0) == (
            "vectorized"
        )

    def test_sparse_batch_coalesces_on_contracting(self):
        planner = BatchPlanner()
        engine = planner.choose_batch_engine(BucketKey("sparse", 8), 64, 16)
        assert engine == "contracting"

    def test_sparse_solo_offers_sparse_engines(self):
        planner = BatchPlanner()
        engine = planner.choose_batch_engine(BucketKey("sparse", 8), 1, 16)
        assert engine in ("edgelist", "contracting")

    def test_dense_batch_prefers_a_batching_strategy(self):
        planner = BatchPlanner()
        engine = planner.choose_batch_engine(BucketKey("dense", 16), 32, 24)
        # either the stacked dense field or the coalesced sparse union --
        # both amortise; the point is it must not fall back to solo
        assert engine in ("batched", "contracting")

    def test_estimate_scales_with_occupancy(self):
        planner = BatchPlanner()
        key = BucketKey("sparse", 8)
        one = planner.estimate_batch_seconds(key, 1, 16)
        many = planner.estimate_batch_seconds(key, 64, 16)
        assert many > one
        assert many < one * 64  # amortisation: far below linear


class TestValidation:
    def test_bad_max_batch(self):
        with pytest.raises(ValueError, match="max_batch"):
            BatchPlanner(max_batch=0)

    def test_bad_max_wait(self):
        with pytest.raises(ValueError, match="max_wait"):
            BatchPlanner(max_wait=-1.0)

    def test_bad_coalesce_units(self):
        with pytest.raises(ValueError, match="coalesce_units"):
            BatchPlanner(coalesce_units=0)
