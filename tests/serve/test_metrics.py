"""Tests for the serve metrics layer."""

import json

import pytest

from repro.serve.metrics import RESERVOIR_SIZE, ServeMetrics


class TestCounters:
    def test_submitted_splits_admitted_and_shed(self):
        m = ServeMetrics()
        m.record_submitted(admitted=True)
        m.record_submitted(admitted=True)
        m.record_submitted(admitted=False)
        snap = m.snapshot()["counters"]
        assert snap["submitted"] == 3
        assert snap["admitted"] == 2
        assert snap["shed"] == 1

    def test_completion_records_latency_and_miss(self):
        m = ServeMetrics()
        m.record_completion(0.001, 0.002, 0.003, deadline_missed=True)
        m.record_completion(0.001, 0.002, 0.003, deadline_missed=False)
        snap = m.snapshot()
        assert snap["counters"]["completed"] == 2
        assert snap["counters"]["deadline_misses"] == 1
        assert snap["latency"]["count"] == 2

    def test_record_completions_batch_form_matches_singles(self):
        batch, single = ServeMetrics(), ServeMetrics()
        samples = [(0.001, 0.002, 0.003, False), (0.004, 0.005, 0.006, True)]
        batch.record_completions(samples)
        for q, s, l, missed in samples:
            single.record_completion(q, s, l, deadline_missed=missed)
        a, b = batch.snapshot(), single.snapshot()
        assert a["counters"]["completed"] == b["counters"]["completed"] == 2
        assert a["counters"]["deadline_misses"] == 1
        assert a["latency"] == b["latency"]
        assert a["queue_time"] == b["queue_time"]

    def test_timeout_counts_as_deadline_miss(self):
        m = ServeMetrics()
        m.record_timeout()
        snap = m.snapshot()["counters"]
        assert snap["timed_out"] == 1
        assert snap["deadline_misses"] == 1

    def test_failure_counters(self):
        m = ServeMetrics()
        m.record_cancelled()
        m.record_error()
        m.record_retry()
        m.record_worker_restart()
        snap = m.snapshot()["counters"]
        assert snap["cancelled"] == 1
        assert snap["errors"] == 1
        assert snap["retries"] == 1
        assert snap["worker_restarts"] == 1


class TestOccupancy:
    def test_mean_and_max(self):
        m = ServeMetrics()
        m.record_batch(4)
        m.record_batch(8)
        occ = m.snapshot()["batch_occupancy"]
        assert occ["mean"] == pytest.approx(6.0)
        assert occ["max"] == 8

    def test_zero_batches(self):
        assert ServeMetrics().snapshot()["batch_occupancy"]["mean"] is None


class TestLatencySummary:
    def test_percentiles_in_milliseconds(self):
        m = ServeMetrics()
        for i in range(1, 101):
            m.record_completion(0.0, 0.0, i / 1000.0)
        latency = m.snapshot()["latency"]
        assert latency["count"] == 100
        assert latency["p50_ms"] == pytest.approx(50.5, abs=1.0)
        assert latency["p99_ms"] <= latency["max_ms"] == pytest.approx(100.0)
        assert latency["p50_ms"] <= latency["p95_ms"] <= latency["p99_ms"]

    def test_empty_reservoir_summary(self):
        # every statistic is null (not 0.0): "no traffic yet" must not
        # masquerade as "everything resolved instantly"
        assert ServeMetrics().snapshot()["latency"] == {
            "count": 0,
            "p50_ms": None,
            "p95_ms": None,
            "p99_ms": None,
            "mean_ms": None,
            "max_ms": None,
        }

    def test_empty_occupancy_mean_is_null(self):
        assert ServeMetrics().snapshot()["batch_occupancy"]["mean"] is None

    def test_reservoir_is_bounded(self):
        m = ServeMetrics(reservoir_size=8)
        for i in range(100):
            m.record_completion(0.0, 0.0, float(i))
        assert m.snapshot()["latency"]["count"] == 8

    def test_default_reservoir_size(self):
        m = ServeMetrics()
        assert m._latency_s.maxlen == RESERVOIR_SIZE


class TestSnapshot:
    def test_gauges_merged(self):
        snap = ServeMetrics().snapshot({"queue_depth": 3})
        assert snap["gauges"] == {"queue_depth": 3}

    def test_no_gauges_key_without_gauges(self):
        assert "gauges" not in ServeMetrics().snapshot()

    def test_to_json_round_trips(self):
        m = ServeMetrics()
        m.record_submitted(admitted=True)
        m.record_completion(0.001, 0.002, 0.003)
        parsed = json.loads(m.to_json(gauges={"in_flight": 0}))
        assert parsed["counters"]["completed"] == 1
        assert parsed["gauges"]["in_flight"] == 0
        assert parsed["throughput_rps"] > 0


class TestWireMetrics:
    def test_connection_gauge_tracks_open_and_total(self):
        m = ServeMetrics()
        m.record_connection_open()
        m.record_connection_open()
        m.record_connection_close()
        wire = m.snapshot()["wire"]
        assert wire["open_connections"] == 1
        assert wire["connections_total"] == 2

    def test_traffic_counters_accumulate(self):
        m = ServeMetrics()
        m.record_wire_in(40)
        m.record_wire_in(1024, frames=3)
        m.record_wire_out(36)
        wire = m.snapshot()["wire"]
        assert wire["bytes_in"] == 1064
        assert wire["frames_in"] == 4
        assert wire["bytes_out"] == 36
        assert wire["frames_out"] == 1

    def test_protocol_errors_counted(self):
        m = ServeMetrics()
        m.record_wire_error()
        m.record_wire_error()
        assert m.snapshot()["wire"]["protocol_errors"] == 2

    def test_accept_to_admit_summary(self):
        m = ServeMetrics()
        for s in (0.001, 0.002, 0.003):
            m.record_admit(s)
        summary = m.snapshot()["wire"]["accept_to_admit"]
        assert summary["count"] == 3
        assert summary["p50_ms"] == pytest.approx(2.0, rel=0.2)

    def test_quiet_wire_section_is_all_zero(self):
        wire = ServeMetrics().snapshot()["wire"]
        assert wire["open_connections"] == 0
        assert wire["connections_total"] == 0
        assert wire["protocol_errors"] == 0
        assert wire["accept_to_admit"]["count"] == 0

    def test_wire_section_round_trips_through_json(self):
        m = ServeMetrics()
        m.record_connection_open()
        m.record_wire_in(40)
        m.record_admit(0.001)
        parsed = json.loads(m.to_json())
        assert parsed["wire"]["connections_total"] == 1
        assert parsed["wire"]["frames_in"] == 1
