"""End-to-end tests for the micro-batching Server."""

import threading
import time

import numpy as np
import pytest

import repro.serve.server as server_module
from repro.graphs.components import components_union_find
from repro.graphs.generators import random_graph
from repro.graphs.union_find import UnionFind
from repro.hirschberg.edgelist import EdgeListGraph, random_edge_list
from repro.serve import (
    CCRequest,
    QueueFull,
    RequestStatus,
    Server,
    ServerClosed,
    ServerConfig,
    serve_many,
)
from repro.serve.loadgen import (
    LoadSpec,
    make_workload,
    run_closed_loop,
    run_open_loop,
)


def _oracle(graph) -> np.ndarray:
    if isinstance(graph, EdgeListGraph):
        uf = UnionFind(graph.n)
        for s, d in zip(graph.src, graph.dst):
            uf.union(int(s), int(d))
        return uf.canonical_labels()
    return components_union_find(graph)


def _quick_config(**overrides) -> ServerConfig:
    defaults = dict(workers=1, max_wait=0.001)
    defaults.update(overrides)
    return ServerConfig(**defaults)


class TestLifecycle:
    def test_context_manager_starts_and_stops(self):
        with Server(_quick_config()) as server:
            assert server.submit(random_edge_list(8, 16, seed=0)).result(
                timeout=5.0
            ).shape == (8,)
        with pytest.raises(ServerClosed):
            server.submit(random_edge_list(8, 16, seed=0))

    def test_double_start_rejected(self):
        server = Server(_quick_config()).start()
        try:
            with pytest.raises(RuntimeError, match="running"):
                server.start()
        finally:
            server.stop()

    def test_stop_before_start_is_safe(self):
        assert Server(_quick_config()).stop()

    def test_keyword_overrides(self):
        server = Server(workers=1, max_wait=0.003)
        assert server.config.max_wait == 0.003

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError, match="admission"):
            ServerConfig(admission="drop")
        with pytest.raises(ValueError, match="max_queue"):
            ServerConfig(max_queue=0)
        with pytest.raises(ValueError, match="calibration"):
            ServerConfig(calibration="never")


class TestCorrectness:
    def test_sparse_batch_matches_oracle(self):
        graphs = [random_edge_list(8, 16, seed=s) for s in range(40)]
        responses = serve_many(graphs, config=_quick_config())
        for g, resp in zip(graphs, responses):
            assert resp.status is RequestStatus.OK
            assert np.array_equal(resp.labels, _oracle(g))

    def test_dense_batch_matches_oracle(self):
        graphs = [random_graph(12, 0.3, seed=s) for s in range(16)]
        responses = serve_many(graphs, config=_quick_config())
        for g, resp in zip(graphs, responses):
            assert resp.status is RequestStatus.OK
            assert np.array_equal(resp.labels, _oracle(g))

    def test_mixed_sizes_and_kinds(self):
        spec = LoadSpec(count=60, sizes=(8, 16, 32), dense_fraction=0.3,
                        seed=3)
        graphs = make_workload(spec)
        responses = serve_many(graphs, config=_quick_config())
        for g, resp in zip(graphs, responses):
            assert resp.status is RequestStatus.OK
            assert np.array_equal(resp.labels, _oracle(g))

    def test_degenerate_inputs(self):
        empty_dense = np.zeros((0, 0), dtype=np.int8)
        single = np.zeros((1, 1), dtype=np.int8)
        empty_sparse = EdgeListGraph(
            n=0,
            src=np.empty(0, dtype=np.int64),
            dst=np.empty(0, dtype=np.int64),
        )
        edgeless = EdgeListGraph(
            n=3,
            src=np.empty(0, dtype=np.int64),
            dst=np.empty(0, dtype=np.int64),
        )
        responses = serve_many(
            [empty_dense, single, empty_sparse, edgeless],
            config=_quick_config(),
        )
        assert [r.status for r in responses] == [RequestStatus.OK] * 4
        assert responses[0].labels.shape == (0,)
        assert np.array_equal(responses[1].labels, [0])
        assert responses[2].labels.shape == (0,)
        assert np.array_equal(responses[3].labels, [0, 1, 2])

    def test_non_square_adjacency_rejected_at_submit(self):
        with Server(_quick_config()) as server:
            with pytest.raises(ValueError, match="square"):
                server.submit(np.zeros((3, 4), dtype=np.int8))

    def test_batched_responses_report_occupancy(self):
        graphs = [random_edge_list(8, 16, seed=s) for s in range(30)]
        responses = serve_many(graphs, config=_quick_config())
        assert max(r.batch_size for r in responses) > 1
        assert all(r.engine is not None for r in responses)


class TestBackpressure:
    def test_shed_policy_resolves_shed(self):
        config = _quick_config(max_queue=1, admission="shed", max_wait=5.0)
        with Server(config) as server:
            first = server.submit(random_edge_list(8, 16, seed=0))
            handles = [server.submit(random_edge_list(8, 16, seed=s))
                       for s in range(8)]
            statuses = [h.response(timeout=10.0).status
                        for h in [first, *handles]]
        assert RequestStatus.SHED in statuses
        assert server.metrics.shed > 0
        snap = server.metrics_snapshot()
        assert snap["counters"]["shed"] == server.metrics.shed

    def test_fail_policy_raises_queue_full(self):
        config = _quick_config(max_queue=1, admission="fail", max_wait=5.0)
        with Server(config) as server:
            server.submit(random_edge_list(8, 16, seed=0))
            with pytest.raises(QueueFull):
                for s in range(8):
                    server.submit(random_edge_list(8, 16, seed=s))

    def test_block_policy_eventually_admits(self):
        config = _quick_config(max_queue=2, admission="block")
        graphs = [random_edge_list(8, 16, seed=s) for s in range(12)]
        responses = serve_many(graphs, config=config)
        assert all(r.status is RequestStatus.OK for r in responses)


def _slow_engines(monkeypatch, seconds: float) -> None:
    """Patch every execution backend to sleep before solving, so a
    single worker can be saturated deterministically."""
    real_coalesced = server_module.solve_coalesced
    real_solo = server_module.solve_solo

    def slow_coalesced(graphs, engine="contracting"):
        time.sleep(seconds)
        return real_coalesced(graphs, engine)

    def slow_solo(graph, engine):
        time.sleep(seconds)
        return real_solo(graph, engine)

    monkeypatch.setattr(server_module, "solve_coalesced", slow_coalesced)
    monkeypatch.setattr(server_module, "solve_solo", slow_solo)


class TestDeadlines:
    def test_expired_deadline_resolves_timeout(self, monkeypatch):
        # the lone worker is busy for far longer than the victim's
        # budget, so the victim expires while queued and must resolve
        # TIMEOUT without ever running an engine
        _slow_engines(monkeypatch, 0.08)
        config = _quick_config()
        with Server(config) as server:
            blocker = server.submit(random_edge_list(8, 16, seed=0))
            time.sleep(0.02)  # let the blocker reach the worker
            victim = server.submit(random_edge_list(16, 32, seed=1),
                                   deadline=0.01)
            resp = victim.response(timeout=10.0)
            assert blocker.response(timeout=10.0).status is RequestStatus.OK
        assert resp.status is RequestStatus.TIMEOUT
        assert server.metrics.timed_out >= 1
        assert server.metrics.deadline_misses >= 1

    def test_default_deadline_applies(self, monkeypatch):
        _slow_engines(monkeypatch, 0.08)
        config = _quick_config(default_deadline=0.01)
        with Server(config) as server:
            server.submit(random_edge_list(8, 16, seed=0))
            time.sleep(0.02)
            handle = server.submit(random_edge_list(16, 32, seed=1))
            resp = handle.response(timeout=10.0)
        assert resp.status is RequestStatus.TIMEOUT

    def test_generous_deadline_is_met(self):
        responses = serve_many(
            [random_edge_list(8, 16, seed=s) for s in range(10)],
            deadline=30.0,
            config=_quick_config(),
        )
        assert all(r.status is RequestStatus.OK for r in responses)
        assert not any(r.deadline_missed for r in responses)


class TestOverload:
    def test_overload_exercises_shed_and_misses(self, monkeypatch):
        """The acceptance overload scenario: offered load far beyond
        service capacity must exercise both the shed counter and the
        deadline-miss counter, while everything actually served stays
        correct."""
        _slow_engines(monkeypatch, 0.02)  # capacity ~50 batches/second
        config = _quick_config(max_queue=4, admission="shed")
        graphs = make_workload(LoadSpec(count=60, sizes=(16, 32), seed=11))
        with Server(config) as server:
            handles = run_open_loop(server, graphs, offered_rps=100_000.0,
                                    deadline=0.03)
            responses = [h.response(timeout=30.0) for h in handles]
        statuses = {r.status for r in responses}
        snap = server.metrics_snapshot()
        assert snap["counters"]["shed"] > 0
        assert RequestStatus.SHED in statuses
        assert (snap["counters"]["deadline_misses"] > 0
                or snap["counters"]["timed_out"] > 0)
        # whatever was served is still correct
        for g, r in zip(graphs, responses):
            if r.status is RequestStatus.OK:
                assert np.array_equal(r.labels, _oracle(g))


class TestCancellation:
    def test_cancel_queued_request(self):
        config = _quick_config(max_wait=0.5)
        with Server(config) as server:
            handle = server.submit(random_edge_list(8, 16, seed=0))
            assert handle.cancel()
            resp = handle.response(timeout=10.0)
        assert resp.status is RequestStatus.CANCELLED
        assert server.metrics.cancelled >= 1

    def test_stop_without_drain_cancels_queued(self):
        config = _quick_config(max_wait=5.0)
        server = Server(config).start()
        handles = [server.submit(random_edge_list(8, 16, seed=s))
                   for s in range(4)]
        server.stop(drain=False)
        statuses = {h.response(timeout=10.0).status for h in handles}
        assert statuses <= {RequestStatus.CANCELLED, RequestStatus.OK}
        assert RequestStatus.CANCELLED in statuses


class TestDrain:
    def test_graceful_drain_serves_everything_queued(self):
        config = _quick_config(max_wait=0.2)
        server = Server(config).start()
        graphs = [random_edge_list(8, 16, seed=s) for s in range(50)]
        handles = [server.submit(g) for g in graphs]
        assert server.stop(drain=True)
        for g, h in zip(graphs, handles):
            resp = h.response(timeout=0)  # already resolved by the drain
            assert resp.status is RequestStatus.OK
            assert np.array_equal(resp.labels, _oracle(g))
        assert server.queue_depth == 0
        assert server.in_flight == 0


class TestRetries:
    def test_engine_failure_retried_then_ok(self, monkeypatch):
        calls = {"count": 0}
        real = server_module.solve_solo

        def flaky(graph, engine):
            calls["count"] += 1
            if calls["count"] == 1:
                raise RuntimeError("transient engine failure")
            return real(graph, engine)

        monkeypatch.setattr(server_module, "solve_solo", flaky)
        g = random_edge_list(8, 16, seed=0)
        with Server(_quick_config(retries=1, coalesce_units=1)) as server:
            resp = server.submit(g).response(timeout=10.0)
        assert resp.status is RequestStatus.OK
        assert resp.attempts == 2
        assert np.array_equal(resp.labels, _oracle(g))
        assert server.metrics.retries >= 1

    def test_exhausted_retries_resolve_error(self, monkeypatch):
        def broken(graph, engine):
            raise RuntimeError("permanent failure")

        monkeypatch.setattr(server_module, "solve_solo", broken)
        with Server(_quick_config(retries=1, coalesce_units=1)) as server:
            resp = server.submit(
                random_edge_list(8, 16, seed=0)
            ).response(timeout=10.0)
        assert resp.status is RequestStatus.ERROR
        assert "permanent failure" in resp.error

    def test_batch_failure_falls_back_to_solo(self, monkeypatch):
        def broken_coalesce(graphs, engine="contracting"):
            raise RuntimeError("union solver crashed")

        monkeypatch.setattr(server_module, "solve_coalesced",
                            broken_coalesce)
        graphs = [random_edge_list(8, 16, seed=s) for s in range(6)]
        responses = serve_many(graphs, config=_quick_config(retries=1))
        for g, resp in zip(graphs, responses):
            assert resp.status is RequestStatus.OK
            assert np.array_equal(resp.labels, _oracle(g))


class TestProcessPool:
    def test_large_sparse_request_uses_pool(self):
        config = _quick_config(
            process_workers=1, sparse_process_units=100,
        )
        g = random_edge_list(200, 400, seed=0)
        with Server(config) as server:
            resp = server.submit(g).response(timeout=60.0)
        assert resp.status is RequestStatus.OK
        assert np.array_equal(resp.labels, _oracle(g))


class TestServeManyAndLoadgen:
    def test_serve_many_preserves_input_order(self):
        graphs = [random_edge_list(8, 16, seed=s) for s in range(12)]
        ids = [f"job-{i}" for i in range(len(graphs))]
        with Server(_quick_config()) as server:
            handles = [
                server.submit(g, request_id=rid)
                for g, rid in zip(graphs, ids)
            ]
            responses = [h.response(timeout=10.0) for h in handles]
        assert [r.request_id for r in responses] == ids

    def test_closed_loop_resolves_everything(self):
        graphs = make_workload(LoadSpec(count=40, sizes=(8, 16), seed=5))
        with Server(_quick_config()) as server:
            handles = run_closed_loop(server, graphs, concurrency=4)
            responses = [h.response(timeout=30.0) for h in handles]
        assert len(responses) == len(graphs)
        assert all(r.status is RequestStatus.OK for r in responses)

    def test_submit_request_front_end(self):
        g = random_edge_list(8, 16, seed=0)
        with Server(_quick_config()) as server:
            handle = server.submit_request(CCRequest(graph=g))
            assert np.array_equal(handle.result(timeout=10.0), _oracle(g))

    def test_poisson_arrivals_are_seeded_and_monotone(self):
        from repro.serve.loadgen import poisson_arrivals

        a = poisson_arrivals(100, offered_rps=500.0, seed=42)
        b = poisson_arrivals(100, offered_rps=500.0, seed=42)
        c = poisson_arrivals(100, offered_rps=500.0, seed=43)
        assert np.array_equal(a, b)           # explicit seed: reproducible
        assert not np.array_equal(a, c)
        assert np.all(np.diff(a) > 0)         # cumulative offsets
        assert a.shape == (100,)
        # mean inter-arrival ~ 1/rate
        assert np.diff(a).mean() == pytest.approx(1 / 500.0, rel=0.5)

    def test_poisson_arrivals_validates_inputs(self):
        from repro.serve.loadgen import poisson_arrivals

        with pytest.raises(ValueError, match="offered_rps"):
            poisson_arrivals(10, offered_rps=0.0, seed=0)
        with pytest.raises(ValueError, match="count"):
            poisson_arrivals(-1, offered_rps=1.0, seed=0)
        assert poisson_arrivals(0, offered_rps=1.0, seed=0).size == 0

    def test_workload_duplicate_fraction(self):
        spec = LoadSpec(count=200, sizes=(8, 16), duplicate_fraction=0.5,
                        seed=3)
        graphs = make_workload(spec)
        unique = len({id(g) for g in graphs})
        assert unique < len(graphs)  # repeats present by identity
        no_dup = make_workload(LoadSpec(count=200, sizes=(8, 16), seed=3))
        assert len({id(g) for g in no_dup}) == len(no_dup)


class TestObservability:
    def test_snapshot_has_gauges_and_counters(self):
        with Server(_quick_config()) as server:
            server.submit(random_edge_list(8, 16, seed=0)).response(
                timeout=10.0
            )
            snap = server.metrics_snapshot()
        assert snap["gauges"]["state"] == "running"
        assert snap["counters"]["completed"] == 1
        assert snap["latency"]["count"] == 1
        assert snap["throughput_rps"] > 0
