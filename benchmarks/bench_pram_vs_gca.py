"""E8 -- GCA vs PRAM vs sequential: the cost-model discussion (Sec. 1/3).

The paper's conceptual claim: the GCA trades PRAM work-optimality for
hardware simplicity -- with ``n^2`` cells the parallel time is
``O(log^2 n)``, the work is ``Theta(n^2 log^2 n)`` (NOT work-optimal),
and that is fine because in an FPGA the cells cost little more than the
``n^2`` memory any implementation needs.

This bench runs all three models on the same graphs and tabulates
time / PEs / work / memory / congestion; expected shape: GCA and PRAM tie
on asymptotic time (polylog) and lose on work, sequential wins work and
loses time, with the gap widening as n grows.  It also measures Brent
scheduling (fewer processors -> proportionally more time, same work) and
the CROW-sufficiency claim.
"""

import numpy as np
import pytest

from repro.analysis import (
    compare_models,
    predicted_comparison,
    render_model_comparison,
)
from repro.analysis.complexity import pram_work_optimal_processors
from repro.graphs.components import canonical_labels
from repro.graphs.generators import random_graph
from repro.hirschberg.pram_impl import hirschberg_on_pram
from repro.pram import AccessMode

SIZES = [4, 8, 16]


class TestPramVsGca:
    def test_report(self, record_report):
        parts = []
        for n in SIZES:
            rows = compare_models(random_graph(n, 0.3, seed=n))
            assert all(r.labels_correct for r in rows)
            parts.append(render_model_comparison(rows))
        for n in (256, 4096):
            parts.append(render_model_comparison(predicted_comparison(n)))
        record_report("pram_vs_gca", "\n\n".join(parts))

    @pytest.mark.parametrize("n", SIZES)
    def test_who_wins_what(self, n):
        rows = {r.model: r for r in compare_models(random_graph(n, 0.3, seed=n))}
        # parallel models win time once log^2 n < n^2 kicks in (n >= 8;
        # at n = 4 the 29 generations still exceed the 16 sequential ops
        # -- the crossover itself is part of the reproduced shape)
        if n >= 8:
            assert rows["gca"].time_units < rows["sequential"].time_units
        # sequential wins work at every size
        assert rows["sequential"].work <= rows["gca"].work
        assert rows["sequential"].work <= rows["pram"].work

    def test_gap_widens_asymptotically(self):
        small = {r.model: r for r in predicted_comparison(16)}
        large = {r.model: r for r in predicted_comparison(4096)}
        small_gap = small["sequential"].time_units / small["gca"].time_units
        large_gap = large["sequential"].time_units / large["gca"].time_units
        assert large_gap > 100 * small_gap

    def test_brent_tradeoff(self):
        n = 8
        g = random_graph(n, 0.3, seed=0)
        full = hirschberg_on_pram(g, processors=n * n)
        few = hirschberg_on_pram(g, processors=pram_work_optimal_processors(n))
        assert few.work == full.work
        assert few.time > full.time
        assert np.array_equal(few.labels, full.labels)

    def test_crow_sufficiency(self):
        g = random_graph(8, 0.3, seed=1)
        res = hirschberg_on_pram(g, mode=AccessMode.CROW)
        assert np.array_equal(res.labels, canonical_labels(g))


class TestPramVsGcaBenchmarks:
    @pytest.mark.parametrize("n", [4, 8])
    def test_pram_simulation(self, benchmark, n):
        graph = random_graph(n, 0.3, seed=n)
        benchmark(lambda: hirschberg_on_pram(graph))

    @pytest.mark.parametrize("n", [8, 16])
    def test_model_comparison(self, benchmark, n):
        graph = random_graph(n, 0.3, seed=n)
        benchmark(lambda: compare_models(graph))
