"""E5 -- the total-generation bound: ``1 + log(n) * (3 log(n) + 8)``.

Section 3 claims the complete algorithm runs in this many generations
(``O(log^2 n)`` on ``n(n+1)`` cells).  This bench executes real runs
across a sweep of ``n`` (powers of two and non-powers), counts generations
and joins them with the closed form.  Expected: exact equality everywhere,
with ``ceil(log2 n)`` substituted for ``log n``.
"""

import pytest

from repro.analysis import measured_total, predicted_total, render_totals
from repro.core.vectorized import run_vectorized
from repro.graphs.generators import path_graph, random_graph

MEASURED_SIZES = [2, 3, 4, 5, 8, 12, 16, 32, 64]
FORMULA_SIZES = [128, 256, 512]


class TestTotalGenerations:
    def test_report(self, record_report):
        rows = []
        for n in MEASURED_SIZES:
            res = run_vectorized(random_graph(n, 0.3, seed=n), record_access=True)
            rows.append(measured_total(n, res.access_log))
        for n in FORMULA_SIZES:  # closed form only, execution too large
            rows.append(predicted_total(n))
        record_report("total_generations", render_totals(rows))
        assert all(r.matches for r in rows)

    def test_graph_independence(self):
        """The count is oblivious: identical on the empty and the path
        graph."""
        n = 16
        empty = run_vectorized(random_graph(n, 0.0, seed=0), record_access=True)
        chain = run_vectorized(path_graph(n), record_access=True)
        assert empty.total_generations == chain.total_generations

    def test_log_squared_growth(self):
        """Doubling n adds Theta(log n) generations -- quadratic in the
        logarithm, not in n."""
        totals = {n: predicted_total(n).predicted_total for n in (64, 128, 256)}
        assert totals[128] - totals[64] == 3 * (2 * 7 - 1) + 8  # (3k^2+8k)' at k=7
        assert totals[256] - totals[128] < totals[128]


class TestTotalGenerationsBenchmarks:
    @pytest.mark.parametrize("n", [16, 64, 128])
    def test_full_run(self, benchmark, n):
        graph = random_graph(n, 0.1, seed=n)
        benchmark(lambda: run_vectorized(graph))

    def test_closed_form(self, benchmark):
        benchmark(lambda: [predicted_total(n) for n in range(2, 300)])
