"""E7 -- the replication/rotation congestion optimisation (Section 4).

The paper: replicating arrays C and T per row (rotated by i positions in
row i) "gets congestion down to 1", at the price of "extended cells in all
places".  This ablation quantifies the trade on measured runs: total
hardware cycles under serialised reads vs tree distribution vs
replication, against the extra register bits and cell upgrades.

Expected shape: replication collapses every generation to 1 cycle (total
cycles = generation count); the serial strategy pays ~n cycles for each
broadcast generation; tree distribution sits at ~log n -- while
replication costs 2 n^2 w extra register bits and upgrades all n(n+1)
cells to extended.
"""

import pytest

from repro.core.machine import connected_components_interpreter
from repro.core.vectorized import run_vectorized
from repro.graphs.generators import complete_graph, random_graph
from repro.hardware import ReadStrategy, ablation, run_cycles
from repro.util.formatting import render_table

SIZES = [4, 8, 16]


def measured_log(n: int):
    if n <= 8:
        return connected_components_interpreter(
            random_graph(n, 0.4, seed=n)
        ).access_log
    return run_vectorized(
        random_graph(n, 0.4, seed=n), record_access=True
    ).access_log


class TestReplicationAblation:
    def test_report(self, record_report):
        rows = []
        for n in SIZES:
            log = measured_log(n)
            for r in ablation(log, n):
                rows.append(
                    [n, r.strategy.value, log.total_generations,
                     r.total_cycles, r.extra_register_bits, r.extended_cells]
                )
        record_report(
            "replication_ablation",
            render_table(
                ["n", "strategy", "generations", "cycles",
                 "extra reg bits", "extended cells"],
                rows,
                title="Replication ablation (Section 4 discussion)",
            ),
        )

    @pytest.mark.parametrize("n", SIZES)
    def test_replication_reaches_congestion_one(self, n):
        log = measured_log(n)
        assert run_cycles(log, ReadStrategy.REPLICATED) == log.total_generations

    @pytest.mark.parametrize("n", SIZES)
    def test_strategy_ordering(self, n):
        log = measured_log(n)
        serial = run_cycles(log, ReadStrategy.SERIAL)
        tree = run_cycles(log, ReadStrategy.TREE)
        replicated = run_cycles(log, ReadStrategy.REPLICATED)
        assert serial >= tree >= replicated

    def test_speedup_grows_with_n(self):
        """The serial/replicated cycle ratio grows with n: congestion of
        the broadcast generations is Theta(n) while their count is fixed."""
        ratios = []
        for n in (4, 16):
            log = run_vectorized(complete_graph(n), record_access=True).access_log
            ratios.append(
                run_cycles(log, ReadStrategy.SERIAL)
                / run_cycles(log, ReadStrategy.REPLICATED)
            )
        assert ratios[1] > ratios[0]


class TestReplicationBenchmarks:
    @pytest.mark.parametrize("strategy", list(ReadStrategy))
    def test_cycle_accounting(self, benchmark, strategy):
        log = run_vectorized(random_graph(16, 0.3, seed=1), record_access=True).access_log
        benchmark(lambda: run_cycles(log, strategy))
