"""E15 (extension) -- the generated Verilog design (Section 4 artifact).

"The design was described in Verilog and synthesized for an ALTERA
CYCLONE II FPGA."  The generator in :mod:`repro.hardware.verilog` emits
that design; this bench archives the n = 4 source as a report, checks the
structural invariants that tie it to the cost model (cell split, mux
arity, register width, 12 controller states), and times the generation.
"""

import pytest

from repro.hardware.cells import CellKind, count_cells
from repro.hardware.verilog import design_statistics, generate_verilog
from repro.util.formatting import render_table


class TestVerilogDesign:
    def test_report(self, record_report):
        design = generate_verilog(4)
        stats = design_statistics(design)
        header = render_table(
            ["metric", "value"],
            [[k, v] for k, v in sorted(stats.items())],
            title="Generated Verilog design, n = 4 (structural statistics)",
        )
        record_report("verilog_design", header + "\n\n" + design.source)

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_structure_tracks_cost_model(self, n):
        stats = design_statistics(generate_verilog(n))
        counts = count_cells(n)
        assert stats["standard_instances"] == counts[CellKind.STANDARD]
        assert stats["extended_instances"] == counts[CellKind.EXTENDED]
        assert stats["modules"] == 4

    def test_source_growth(self, record_report):
        rows = []
        for n in (2, 4, 8, 16):
            stats = design_statistics(generate_verilog(n))
            rows.append([n, n * (n + 1), stats["lines"]])
        record_report(
            "verilog_scaling",
            render_table(
                ["n", "cells", "verilog lines"],
                rows,
                title="Generated design size vs field size",
            ),
        )


class TestVerilogBenchmarks:
    @pytest.mark.parametrize("n", [4, 16])
    def test_generation(self, benchmark, n):
        benchmark(lambda: generate_verilog(n))
