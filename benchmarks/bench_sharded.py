"""E25 -- out-of-core sharded engine: 10^8 edges under a fixed RAM budget.

Exercises :func:`repro.hirschberg.sharded.connected_components_sharded`
on synthetic edge streams that are **never materialised in RAM** (chunks
are generated on the fly, partitioned to disk, and solved shard by
shard), and records three things the in-RAM benches cannot:

* **capacity** -- the full run solves a 100M-edge graph under a resident
  budget *smaller than the raw edge list* (16 bytes/edge = 1.6 GB of
  pairs vs a 1.0 GiB budget), with the realized peak RSS (parent plus
  any worker processes, polled) asserted against the budget;
* **verification at scale** -- rungs small enough for the Python
  union-find oracle are checked exactly; the 10^8 rung is verified by
  the sampled spot-check protocol
  (:func:`repro.analysis.shards.spot_check_labels`), whose own
  error-catching power is property-tested in
  ``tests/analysis/test_shards.py``;
* **shard scaling** -- wall time of the same problem at 1, 2 and 4
  pooled workers.  On hosts with 4+ cores the k=4 efficiency must reach
  0.7x of ideal; on smaller hosts the numbers are recorded honestly
  with ``enforced: false`` and the reason.

The committed ``BENCH_sharded.json`` doubles as CI's baseline: the smoke
variant re-runs the shared first rung and fails on a >3x throughput drop
(``--check``).

Run standalone (CI runs the smoke variant)::

    python benchmarks/bench_sharded.py              # full ladder (slow)
    python benchmarks/bench_sharded.py --smoke
    python benchmarks/bench_sharded.py --smoke --check BENCH_sharded.json

or via pytest (report + timed benchmark)::

    pytest benchmarks/bench_sharded.py --benchmark-disable
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without an installed package
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.graphs.union_find import UnionFind
from repro.hirschberg.sharded import connected_components_sharded

#: The rungs.  ``budget`` is the resident byte budget; the first rung is
#: shared with ``--smoke`` so the committed full report contains the
#: baseline point CI's smoke ``--check`` compares against.  The last
#: rung is the capacity claim: raw pairs (16 bytes/edge) exceed the
#: budget, so an in-RAM solve of the stream is impossible by
#: construction and the peak-RSS assertion is meaningful.
FULL_POINTS = (
    {"n": 50_000, "m": 200_000, "budget": 64 << 20},
    {"n": 1_000_000, "m": 10_000_000, "budget": 256 << 20},
    {"n": 5_000_000, "m": 100_000_000, "budget": 1 << 30,
     "assert_rss": True},
)
SMOKE_POINTS = (FULL_POINTS[0],)

#: Largest n still verified against the union-find oracle (Python loop).
ORACLE_MAX_N = 60_000

#: ``--check`` fails when throughput drops below baseline/3.
CHECK_FACTOR = 3.0

#: Shard-scaling acceptance: k=4 must reach this fraction of ideal
#: speedup -- enforced only on hosts with at least 4 cores.
SCALING_THRESHOLD = 0.7
SCALING_WORKERS = (1, 2, 4)
SCALING_POINT = {"n": 500_000, "m": 4_000_000, "budget": 256 << 20,
                 "shards": 8}

#: Edges per generated chunk (32 MiB of pairs in flight at a time).
GEN_CHUNK = 1 << 21

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_sharded.json"


def edge_chunks(n: int, m: int, seed: int):
    """Deterministic synthetic edge stream, never materialised whole."""
    for index, start in enumerate(range(0, m, GEN_CHUNK)):
        count = min(GEN_CHUNK, m - start)
        rng = np.random.default_rng((seed, index))
        yield (rng.integers(0, n, size=count, dtype=np.int64),
               rng.integers(0, n, size=count, dtype=np.int64))


class PeakRssTracker:
    """Polls the resident set of this process *and its children* (the
    forked shard workers) and keeps the peak of the sum -- ``VmHWM``
    alone would miss the workers and carry history from earlier rungs."""

    def __init__(self, interval: float = 0.02):
        self.interval = interval
        self.peak = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, daemon=True)

    @staticmethod
    def _rss_of(pid: int) -> int:
        try:
            with open(f"/proc/{pid}/status") as handle:
                for line in handle:
                    if line.startswith("VmRSS:"):
                        return int(line.split()[1]) * 1024
        except (OSError, ValueError, IndexError):
            pass
        return 0

    @staticmethod
    def _child_pids() -> List[int]:
        pids: List[int] = []
        task_dir = f"/proc/{os.getpid()}/task"
        try:
            for tid in os.listdir(task_dir):
                with open(f"{task_dir}/{tid}/children") as handle:
                    pids.extend(int(p) for p in handle.read().split())
        except (OSError, ValueError):
            pass
        return pids

    def _sample(self) -> int:
        total = self._rss_of(os.getpid())
        for pid in self._child_pids():
            total += self._rss_of(pid)
        return total

    def _loop(self) -> None:
        while not self._stop.is_set():
            self.peak = max(self.peak, self._sample())
            self._stop.wait(self.interval)

    def __enter__(self) -> "PeakRssTracker":
        self.peak = self._sample()
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join()
        self.peak = max(self.peak, self._sample())


def run_point(point: Dict, seed: int = 0, repeats: int = 1) -> Dict:
    """Solve one rung from a streamed source; verify, then report."""
    n, m, budget = point["n"], point["m"], point["budget"]
    best = float("inf")
    result = None
    peak = 0
    for _ in range(max(1, repeats)):
        tracker = PeakRssTracker()
        start = time.perf_counter()
        with tracker:
            result = connected_components_sharded(
                (n, edge_chunks(n, m, seed)),
                edges_hint=m,
                memory_budget=budget,
                shards=point.get("shards"),
                spot_check=True,
                spot_check_seed=seed,
            )
        best = min(best, time.perf_counter() - start)
        peak = max(peak, tracker.peak)
    assert result.spot_check is not None and result.spot_check.ok, (
        f"spot check failed at n={n}, m={m}: {result.spot_check.violations}"
    )
    oracle_checked = n <= ORACLE_MAX_N
    if oracle_checked:
        uf = UnionFind(n)
        for u, v in edge_chunks(n, m, seed):
            for a, b in zip(u.tolist(), v.tolist()):
                uf.union(a, b)
        assert np.array_equal(result.labels, uf.canonical_labels()), (
            f"sharded labels diverged from the union-find oracle at n={n}"
        )
    raw_bytes = 16 * m
    entry = {
        "n": n,
        "m": m,
        "budget_bytes": budget,
        "raw_edge_bytes": raw_bytes,
        "out_of_core": raw_bytes > budget,
        "shards": result.plan.shards,
        "seconds": best,
        "edges_per_sec": m / best,
        "peak_rss_bytes": peak,
        "rss_within_budget": peak <= budget,
        "merge_passes": result.merge_passes,
        "frontier_pairs": result.frontier_pairs,
        "components": result.components,
        "spot_check_ok": True,
        "oracle_checked": oracle_checked,
    }
    if point.get("assert_rss"):
        assert raw_bytes > budget, (
            "capacity rung misconfigured: raw edges fit the budget"
        )
        assert peak <= budget, (
            f"peak RSS {peak} exceeded the {budget}-byte budget at n={n}"
        )
    return entry


def run_scaling(seed: int = 0) -> Dict:
    """Wall time of one fixed problem at 1, 2 and 4 pooled workers."""
    cores = os.cpu_count() or 1
    n, m = SCALING_POINT["n"], SCALING_POINT["m"]
    timings = []
    for workers in SCALING_WORKERS:
        start = time.perf_counter()
        result = connected_components_sharded(
            (n, edge_chunks(n, m, seed)),
            edges_hint=m,
            memory_budget=SCALING_POINT["budget"],
            shards=SCALING_POINT["shards"],
            workers=workers,
        )
        seconds = time.perf_counter() - start
        timings.append({
            "workers": workers,
            "shards": result.plan.shards,
            "seconds": seconds,
        })
    base = timings[0]["seconds"]
    for entry in timings:
        entry["speedup"] = base / entry["seconds"]
        entry["efficiency"] = entry["speedup"] / entry["workers"]
    enforced = cores >= 4
    doc = {
        "point": dict(SCALING_POINT),
        "cores": cores,
        "threshold": SCALING_THRESHOLD,
        "enforced": enforced,
        "results": timings,
    }
    if not enforced:
        doc["reason"] = (
            f"host has {cores} core(s); worker scaling is not measurable "
            "below 4 cores, numbers recorded unenforced"
        )
    return doc


def build_report(points: Sequence[Dict], repeats: int = 1,
                 seed: int = 0, scaling: bool = True) -> Dict:
    """The full machine-readable benchmark document."""
    results = [run_point(p, seed=seed, repeats=repeats) for p in points]
    doc = {
        "benchmark": "sharded",
        "config": {
            "points": [
                {k: v for k, v in p.items()} for p in points
            ],
            "repeats": repeats,
            "seed": seed,
        },
        "results": results,
    }
    if scaling:
        doc["shard_scaling"] = run_scaling(seed=seed)
    return doc


def validate_report(doc: Dict) -> None:
    """Raise ``ValueError`` unless ``doc`` is a well-formed report."""
    for key in ("benchmark", "config", "results"):
        if key not in doc:
            raise ValueError(f"report missing key {key!r}")
    if doc["benchmark"] != "sharded":
        raise ValueError(f"unexpected benchmark id {doc['benchmark']!r}")
    if len(doc["results"]) != len(doc["config"]["points"]):
        raise ValueError(
            f"expected {len(doc['config']['points'])} results, "
            f"got {len(doc['results'])}"
        )
    for r in doc["results"]:
        for field in ("n", "m", "budget_bytes", "seconds", "edges_per_sec",
                      "peak_rss_bytes", "shards"):
            value = r.get(field)
            if not isinstance(value, (int, float)) or value <= 0:
                raise ValueError(f"bad {field}={value!r} in results")
        if not r.get("spot_check_ok"):
            raise ValueError(f"unverified result at n={r.get('n')}")
    scaling = doc.get("shard_scaling")
    if scaling is not None:
        if "enforced" not in scaling or "results" not in scaling:
            raise ValueError("malformed shard_scaling section")
        if not scaling["enforced"] and not scaling.get("reason"):
            raise ValueError("unenforced scaling needs a recorded reason")
        for entry in scaling["results"]:
            if entry.get("seconds", 0) <= 0:
                raise ValueError("bad scaling timing")


def check_against_baseline(doc: Dict, baseline: Dict,
                           factor: float = CHECK_FACTOR) -> List[str]:
    """Regression guard: throughput must stay within ``factor`` of the
    committed baseline on every (n, m, budget) rung both reports share.

    Returns the list of violations (empty = pass).
    """
    base = {
        (r["n"], r["m"], r["budget_bytes"]): r["edges_per_sec"]
        for r in baseline.get("results", [])
    }
    problems = []
    overlap = False
    for r in doc["results"]:
        key = (r["n"], r["m"], r["budget_bytes"])
        if key not in base:
            continue
        overlap = True
        if r["edges_per_sec"] * factor < base[key]:
            problems.append(
                f"{key}: {r['edges_per_sec']:.0f} edges/s is more than "
                f"{factor:.0f}x below baseline {base[key]:.0f}"
            )
    if not overlap:
        problems.append("no overlapping (n, m, budget) rungs with baseline")
    return problems


def render(doc: Dict) -> str:
    lines = [
        "Sharded out-of-core engine (repeats={repeats}, seed={seed})".format(
            **doc["config"]
        ),
        f"{'n':>9} | {'m':>11} | {'budget':>8} | {'shards':>6} "
        f"| {'seconds':>9} | {'edges/s':>11} | {'peak RSS':>9} | ooc",
        "-" * 88,
    ]
    for r in doc["results"]:
        lines.append(
            f"{r['n']:>9} | {r['m']:>11} | {r['budget_bytes'] >> 20:>6}M "
            f"| {r['shards']:>6} | {r['seconds']:>9.3f} "
            f"| {r['edges_per_sec']:>11.0f} "
            f"| {r['peak_rss_bytes'] >> 20:>7}M "
            f"| {'yes' if r['out_of_core'] else 'no'}"
        )
    scaling = doc.get("shard_scaling")
    if scaling is not None:
        lines.append("")
        state = ("enforced" if scaling["enforced"]
                 else f"not enforced ({scaling.get('reason', '')})")
        lines.append(
            f"shard scaling on {scaling['cores']} core(s), "
            f"threshold {scaling['threshold']:.1f}x ideal -- {state}"
        )
        for entry in scaling["results"]:
            lines.append(
                f"  workers={entry['workers']}: {entry['seconds']:.3f}s, "
                f"speedup {entry['speedup']:.2f}x, "
                f"efficiency {entry['efficiency']:.2f}"
            )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="first rung only, no scaling section (CI-fast)")
    parser.add_argument("--scaling-only", action="store_true",
                        help="run just the shard-scaling section and "
                             "enforce the per-core efficiency bar on "
                             "4+ core hosts (CI scaling gate)")
    parser.add_argument("--repeats", type=int, default=1,
                        help="timing repeats (best-of)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--check", type=Path, default=None, metavar="BASELINE",
                        help="compare against a committed report; exit 1 on "
                             f"a >{CHECK_FACTOR:.0f}x throughput drop")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT.name})")
    args = parser.parse_args(argv)

    if args.scaling_only:
        scaling = run_scaling(seed=args.seed)
        state = ("enforced" if scaling["enforced"]
                 else f"not enforced ({scaling.get('reason', '')})")
        print(f"shard scaling on {scaling['cores']} core(s), "
              f"threshold {scaling['threshold']:.1f}x ideal -- {state}")
        for entry in scaling["results"]:
            print(f"  workers={entry['workers']}: {entry['seconds']:.3f}s, "
                  f"speedup {entry['speedup']:.2f}x, "
                  f"efficiency {entry['efficiency']:.2f}")
        if scaling["enforced"]:
            worst = [e for e in scaling["results"] if e["workers"] == 4]
            if worst and worst[0]["efficiency"] < scaling["threshold"]:
                print(
                    f"error: k=4 efficiency {worst[0]['efficiency']:.2f} "
                    f"below the {scaling['threshold']:.1f} threshold",
                    file=sys.stderr,
                )
                return 1
        return 0

    points = SMOKE_POINTS if args.smoke else FULL_POINTS
    doc = build_report(points, repeats=args.repeats, seed=args.seed,
                       scaling=not args.smoke)
    validate_report(doc)
    print(render(doc))

    args.out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\n[report saved to {args.out}]")
    json.loads(args.out.read_text())  # round-trip sanity

    if not args.smoke:
        capacity = doc["results"][-1]
        if not (capacity["out_of_core"] and capacity["rss_within_budget"]):
            print("error: capacity rung did not stay within its budget",
                  file=sys.stderr)
            return 1
        scaling = doc["shard_scaling"]
        if scaling["enforced"]:
            worst = [e for e in scaling["results"] if e["workers"] == 4]
            if worst and worst[0]["efficiency"] < scaling["threshold"]:
                print(
                    f"error: k=4 efficiency {worst[0]['efficiency']:.2f} "
                    f"below the {scaling['threshold']:.1f} threshold",
                    file=sys.stderr,
                )
                return 1
    if args.check is not None:
        baseline = json.loads(args.check.read_text())
        problems = check_against_baseline(doc, baseline)
        if problems:
            for problem in problems:
                print(f"error: perf regression: {problem}", file=sys.stderr)
            return 1
        print(f"check ok: within {CHECK_FACTOR:.0f}x of {args.check}")
    return 0


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------

class TestShardedBench:
    def test_report(self, record_report):
        doc = build_report(
            [{"n": 5_000, "m": 20_000, "budget": 16 << 20}],
            repeats=1, scaling=False,
        )
        validate_report(doc)
        record_report("sharded", render(doc))
        from benchmarks.conftest import RESULTS_DIR

        path = RESULTS_DIR / "sharded.json"
        path.write_text(json.dumps(doc, indent=2) + "\n")
        assert json.loads(path.read_text())["benchmark"] == "sharded"

    def test_validate_rejects_malformed(self):
        doc = build_report(
            [{"n": 1_000, "m": 3_000, "budget": 16 << 20}],
            repeats=1, scaling=False,
        )
        bad = json.loads(json.dumps(doc))
        bad["results"][0]["spot_check_ok"] = False
        try:
            validate_report(bad)
        except ValueError:
            pass
        else:
            raise AssertionError("validate_report accepted a malformed doc")

    def test_check_guard_catches_regression(self):
        doc = build_report(
            [{"n": 1_000, "m": 3_000, "budget": 16 << 20}],
            repeats=1, scaling=False,
        )
        assert check_against_baseline(doc, doc) == []
        slowed = json.loads(json.dumps(doc))
        for r in slowed["results"]:
            r["edges_per_sec"] /= 10.0
        assert check_against_baseline(slowed, doc)
        assert check_against_baseline(doc, {"results": []})


class TestShardedBenchmarks:
    def test_sharded_small(self, benchmark):
        from repro.hirschberg.edgelist import random_edge_list

        graph = random_edge_list(5_000, 15_000, seed=0)
        benchmark(lambda: connected_components_sharded(graph, shards=2))


if __name__ == "__main__":
    sys.exit(main())
