"""E20 (extension) -- the field as a semiring matrix fabric.

The CC field's access patterns (column broadcast, local combine, row tree
reduction) compose into semiring matrix-vector products: plus-times gives
integer ``M @ x``, or-and gives BFS frontier expansion, min-plus gives
shortest-path relaxation -- the "numerical algorithms" application class
of Section 1 on the *same* fabric, with the same generation budget
(``2 + log n`` per product).

The bench verifies each kernel against its oracle (NumPy / BFS / SciPy
dijkstra) and tabulates the generation budgets.
"""

import numpy as np
import pytest

from repro.gca.numerical import (
    gca_bfs_levels,
    gca_matvec,
    gca_sssp,
    generations_per_matvec,
)
from repro.graphs.generators import path_graph, random_graph
from repro.graphs.metrics import bfs_distances
from repro.util.formatting import render_table
from repro.util.rng import as_generator


class TestNumericalFabric:
    def test_report(self, record_report):
        rows = []
        for n in (4, 16, 64, 256):
            per = generations_per_matvec(n)
            g = path_graph(n)
            _levels, bfs_gens = gca_bfs_levels(g, 0)
            _dist, sssp_gens = gca_sssp(g.matrix, 0)
            rows.append([n, per, bfs_gens, sssp_gens])
        record_report(
            "numerical_fabric",
            render_table(
                ["n (path)", "gens/matvec (2+log n)",
                 "BFS total gens", "SSSP total gens"],
                rows,
                title="Semiring matrix fabric on the CC field",
            ),
        )

    @pytest.mark.parametrize("n", [8, 32])
    def test_all_semirings_correct(self, n):
        rng = as_generator(n)
        M = rng.integers(-9, 10, size=(n, n))
        x = rng.integers(-9, 10, size=n)
        assert np.array_equal(gca_matvec(M, x).vector, M.astype(np.int64) @ x)
        g = random_graph(n, 0.2, seed=n)
        levels, _ = gca_bfs_levels(g, 0)
        assert np.array_equal(levels, bfs_distances(g, 0))

    def test_budget_formula(self):
        for n in (2, 4, 8, 16, 256):
            from repro.util.intmath import ceil_log2

            assert generations_per_matvec(n) == 2 + ceil_log2(n)


class TestNumericalBenchmarks:
    @pytest.mark.parametrize("n", [64, 256])
    def test_matvec(self, benchmark, n):
        rng = as_generator(n)
        M = rng.integers(-5, 6, size=(n, n))
        x = rng.integers(-5, 6, size=n)
        benchmark(lambda: gca_matvec(M, x))

    @pytest.mark.parametrize("n", [32, 128])
    def test_bfs(self, benchmark, n):
        g = random_graph(n, 0.1, seed=n)
        benchmark(lambda: gca_bfs_levels(g, 0))

    def test_sssp(self, benchmark):
        rng = as_generator(0)
        n = 64
        W = rng.integers(0, 9, size=(n, n))
        W = np.triu(W, 1) + np.triu(W, 1).T
        benchmark(lambda: gca_sssp(W, 0))
