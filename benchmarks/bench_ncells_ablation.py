"""E10 (extension) -- the n-vs-n^2 cell design decision (Section 3).

"For this algorithm we decide between n and n^2 cells.  We have decided
for the n^2 case because we want to design and evaluate the GCA algorithm
with the highest degree of parallelism."

This ablation runs both designs and tabulates the trade the sentence
summarises: the n^2-cell design wins time (``O(log^2 n)`` vs
``O(n log n)`` generations) while the n-cell design wins cells and peak
congestion -- and *memory does not distinguish them* (both need the n^2
adjacency bits), which is the paper's core cost-model argument.
"""

import numpy as np
import pytest

from repro.core.row_machine import (
    RowGCA,
    memory_words,
    row_total_generations,
)
from repro.core.schedule import total_generations
from repro.core.vectorized import run_vectorized
from repro.graphs.components import canonical_labels
from repro.graphs.generators import random_graph
from repro.util.formatting import render_table

SIZES = [4, 8, 16, 32]


class TestNCellsAblation:
    def test_report(self, record_report):
        rows = []
        for n in SIZES:
            g = random_graph(n, 0.3, seed=n)
            square = run_vectorized(g, record_access=True)
            row = RowGCA(g).run()
            assert np.array_equal(square.labels, row.labels)
            words = memory_words(n)
            rows.append([
                n, "n^2 cells", n * (n + 1), square.total_generations,
                square.access_log.peak_congestion,
                words["n2_design_words"],
                words["n2_design_adjacency_bits"],
            ])
            rows.append([
                n, "n cells", n, row.total_generations,
                row.access_log.peak_congestion,
                words["row_design_words"],
                words["row_design_adjacency_bits"],
            ])
        record_report(
            "ncells_ablation",
            render_table(
                ["n", "design", "cells", "generations", "peak delta",
                 "state words", "adjacency bits"],
                rows,
                title="Design-decision ablation: n vs n^2 cells (Section 3)",
            ),
        )

    @pytest.mark.parametrize("n", SIZES)
    def test_both_designs_agree(self, n):
        g = random_graph(n, 0.3, seed=n)
        assert np.array_equal(
            RowGCA(g).run().labels, canonical_labels(g)
        )

    @pytest.mark.parametrize("n", SIZES)
    def test_square_design_faster(self, n):
        assert total_generations(n) < row_total_generations(n)

    def test_time_gap_grows(self):
        """Generations ratio grows ~n / log n."""
        ratios = [row_total_generations(n) / total_generations(n) for n in SIZES]
        assert ratios == sorted(ratios)

    def test_row_design_scan_congestion(self):
        """The n-cell design's scans run at congestion 1/2 -- no broadcast
        hotspots at all (its peak comes only from pointer jumping)."""
        res = RowGCA(random_graph(8, 0.3, seed=0)).run()
        scans = [s for s in res.access_log if "scan" in s.label]
        assert max(s.max_congestion for s in scans) <= 2


class TestNCellsBenchmarks:
    @pytest.mark.parametrize("n", [16, 64])
    def test_row_machine(self, benchmark, n):
        graph = random_graph(n, 0.2, seed=n)
        benchmark(lambda: RowGCA(graph, record_access=False).run())

    @pytest.mark.parametrize("n", [16, 64])
    def test_square_machine(self, benchmark, n):
        graph = random_graph(n, 0.2, seed=n)
        benchmark(lambda: run_vectorized(graph))
