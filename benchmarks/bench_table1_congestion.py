"""E1 -- Table 1: active cells, read accesses and congestion per generation.

Regenerates the paper's Table 1 for a sweep of field sizes: for each ``n``
the instrumented engine measures, per generation, the number of active
cells and the concurrent-read histogram, and the report joins them with
the paper's closed-form rows.  The timed benchmark measures the
instrumented runs themselves.

Expected reproduction (see EXPERIMENTS.md): generations 0-8 and 11 match
the paper's counts exactly; generation 3/7's read count is the exact
``n(n-1)`` where the paper rounds to ``(n-1)^2``; generation 9's activity
is ``n(n+1)`` against the paper's ``(n-1)^2`` (the paper's row ignores the
simultaneous ``D_N`` archive its own prose describes); generations 10/11
stay within the paper's worst-case delta = n.
"""

import pytest

from repro.analysis import compare_table1, render_table1
from repro.core.machine import connected_components_interpreter
from repro.core.vectorized import run_vectorized
from repro.graphs.generators import random_graph

SIZES = [4, 8, 16]
LARGE = 32


def _measure(n: int, fast: bool = False):
    graph = random_graph(n, 0.3, seed=n)
    if fast:
        return run_vectorized(graph, record_access=True).access_log
    return connected_components_interpreter(graph).access_log


class TestTable1Reproduction:
    @pytest.mark.parametrize("n", SIZES)
    def test_report(self, n, record_report):
        log = _measure(n)
        comparisons = compare_table1(n, log)
        record_report(f"table1_n{n}", render_table1(n, comparisons))
        # structural assertions: the matching generations must match
        by_gen = {c.generation: c for c in comparisons}
        for gen in (0, 1, 2, 4, 5, 6, 8, 11):
            assert by_gen[gen].active_matches, gen
        for c in comparisons:
            assert c.congestion_within_paper_bound, c.generation

    def test_report_large_vectorized(self, record_report):
        """At n = 32 the interpreter is slow; the vectorised accounting
        (verified equal to the interpreter's in the test-suite) scales."""
        log = _measure(LARGE, fast=True)
        comparisons = compare_table1(LARGE, log)
        record_report(f"table1_n{LARGE}", render_table1(LARGE, comparisons))


class TestTable1Benchmarks:
    @pytest.mark.parametrize("n", [4, 8])
    def test_instrumented_interpreter(self, benchmark, n):
        graph = random_graph(n, 0.3, seed=n)
        benchmark(lambda: connected_components_interpreter(graph))

    @pytest.mark.parametrize("n", [16, 32, 64])
    def test_instrumented_vectorized(self, benchmark, n):
        graph = random_graph(n, 0.3, seed=n)
        benchmark(lambda: run_vectorized(graph, record_access=True))
