"""E14 (extension) -- the GCA as a general parallel model.

The paper motivates the GCA with its breadth: "graph algorithms,
hypercube algorithms, logic simulation, numerical algorithms, ...".  This
bench exercises the algorithm library built on the generic engine
(reduction, prefix sums, list ranking, bitonic sort) and tabulates their
generation counts against the closed forms -- evidence that the engine,
not just the one mapped algorithm, reproduces the model.
"""

import pytest

from repro.gca.algorithms import (
    bitonic_generations,
    gca_bitonic_sort,
    gca_list_ranking,
    gca_prefix_sum,
    gca_reduce,
)
from repro.util.formatting import render_table
from repro.util.intmath import ceil_log2
from repro.util.rng import as_generator


def workload(n: int, seed: int = 0):
    rng = as_generator(seed)
    return rng.integers(-1000, 1000, size=n).tolist()


class TestAlgorithmLibrary:
    def test_report(self, record_report):
        rows = []
        for n in (8, 16, 64, 256):
            log = ceil_log2(n)
            rows.append(["reduce(min)", n, log, "log n"])
            rows.append(["prefix sum", n, log, "log n"])
            rows.append(["list ranking", n, log, "log n"])
            rows.append(
                ["bitonic sort", n, bitonic_generations(n), "log n (log n + 1)/2"]
            )
        record_report(
            "gca_algorithms",
            render_table(
                ["algorithm", "n", "generations", "closed form"],
                rows,
                title="GCA algorithm library: generation counts",
            ),
        )

    @pytest.mark.parametrize("n", [16, 64])
    def test_all_correct(self, n):
        values = workload(n)
        assert gca_reduce(values, "min") == min(values)
        assert gca_prefix_sum(values)[-1] == sum(values)
        assert gca_bitonic_sort(values) == sorted(values)
        chain = list(range(1, n)) + [n - 1]
        assert gca_list_ranking(chain)[0] == n - 1


class TestAlgorithmBenchmarks:
    @pytest.mark.parametrize("n", [64, 256])
    def test_reduce(self, benchmark, n):
        values = workload(n)
        benchmark(lambda: gca_reduce(values, "min"))

    @pytest.mark.parametrize("n", [64, 256])
    def test_prefix_sum(self, benchmark, n):
        values = workload(n)
        benchmark(lambda: gca_prefix_sum(values))

    @pytest.mark.parametrize("n", [64, 256])
    def test_bitonic_sort(self, benchmark, n):
        values = workload(n)
        benchmark(lambda: gca_bitonic_sort(values))

    def test_list_ranking(self, benchmark):
        chain = list(range(1, 256)) + [255]
        benchmark(lambda: gca_list_ranking(chain))
