"""E11 (extension) -- the time-multiplexed cost/performance frontier.

Models the multiprocessor GCA architecture of the paper's reference [4]
(p processing units evaluating the cell field round-robin from BRAM) and
sweeps the unit count: logic cost against run cycles.  Expected shape: a
genuine Pareto frontier -- cycles fall ~1/p until the per-generation
active-cell counts saturate, logic climbs linearly in p -- with the
fully-parallel Section 4 design as the fast/expensive endpoint.
"""

import pytest

from repro.core.schedule import total_generations
from repro.hardware.multiplexed import (
    best_cost_performance,
    estimate_multiplexed,
    frontier,
)
from repro.util.formatting import render_table

N = 16


class TestMultiplexedFrontier:
    def test_report(self, record_report):
        rows = []
        for point in frontier(N):
            rows.append([
                point.units, point.total_cycles,
                f"{point.logic_elements:,}", f"{point.bram_bits:,}",
                f"{point.register_bits:,}", f"{point.runtime_us:.2f}",
                f"{point.cost_performance:,.0f}",
            ])
        best = best_cost_performance(N)
        rows.append([f"best={best.units}", best.total_cycles, "-", "-", "-",
                     f"{best.runtime_us:.2f}", f"{best.cost_performance:,.0f}"])
        record_report(
            "multiplexed_frontier",
            render_table(
                ["units", "cycles", "logic elements", "BRAM bits",
                 "register bits", "runtime us", "LE x us"],
                rows,
                title=f"Time-multiplexed frontier, n = {N} (reference [4] model)",
            ),
        )

    def test_endpoints(self):
        full = estimate_multiplexed(N, N * (N + 1))
        assert full.total_cycles == total_generations(N)
        single = estimate_multiplexed(N, 1)
        assert single.total_cycles > 20 * full.total_cycles

    def test_pareto(self):
        points = frontier(N)
        for a, b in zip(points, points[1:]):
            assert b.total_cycles <= a.total_cycles
            assert b.logic_elements > a.logic_elements

    def test_sweet_spot_is_interior(self):
        """With LE x runtime as the metric, neither extreme wins: the
        broadcast generations keep few units busy, so full parallelism
        wastes logic, while one unit wastes time."""
        best = best_cost_performance(N)
        assert 1 < best.units < N * (N + 1)


class TestMultiplexedBenchmarks:
    @pytest.mark.parametrize("units", [1, 16, 272])
    def test_estimate(self, benchmark, units):
        benchmark(lambda: estimate_multiplexed(N, units))

    def test_frontier_sweep(self, benchmark):
        benchmark(lambda: frontier(N))
