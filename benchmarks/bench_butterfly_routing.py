"""E19 (extension) -- butterfly routing of the GCA's read patterns.

Section 1: "Concurrent reading can be handled in certain networks, in
particular butterfly networks, by special routing algorithms, e.g.
Ranade's algorithm."  This bench routes the measured per-generation read
patterns of a real CC run through a simulated butterfly, with and
without request combining, and tabulates the network cycles next to the
generation's congestion δ.

Expected shape: the broadcast generations (δ = n+1) serialise without
combining (≈ δ + log p cycles) but collapse to ≈ log p with combining;
the reduction generations (δ = 1) are network-bound (log p) either way.
"""

import pytest

from repro.core.machine import connected_components_interpreter
from repro.graphs.generators import random_graph
from repro.network.butterfly import ButterflyNetwork, route_read_pattern
from repro.util.formatting import render_table
from repro.util.intmath import ceil_log2, next_power_of_two

N = 8


def first_iteration_stats():
    log = connected_components_interpreter(random_graph(N, 0.4, seed=N)).access_log
    wanted = []
    for stats in log.generations:
        if stats.label == "gen0" or not stats.label.startswith("it0."):
            continue
        wanted.append(stats)
    return wanted


class TestButterflyRouting:
    def test_report(self, record_report):
        ports = next_power_of_two(N * (N + 1))
        rows = []
        for stats in first_iteration_stats():
            if not stats.reads_per_cell:
                continue
            combined = route_read_pattern(
                stats.reads_per_cell, ports=ports, combining=True
            )
            plain = route_read_pattern(
                stats.reads_per_cell, ports=ports, combining=False
            )
            rows.append([
                stats.label, stats.total_reads, stats.max_congestion,
                plain.cycles, combined.cycles,
            ])
        record_report(
            "butterfly_routing",
            render_table(
                ["generation", "reads", "delta", "cycles (plain)",
                 "cycles (combining)"],
                rows,
                title=(
                    f"Butterfly routing of generation read patterns "
                    f"(n = {N}, {ports}-port network)"
                ),
            ),
        )

    def test_combining_tames_broadcasts(self):
        """On the broadcast generations combining must beat plain routing
        by at least ~delta/(2 log p)."""
        ports = next_power_of_two(N * (N + 1))
        for stats in first_iteration_stats():
            if stats.max_congestion < N:  # broadcast generations only
                continue
            combined = route_read_pattern(
                stats.reads_per_cell, ports=ports, combining=True
            )
            plain = route_read_pattern(
                stats.reads_per_cell, ports=ports, combining=False
            )
            assert combined.cycles < plain.cycles, stats.label
            assert combined.cycles <= 4 * ceil_log2(ports), stats.label

    def test_low_congestion_generations_network_bound(self):
        ports = next_power_of_two(N * (N + 1))
        for stats in first_iteration_stats():
            if stats.max_congestion != 1 or not stats.reads_per_cell:
                continue
            combined = route_read_pattern(
                stats.reads_per_cell, ports=ports, combining=True
            )
            assert combined.cycles <= 4 * ceil_log2(ports), stats.label


class TestButterflyBenchmarks:
    @pytest.mark.parametrize("p", [64, 256])
    def test_broadcast_routing(self, benchmark, p):
        net = ButterflyNetwork(p, combining=True)
        reqs = [(s, 0) for s in range(p)]
        benchmark(lambda: net.route(reqs))

    def test_generation_pattern_routing(self, benchmark):
        stats = first_iteration_stats()[0]
        ports = next_power_of_two(N * (N + 1))
        benchmark(lambda: route_read_pattern(
            stats.reads_per_cell, ports=ports, combining=True
        ))


class TestNetworkComparison:
    def test_three_network_report(self, record_report):
        """Static wiring vs butterfly vs mesh on pure broadcasts -- the
        'configurability beats universal emulation' argument."""
        from repro.network.mesh import square_mesh
        from repro.util.formatting import render_table

        rows = []
        for p in (16, 64, 256):
            reqs = [(s, 0) for s in range(p)]
            bfly = ButterflyNetwork(p, combining=True).route(reqs).cycles
            mesh = square_mesh(p, combining=True).route(reqs).cycles
            plain = square_mesh(p, combining=False).route(reqs).cycles
            rows.append([p, 1, bfly, mesh, plain])
        record_report(
            "network_comparison",
            render_table(
                ["p (broadcast)", "static wiring", "butterfly+combine",
                 "mesh+combine", "mesh plain"],
                rows,
                title="Broadcast delivery cycles by communication structure",
            ),
        )
        for _p, static, bfly, mesh, plain in rows:
            assert static < bfly < mesh < plain
