"""E22 (harness) -- sparse-engine scaling: edgelist vs contracting to 5M edges.

Times the two sparse engines on a ladder of random edge lists up to one
million vertices / five million edges, plus the buffered edge-list I/O
fast path against the strict line parser:

* ``edgelist``    -- :func:`repro.hirschberg.edgelist
  .connected_components_edgelist`: every outer iteration scatters over
  the full edge array;
* ``contracting`` -- :func:`repro.hirschberg.contracting
  .connected_components_contracting`: supervertices are relabelled after
  every outer iteration and settled edges dropped, so iteration ``t``
  touches only the surviving ``(n_t, m_t)``.

Labels are verified by cross-engine agreement on every rung and against
the union-find oracle on rungs small enough for the Python-loop oracle.
The numbers are written as machine-readable JSON (``BENCH_sparse.json``
at the repo root when run as a script); the committed copy doubles as
CI's performance baseline via ``--check`` (fail when any overlapping
(engine, n, m) point's throughput drops more than 3x below it).

Run standalone (CI runs the smoke variant)::

    python benchmarks/bench_sparse_scaling.py            # full ladder
    python benchmarks/bench_sparse_scaling.py --smoke
    python benchmarks/bench_sparse_scaling.py --smoke --check BENCH_sparse.json

or via pytest (report + timed benchmark)::

    pytest benchmarks/bench_sparse_scaling.py --benchmark-disable
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without an installed package
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.graphs.io import dumps_edge_list_sparse, loads_edge_list_sparse
from repro.graphs.union_find import UnionFind
from repro.hirschberg.contracting import connected_components_contracting
from repro.hirschberg.edgelist import (
    connected_components_edgelist,
    random_edge_list,
)

#: Engines reported, in report order.
ENGINES = ("edgelist", "contracting")

#: The full ladder of (n, requested m) rungs.  The first rung is shared
#: with ``--smoke`` so the committed full report contains the baseline
#: point CI's smoke ``--check`` compares against.
FULL_POINTS: Tuple[Tuple[int, int], ...] = (
    (20_000, 60_000),
    (100_000, 300_000),
    (300_000, 1_000_000),
    (1_000_000, 5_000_000),
)
SMOKE_POINTS: Tuple[Tuple[int, int], ...] = ((20_000, 60_000),)

#: Largest n still verified against the union-find oracle (a Python loop).
ORACLE_MAX_N = 50_000

#: ``--check`` fails when throughput drops below baseline/3.
CHECK_FACTOR = 3.0

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_sparse.json"

_SOLVERS = {
    "edgelist": lambda g: connected_components_edgelist(g).labels,
    "contracting": lambda g: connected_components_contracting(g).labels,
}


def _time_best(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_point(n: int, m: int, seed: int = 0, repeats: int = 2) -> List[dict]:
    """Time both engines on one rung; verify labels before timing."""
    graph = random_edge_list(n, m, seed=seed)
    labels = {name: _SOLVERS[name](graph) for name in ENGINES}
    baseline = labels[ENGINES[0]]
    for name in ENGINES[1:]:
        assert np.array_equal(labels[name], baseline), (
            f"{name} diverged from {ENGINES[0]} at n={n}, m={m}"
        )
    if n <= ORACLE_MAX_N:
        uf = UnionFind(graph.n)
        half = graph.src.size // 2
        for u, v in zip(graph.src[:half].tolist(), graph.dst[:half].tolist()):
            uf.union(u, v)
        assert np.array_equal(baseline, uf.canonical_labels()), (
            f"engines diverged from the union-find oracle at n={n}"
        )
    results = []
    for name in ENGINES:
        seconds = _time_best(lambda: _SOLVERS[name](graph), repeats)
        results.append({
            "engine": name,
            "n": n,
            "m": graph.edge_count,
            "seconds": seconds,
            "edges_per_sec": graph.edge_count / seconds,
        })
    return results


def run_io_bench(n: int, m: int, seed: int = 0, repeats: int = 2) -> dict:
    """Buffered ``np.fromstring`` loader vs the strict line parser.

    A leading comment line forces :func:`loads_edge_list_sparse` onto its
    strict path, so both timings parse the identical document through the
    public API.
    """
    graph = random_edge_list(n, m, seed=seed)
    text = dumps_edge_list_sparse(graph)
    strict_text = "# strict-path marker\n" + text
    fast = loads_edge_list_sparse(text)
    strict = loads_edge_list_sparse(strict_text)
    assert fast.n == strict.n and np.array_equal(fast.src, strict.src)
    fast_s = _time_best(lambda: loads_edge_list_sparse(text), repeats)
    strict_s = _time_best(lambda: loads_edge_list_sparse(strict_text), repeats)
    return {
        "n": n,
        "m": graph.edge_count,
        "fast_seconds": fast_s,
        "strict_seconds": strict_s,
        "speedup": strict_s / fast_s,
    }


def build_report(points: Sequence[Tuple[int, int]], repeats: int = 2,
                 seed: int = 0) -> dict:
    """The full machine-readable benchmark document."""
    results = []
    for n, m in points:
        results.extend(run_point(n, m, seed=seed, repeats=repeats))
    largest = max(points, key=lambda nm: nm[1])
    rate = {
        (r["engine"], r["n"]): r["edges_per_sec"] for r in results
    }
    return {
        "benchmark": "sparse_scaling",
        "config": {
            "points": [list(p) for p in points],
            "repeats": repeats,
            "seed": seed,
        },
        "results": results,
        "io": run_io_bench(*min(points, key=lambda nm: nm[1]),
                           seed=seed, repeats=repeats),
        "speedups": {
            "contracting_vs_edgelist_at_largest": (
                rate[("contracting", largest[0])]
                / rate[("edgelist", largest[0])]
            ),
        },
    }


def validate_report(doc: dict) -> None:
    """Raise ``ValueError`` unless ``doc`` is a well-formed report."""
    for key in ("benchmark", "config", "results", "io", "speedups"):
        if key not in doc:
            raise ValueError(f"report missing key {key!r}")
    if doc["benchmark"] != "sparse_scaling":
        raise ValueError(f"unexpected benchmark id {doc['benchmark']!r}")
    expected = len(doc["config"]["points"]) * len(ENGINES)
    if len(doc["results"]) != expected:
        raise ValueError(
            f"expected {expected} results, got {len(doc['results'])}"
        )
    for r in doc["results"]:
        if r.get("engine") not in ENGINES:
            raise ValueError(f"unknown engine in results: {r.get('engine')!r}")
        for field in ("n", "m", "seconds", "edges_per_sec"):
            value = r.get(field)
            if not isinstance(value, (int, float)) or value <= 0:
                raise ValueError(f"bad {field}={value!r} in {r['engine']}")
    for field in ("fast_seconds", "strict_seconds", "speedup"):
        value = doc["io"].get(field)
        if not isinstance(value, (int, float)) or value <= 0:
            raise ValueError(f"bad io.{field}={value!r}")


def check_against_baseline(doc: dict, baseline: dict,
                           factor: float = CHECK_FACTOR) -> List[str]:
    """Regression guard: throughput must stay within ``factor`` of the
    committed baseline on every (engine, n, m) point both reports share.

    Returns the list of violations (empty = pass).
    """
    base = {
        (r["engine"], r["n"], r["m"]): r["edges_per_sec"]
        for r in baseline.get("results", [])
    }
    problems = []
    for r in doc["results"]:
        key = (r["engine"], r["n"], r["m"])
        if key not in base:
            continue
        if r["edges_per_sec"] * factor < base[key]:
            problems.append(
                f"{key}: {r['edges_per_sec']:.0f} edges/s is more than "
                f"{factor:.0f}x below baseline {base[key]:.0f}"
            )
    if not any((r["engine"], r["n"], r["m"]) in base for r in doc["results"]):
        problems.append("no overlapping (engine, n, m) points with baseline")
    return problems


def render(doc: dict) -> str:
    lines = [
        "Sparse-engine scaling (repeats={repeats}, seed={seed})".format(
            **doc["config"]
        ),
        f"{'engine':>12} | {'n':>9} | {'m':>9} | {'seconds':>9} | edges/sec",
        "-" * 62,
    ]
    for r in doc["results"]:
        lines.append(
            f"{r['engine']:>12} | {r['n']:>9} | {r['m']:>9} "
            f"| {r['seconds']:9.4f} | {r['edges_per_sec']:12.0f}"
        )
    io = doc["io"]
    lines.append("")
    lines.append(
        f"io (n={io['n']}, m={io['m']}): buffered {io['fast_seconds']:.4f}s "
        f"vs strict {io['strict_seconds']:.4f}s -> {io['speedup']:.1f}x"
    )
    for name, value in doc["speedups"].items():
        lines.append(f"{name}: {value:.2f}x")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="first rung only (CI-fast)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timing repeats (best-of)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--check", type=Path, default=None, metavar="BASELINE",
                        help="compare against a committed report; exit 1 on "
                             f"a >{CHECK_FACTOR:.0f}x throughput drop")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT.name})")
    args = parser.parse_args(argv)

    points = SMOKE_POINTS if args.smoke else FULL_POINTS
    doc = build_report(points, repeats=args.repeats, seed=args.seed)
    validate_report(doc)
    print(render(doc))

    args.out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\n[report saved to {args.out}]")
    json.loads(args.out.read_text())  # round-trip sanity

    if not args.smoke:
        speedup = doc["speedups"]["contracting_vs_edgelist_at_largest"]
        if speedup <= 1.0:
            print("error: contracting did not beat edgelist at the largest "
                  f"rung (speedup {speedup:.2f}x)", file=sys.stderr)
            return 1
    if args.check is not None:
        baseline = json.loads(args.check.read_text())
        problems = check_against_baseline(doc, baseline)
        if problems:
            for problem in problems:
                print(f"error: perf regression: {problem}", file=sys.stderr)
            return 1
        print(f"check ok: within {CHECK_FACTOR:.0f}x of {args.check}")
    return 0


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------

class TestSparseScaling:
    def test_report(self, record_report):
        doc = build_report([(2_000, 6_000)], repeats=1)
        validate_report(doc)
        record_report("sparse_scaling", render(doc))
        from benchmarks.conftest import RESULTS_DIR

        path = RESULTS_DIR / "sparse_scaling.json"
        path.write_text(json.dumps(doc, indent=2) + "\n")
        assert json.loads(path.read_text())["benchmark"] == "sparse_scaling"

    def test_validate_rejects_malformed(self):
        doc = build_report([(500, 1_000)], repeats=1)
        bad = dict(doc)
        del bad["io"]
        try:
            validate_report(bad)
        except ValueError:
            pass
        else:
            raise AssertionError("validate_report accepted a malformed doc")

    def test_check_guard_catches_regression(self):
        doc = build_report([(500, 1_000)], repeats=1)
        assert check_against_baseline(doc, doc) == []
        slowed = json.loads(json.dumps(doc))
        for r in slowed["results"]:
            r["edges_per_sec"] /= 10.0
        assert check_against_baseline(slowed, doc)

    def test_check_guard_requires_overlap(self):
        doc = build_report([(500, 1_000)], repeats=1)
        assert check_against_baseline(doc, {"results": []})


class TestSparseBenchmarks:
    def test_contracting(self, benchmark):
        graph = random_edge_list(5_000, 15_000, seed=0)
        benchmark(lambda: connected_components_contracting(graph))

    def test_edgelist(self, benchmark):
        graph = random_edge_list(5_000, 15_000, seed=0)
        benchmark(lambda: connected_components_edgelist(graph))


if __name__ == "__main__":
    sys.exit(main())
