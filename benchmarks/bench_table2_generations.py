"""E2 -- Table 2: generations per Hirschberg step.

Regenerates Table 2: for each ``n`` the run's generations are attributed
to their Hirschberg step and compared with the paper's per-step formulas
(step 1: 1; steps 2/3: ``1 + log n + 1 + 1``; step 4: 1; step 5:
``log n``; step 6: 1).  Expected: exact match for every ``n``, including
non-powers of two via ``ceil(log2)``.
"""

import pytest

from repro.analysis import compare_table2, render_table2
from repro.core.machine import connected_components_interpreter
from repro.core.schedule import full_schedule, generations_per_step
from repro.core.vectorized import run_vectorized
from repro.graphs.generators import random_graph

SIZES = [4, 8, 16, 32]


class TestTable2Reproduction:
    @pytest.mark.parametrize("n", SIZES)
    def test_report(self, n, record_report):
        log = run_vectorized(
            random_graph(n, 0.3, seed=n), record_access=True
        ).access_log
        rows = compare_table2(n, log)
        record_report(f"table2_n{n}", render_table2(n, rows))
        assert all(r.matches for r in rows)

    def test_non_power_of_two(self, record_report):
        n = 12
        log = connected_components_interpreter(
            random_graph(n, 0.3, seed=n)
        ).access_log
        rows = compare_table2(n, log)
        record_report(f"table2_n{n}", render_table2(n, rows))
        assert all(r.matches for r in rows)


class TestTable2Benchmarks:
    @pytest.mark.parametrize("n", [16, 64, 256])
    def test_schedule_construction(self, benchmark, n):
        benchmark(lambda: full_schedule(n))

    @pytest.mark.parametrize("n", [16, 1024])
    def test_closed_form_evaluation(self, benchmark, n):
        benchmark(lambda: generations_per_step(n))
