"""E4 -- Figure 3: access patterns for n = 4.

Figure 3 shows, for every generation at ``n = 4``, which cells are active
(shaded) and which cell each active cell reads (cells labelled by linear
index; the first four rows form D_square, the last row D_N).  This bench
regenerates the panels from the executable rules, pins the
paper-checkable facts (active counts, read targets of the static
generations), and archives the ASCII rendition.
"""

import numpy as np
import pytest

from repro.core.trace import figure3_patterns
from repro.graphs.generators import from_edges

N = 4

#: Paper-checkable facts: active cells per panel at n = 4 (Table 1 column
#: evaluated at n = 4; gens 3/7/10 are the first sub-generation).
EXPECTED_ACTIVE = {
    "gen0": 20,
    "gen1": 20,
    "gen2": 16,
    "gen3.sub0": 8,
    "gen3.sub1": 4,
    "gen4": 4,
    "gen5": 20,
    "gen6": 16,
    "gen7.sub0": 8,
    "gen7.sub1": 4,
    "gen8": 4,
    "gen9": 20,
    "gen10.sub0": 4,
    "gen10.sub1": 4,
    "gen11": 4,
}


class TestFigure3Reproduction:
    def test_active_counts(self):
        patterns = figure3_patterns(N)
        for label, expected in EXPECTED_ACTIVE.items():
            assert patterns[label].active_count == expected, label

    def test_static_read_targets(self):
        patterns = figure3_patterns(N)
        # gen1: column i reads cell i*n (the paper's P<j>[i] = <i>[0])
        g1 = patterns["gen1"].targets
        for i in range(N):
            assert (g1[:, i] == i * N).all()
        # gen2: row j reads cell n^2 + j (P<j>[i] = <n>[j])
        g2 = patterns["gen2"].targets
        for j in range(N):
            assert (g2[j, :] == N * N + j).all()
        # gen4: only column 0, reading D_N[j]
        g4 = patterns["gen4"].targets
        assert [g4[j, 0] for j in range(N)] == [16, 17, 18, 19]
        assert (g4[:, 1:] == -1).all()

    def test_reduction_strides(self):
        patterns = figure3_patterns(N)
        sub0 = patterns["gen3.sub0"].targets
        # active cells at columns 0 and 2 read their +1 neighbour
        assert sub0[0, 0] == 1 and sub0[0, 2] == 3
        sub1 = patterns["gen3.sub1"].targets
        assert sub1[0, 0] == 2 and sub1[0, 2] == -1

    def test_report(self, record_report):
        patterns = figure3_patterns(N)
        parts = [f"Figure 3 reproduction: access patterns for n = {N}",
                 "(entry = linear index read; x = active, no read; . = passive)"]
        for label, pattern in patterns.items():
            parts.append(f"\n[{label}] active cells: {pattern.active_count}")
            parts.append(pattern.render())
        record_report("fig3_access_patterns", "\n".join(parts))

    def test_concrete_graph_consistency(self):
        """The schematic panels agree with a real run's first-iteration
        patterns for all position-determined generations."""
        from repro.core.field import FieldLayout
        from repro.core.schedule import full_schedule
        from repro.core.trace import access_pattern
        from repro.core.vectorized import apply_generation

        graph = from_edges(N, [(0, 1), (2, 3)])
        layout = FieldLayout(N)
        A = graph.matrix.astype(np.int64)
        D = np.zeros((N + 1, N), dtype=np.int64)
        schematic = figure3_patterns(N)
        for sched in full_schedule(N, iterations=1):
            live = access_pattern(sched, D, layout)
            label = sched.label.replace("it0.", "")
            if sched.number not in (10, 11):  # data independent
                assert np.array_equal(live.targets, schematic[label].targets), label
            D = apply_generation(sched, D, A, layout)


class TestFigure3Benchmarks:
    @pytest.mark.parametrize("n", [4, 16, 64])
    def test_pattern_generation(self, benchmark, n):
        benchmark(lambda: figure3_patterns(n))
