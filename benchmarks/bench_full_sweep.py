"""E17 (harness) -- the combined engine sweep, archived as JSON.

Runs the declarative sweep across engines, workload families and sizes,
verifies every result against the oracle, and archives both a summary
table and the raw per-run JSON under ``benchmarks/results/`` -- the
"who wins where" overview figure for this reproduction.
"""

import pytest

from repro.analysis.sweep import (
    SweepSpec,
    dumps_records,
    run_sweep,
    summarize,
)
from repro.util.formatting import render_table


class TestFullSweep:
    def test_report(self, record_report):
        spec = SweepSpec(
            name="full",
            sizes=[8, 16, 32, 64],
            engines=["vectorized", "reference", "unionfind", "row"],
            densities=[0.1],
            workload="random",
            seeds=[0, 1, 2],
        )
        records = run_sweep(spec)
        assert all(r.correct for r in records)
        rows = summarize(records)
        record_report(
            "full_sweep",
            render_table(
                ["engine", "n", "runs", "median ms", "all correct", "generations"],
                rows,
                title=f"Engine sweep ({spec.run_count} runs, workload=random p=0.1)",
            ),
        )
        # archive raw records alongside the summary
        from benchmarks.conftest import RESULTS_DIR

        (RESULTS_DIR / "full_sweep.json").write_text(dumps_records(records))

    def test_workload_families_sweep(self, record_report):
        parts = []
        for workload in ("random", "path", "tree", "planted"):
            spec = SweepSpec(
                name=workload,
                sizes=[16, 32],
                engines=["vectorized"],
                densities=[0.15],
                workload=workload,
                seeds=[0, 1],
            )
            records = run_sweep(spec)
            assert all(r.correct for r in records), workload
            rows = [[workload] + row for row in summarize(records)]
            parts.extend(rows)
        record_report(
            "workload_sweep",
            render_table(
                ["workload", "engine", "n", "runs", "median ms",
                 "all correct", "generations"],
                parts,
                title="Workload-family sweep (all oracle-verified)",
            ),
        )


class TestSweepBenchmarks:
    @pytest.mark.parametrize("engine", ["vectorized", "reference", "unionfind"])
    def test_single_engine_sweep(self, benchmark, engine):
        spec = SweepSpec(
            name="bench", sizes=[16, 32], engines=[engine], seeds=[0]
        )
        benchmark(lambda: run_sweep(spec))
