"""E3 -- Figure 2: the 12-generation state machine.

Figure 2 specifies, per generation, the pointer operation and the data
operation the controller selects.  This bench verifies the executable
state machine against the figure's structure -- 12 numbered generations,
the reduction/jumping sub-generation loops, the per-state operations
pinned by golden traces -- and times the controller and the per-generation
rule dispatch.
"""

import numpy as np
import pytest

from repro.core.field import FieldLayout
from repro.core.schedule import full_schedule
from repro.core.state_machine import HirschbergStateMachine
from repro.core.trace import TraceRecorder
from repro.graphs.generators import from_edges
from repro.util.formatting import render_table

#: The golden K2 trace: first column of D (the C vector) after every
#: generation of the single iteration, derived by hand from Figure 2 in
#: DESIGN.md and pinned here.
K2_COLUMN0_TRACE = {
    "gen0": [0, 1],
    "it0.gen1": [0, 0],       # gen 1 clobbers column 0 with C(0) (harmless)
    "it0.gen2": [6, 0],       # (0,0) masked to INF=6; (1,0) keeps C(0)=0
    "it0.gen3.sub0": [1, 0],  # row minima arrive in column 0
    "it0.gen4": [1, 0],       # no INF left: T = [1, 0]
    "it0.gen5": [1, 1],       # T copied along rows: column 0 = T(0)
    "it0.gen6": [1, 6],       # members kept: (0,0) keeps T(0)=1, (1,0) INF
    "it0.gen7.sub0": [1, 0],
    "it0.gen8": [1, 0],       # step 3 result: T = [1, 0]
    "it0.gen9": [1, 0],       # C <- T (column 0 already is T)
    "it0.gen10.sub0": [0, 1], # jump: C(0)=C(1)=0, C(1)=C(0)=1 (pair split)
    "it0.gen11": [0, 0],      # min(C, T(C)) resolves the pair
}


class TestFigure2StateMachine:
    def test_golden_k2_trace(self, record_report):
        recorder = TraceRecorder(from_edges(2, [(0, 1)]))
        snapshots = recorder.run()
        rows = []
        for snap in snapshots:
            col0 = snap.D_after[:2, 0].tolist()
            assert col0 == K2_COLUMN0_TRACE[snap.label], snap.label
            rows.append([snap.label, snap.step, str(col0)])
        record_report(
            "fig2_k2_trace",
            render_table(
                ["generation", "step", "C column after"],
                rows,
                title="Figure 2 state machine: golden K2 trace",
            ),
        )
        assert recorder.labels.tolist() == [0, 0]

    @pytest.mark.parametrize("n", [2, 4, 8, 12, 16])
    def test_dynamic_controller_equals_static_schedule(self, n):
        dynamic = [s.label for s in HirschbergStateMachine(n)]
        static = [s.label for s in full_schedule(n)]
        assert dynamic == static

    def test_state_operations_report(self, record_report):
        """Render the per-generation pointer/data operations (the Figure 2
        table) as executed for n = 4."""
        layout = FieldLayout(4)
        rows = []
        for sched in full_schedule(4, iterations=1):
            rule = sched.rule
            probe = next(
                (i for i in range(layout.size) if rule.active(layout, i)), None
            )
            pointer = (
                rule.pointer(layout, probe, 0) if probe is not None and rule.reads
                else "-"
            )
            rows.append(
                [sched.label, sched.step, type(rule).__name__, probe, pointer]
            )
        record_report(
            "fig2_operations",
            render_table(
                ["generation", "step", "rule", "first active cell", "its pointer(d=0)"],
                rows,
                title="Figure 2 reproduction: generation rules as executed (n=4)",
            ),
        )


class TestFigure2Benchmarks:
    @pytest.mark.parametrize("n", [16, 64, 256])
    def test_controller_walk(self, benchmark, n):
        benchmark(lambda: list(HirschbergStateMachine(n)))

    def test_k2_full_trace(self, benchmark):
        graph = from_edges(2, [(0, 1)])
        benchmark(lambda: TraceRecorder(graph).run())
