"""E6 -- Section 4 / Figure 4: the FPGA synthesis result.

The paper's single synthesis data point (Altera Cyclone II EP2C70,
Quartus II)::

    N x (N+1) = 272 cells; logic elements = 23,051;
    register bits = 2,192; clock frequency = 71 MHz

We have no FPGA toolchain, so the experiment is reproduced by the
structural cost model of :mod:`repro.hardware` (mux/register/comparator
counts derived from the actual rule set, one scale constant calibrated at
n = 16 -- see DESIGN.md, "Substitutions").  Expected: exact agreement at
the calibration point; a plausible sweep shape elsewhere (quadratic cell
and LE growth, ~n^2 log n register bits, slowly degrading fmax).
"""

import pytest

from repro.hardware import (
    CellKind,
    analyze_static_sources,
    count_cells,
    estimate,
    largest_feasible_n,
    mux_input_summary,
    paper_report,
    synthesize,
)
from repro.util.formatting import render_table

SWEEP = [4, 8, 16, 32, 64]


class TestFigure4Reproduction:
    def test_calibration_point(self):
        model, paper = synthesize(16), paper_report()
        assert model.cells == paper.cells == 272
        assert model.logic_elements == paper.logic_elements == 23051
        assert model.register_bits == paper.register_bits == 2192
        assert model.fmax_mhz == paper.fmax_mhz == 71.0

    def test_cell_split_matches_figure4(self):
        """Figure 4: n^2 standard cells + n extended cells."""
        for n in SWEEP:
            counts = count_cells(n)
            assert counts[CellKind.STANDARD] == n * n
            assert counts[CellKind.EXTENDED] == n

    def test_report(self, record_report):
        paper = paper_report()
        rows = [["paper (n=16)", paper.cells, f"{paper.logic_elements:,}",
                 f"{paper.register_bits:,}", paper.fmax_mhz, "-"]]
        for n in SWEEP:
            est = synthesize(n)
            muxes = mux_input_summary(n)
            rows.append(
                [f"model (n={n})", est.cells, f"{est.logic_elements:,}",
                 f"{est.register_bits:,}", est.fmax_mhz,
                 f"{muxes[CellKind.STANDARD]}/{muxes[CellKind.EXTENDED]}"]
            )
        rows.append(["largest n on EP2C70 (model)", largest_feasible_n(),
                     "-", "-", "-", "-"])
        record_report(
            "fig4_hardware",
            render_table(
                ["design", "cells", "logic elements", "register bits",
                 "fmax MHz", "mux inputs std/ext"],
                rows,
                title="Section 4 synthesis reproduction (cost model)",
            ),
        )

    def test_sweep_shape(self):
        estimates = [estimate(n) for n in SWEEP]
        # cells quadratic
        assert [e.cells for e in estimates] == [n * (n + 1) for n in SWEEP]
        # LEs and register bits strictly increasing
        les = [e.logic_elements for e in estimates]
        regs = [e.register_bits for e in estimates]
        assert les == sorted(les) and regs == sorted(regs)
        # fmax decreasing but within 3x across the sweep
        fmax = [e.fmax_mhz for e in estimates]
        assert fmax == sorted(fmax, reverse=True)
        assert fmax[0] / fmax[-1] < 3


class TestFigure4Benchmarks:
    @pytest.mark.parametrize("n", [8, 16, 32])
    def test_cost_estimation(self, benchmark, n):
        benchmark(lambda: estimate(n))

    def test_source_analysis(self, benchmark):
        benchmark(lambda: analyze_static_sources(16))
