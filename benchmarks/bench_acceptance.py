"""E0 (meta) -- the acceptance harness as a bench: the results dashboard.

Runs the quick verdicts for every experiment (``repro.reproduce``) and
archives the dashboard as ``results/SUMMARY.txt`` -- the one-page answer
to "what does this repository reproduce, and does it still?".  The timed
part measures the full battery's latency (it is designed to stay under a
few seconds so it can gate CI).
"""

import pytest

from repro.reproduce import CHECKS, render, run_all


class TestAcceptanceDashboard:
    def test_summary_report(self, record_report):
        results = run_all()
        record_report("SUMMARY", render(results))
        failures = [r for r in results if not r.passed]
        assert not failures, [f"{r.experiment}: {r.detail}" for r in failures]

    def test_covers_every_registered_experiment(self):
        results = run_all()
        assert [r.experiment for r in results] == [c[0] for c in CHECKS]

    def test_battery_is_fast(self):
        results = run_all()
        assert sum(r.seconds for r in results) < 10.0


class TestAcceptanceBenchmarks:
    def test_full_battery(self, benchmark):
        benchmark.pedantic(
            lambda: run_all(), rounds=3, iterations=1, warmup_rounds=1
        )

    @pytest.mark.parametrize("only", ["E5", "E6", "E14"])
    def test_single_check(self, benchmark, only):
        benchmark(lambda: run_all(only=[only]))
