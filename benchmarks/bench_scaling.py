"""E9 -- engine throughput and scaling (implementation-level, beyond the
paper's tables).

Measures the wall-clock behaviour of the Python engines: the vectorised
whole-field implementation vs the Listing-1 reference vs union-find, and
the interpreter's overhead factor at small n.  Also demonstrates the
algorithmic crossover motivating the paper: naive label propagation needs
``diameter`` rounds (Theta(n) on paths) while the GCA's outer loop stays
at ``ceil(log2 n)``.
"""

import pytest

from repro.analysis import time_engines, render_timings
from repro.core.vectorized import run_vectorized
from repro.graphs.components import components_union_find
from repro.graphs.generators import path_graph, random_graph
from repro.hirschberg.reference import connected_components_reference
from repro.hirschberg.variants import label_propagation_rounds
from repro.util.formatting import render_table
from repro.util.intmath import outer_iterations


class TestScalingReport:
    def test_timings_report(self, record_report):
        parts = []
        for n in (32, 128):
            rows = time_engines(random_graph(n, 0.1, seed=n), repeats=3)
            parts.append(render_timings(rows))
        record_report("scaling_timings", "\n\n".join(parts))

    def test_rounds_crossover_report(self, record_report):
        rows = []
        for n in (8, 16, 32, 64, 128):
            g = path_graph(n)
            naive = label_propagation_rounds(g)
            # mapped onto one-handed GCA cells, each naive round needs a
            # log n reduction ladder, so its generation cost is rounds*log n
            naive_generations = naive * max(1, outer_iterations(n))
            rows.append(
                [n, naive, naive_generations, outer_iterations(n),
                 run_vectorized(g).total_generations]
            )
        record_report(
            "rounds_crossover",
            render_table(
                ["n (path)", "naive rounds", "naive generations",
                 "Hirschberg iterations", "GCA generations"],
                rows,
                title="Diameter vs log n: why the O(log^2 n) algorithm wins",
            ),
        )
        # the crossover claim: on high-diameter inputs the naive scheme's
        # generation cost overtakes Hirschberg's O(log^2 n)
        for n, naive, naive_gens, iters, gens in rows:
            assert naive == n - 1            # Theta(diameter)
            assert iters == outer_iterations(n)
            if n >= 32:
                assert naive_gens > gens


class TestEngineBenchmarks:
    @pytest.mark.parametrize("n", [32, 64, 128, 256])
    def test_vectorized(self, benchmark, n):
        graph = random_graph(n, 0.05, seed=n)
        benchmark(lambda: run_vectorized(graph))

    @pytest.mark.parametrize("n", [32, 128])
    def test_reference(self, benchmark, n):
        graph = random_graph(n, 0.05, seed=n)
        benchmark(lambda: connected_components_reference(graph))

    @pytest.mark.parametrize("n", [32, 128])
    def test_union_find_baseline(self, benchmark, n):
        graph = random_graph(n, 0.05, seed=n)
        benchmark(lambda: components_union_find(graph))

    def test_interpreter_small(self, benchmark):
        from repro.core.machine import connected_components_interpreter

        graph = random_graph(8, 0.3, seed=0)
        benchmark(lambda: connected_components_interpreter(graph))
