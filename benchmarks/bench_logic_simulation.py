"""E16 (extension) -- logic simulation on the GCA (Section 1, class [11]).

One cell per gate, pointers as input nets, ``depth`` generations to
settle a combinational circuit.  The bench verifies adders of several
widths exhaustively/selectively against Python arithmetic and reports
gate counts / depths; the timed part measures simulation throughput.
"""

import pytest

from repro.gca.logic_simulation import LogicSimulator, ripple_carry_adder
from repro.util.formatting import render_table
from repro.util.rng import as_generator


def build(bits: int):
    circuit, a, b, cin = ripple_carry_adder(bits)
    return LogicSimulator(circuit), circuit, a, b, cin


def add_with(sim, a, b, cin, bits, x, y, c=0):
    inputs = {a[i]: (x >> i) & 1 for i in range(bits)}
    inputs.update({b[i]: (y >> i) & 1 for i in range(bits)})
    inputs[cin] = c
    out = sim.run(inputs)
    return sum(out[f"sum{i}"] << i for i in range(bits)) + (out["carry_out"] << bits)


class TestLogicSimulation:
    def test_report(self, record_report):
        rows = []
        for bits in (1, 2, 4, 8, 16):
            sim, circuit, *_ = build(bits)
            rows.append([bits, circuit.size, sim.depth,
                         f"{sim.depth} generations/op"])
        record_report(
            "logic_simulation",
            render_table(
                ["adder bits", "gates", "depth", "GCA cost"],
                rows,
                title="Logic simulation on the GCA (application class demo)",
            ),
        )

    @pytest.mark.parametrize("bits", [2, 4])
    def test_exhaustive_small(self, bits):
        sim, _c, a, b, cin = build(bits)
        for x in range(2**bits):
            for y in range(2**bits):
                assert add_with(sim, a, b, cin, bits, x, y) == x + y

    def test_random_wide(self):
        bits = 12
        sim, _c, a, b, cin = build(bits)
        rng = as_generator(0)
        for _ in range(25):
            x = int(rng.integers(0, 2**bits))
            y = int(rng.integers(0, 2**bits))
            c = int(rng.integers(0, 2))
            assert add_with(sim, a, b, cin, bits, x, y, c) == x + y + c


class TestLogicBenchmarks:
    @pytest.mark.parametrize("bits", [4, 8, 16])
    def test_addition_throughput(self, benchmark, bits):
        sim, _c, a, b, cin = build(bits)
        benchmark(lambda: add_with(sim, a, b, cin, bits, 123 % 2**bits, 77 % 2**bits))
