"""E21 (harness) -- engine throughput: single vs batched vs early-exit.

Measures graphs/second for the same workload (a batch of same-size random
graphs) on four execution strategies:

* ``single``        -- loop :func:`repro.core.vectorized.run_vectorized`
  over the batch, full schedule;
* ``single_early``  -- same loop with ``early_exit=True``;
* ``batched``       -- one :class:`repro.core.batched.BatchedGCA` call,
  full schedule;
* ``batched_early`` -- one batched call with per-graph convergence
  retirement (the default batched mode).

Every mode's labels are verified against the union-find oracle, and the
batched labels are additionally required to be bit-identical to the
single-engine labels.  The numbers are written as machine-readable JSON
(``BENCH_engine.json`` at the repo root when run as a script); see
EXPERIMENTS.md ("Engines & performance") for how to read it.

Run standalone (CI runs the smoke variant)::

    python benchmarks/bench_batched_engine.py --smoke
    python benchmarks/bench_batched_engine.py --n 64 --batch 64

or via pytest (report + timed benchmark)::

    pytest benchmarks/bench_batched_engine.py --benchmark-disable
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without an installed package
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core.batched import BatchedGCA
from repro.core.vectorized import run_vectorized
from repro.graphs.components import canonical_labels
from repro.graphs.generators import random_graph

#: Modes reported by :func:`run_modes`, in report order.
MODES = ("single", "single_early", "batched", "batched_early")

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _build_instances(n: int, batch: int, p: float, seed0: int = 0):
    graphs = [random_graph(n, p, seed=seed0 + i) for i in range(batch)]
    oracles = [canonical_labels(g) for g in graphs]
    return graphs, oracles


def _time_best(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` (returns seconds)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_modes(n: int, batch: int, p: float, repeats: int = 3) -> List[dict]:
    """Time every mode on one shared workload; oracle-verify all labels."""
    graphs, oracles = _build_instances(n, batch, p)

    # correctness first: single-engine labels are the cross-check baseline
    single_labels = [run_vectorized(g).labels for g in graphs]
    for labels, oracle in zip(single_labels, oracles):
        assert np.array_equal(labels, oracle), "single engine diverged"
    for g, oracle in zip(graphs, oracles):
        res = run_vectorized(g, early_exit=True)
        assert np.array_equal(res.labels, oracle), "early exit diverged"
    for early in (False, True):
        res = BatchedGCA(graphs, early_exit=early).run()
        for slot, oracle in enumerate(oracles):
            assert np.array_equal(res.labels[slot], oracle), (
                f"batched (early_exit={early}) diverged at slot {slot}"
            )
            assert np.array_equal(res.labels[slot], single_labels[slot])

    timings = {
        "single": lambda: [run_vectorized(g) for g in graphs],
        "single_early": lambda: [
            run_vectorized(g, early_exit=True) for g in graphs
        ],
        "batched": lambda: BatchedGCA(graphs, early_exit=False).run(),
        "batched_early": lambda: BatchedGCA(graphs).run(),
    }
    results = []
    for mode in MODES:
        seconds = _time_best(timings[mode], repeats)
        results.append({
            "mode": mode,
            "n": n,
            "batch": batch,
            "seconds": seconds,
            "graphs_per_sec": batch / seconds,
        })
    return results


def build_report(n: int, batch: int, p: float, repeats: int = 3) -> dict:
    """The full machine-readable benchmark document."""
    results = run_modes(n, batch, p, repeats=repeats)
    rate = {r["mode"]: r["graphs_per_sec"] for r in results}
    return {
        "benchmark": "engine_throughput",
        "config": {"n": n, "batch": batch, "p": p, "repeats": repeats},
        "results": results,
        "speedups": {
            "single_early_vs_single": rate["single_early"] / rate["single"],
            "batched_vs_single": rate["batched"] / rate["single"],
            "batched_early_vs_single": rate["batched_early"] / rate["single"],
        },
    }


def validate_report(doc: dict) -> None:
    """Raise ``ValueError`` unless ``doc`` is a well-formed report."""
    for key in ("benchmark", "config", "results", "speedups"):
        if key not in doc:
            raise ValueError(f"report missing key {key!r}")
    if doc["benchmark"] != "engine_throughput":
        raise ValueError(f"unexpected benchmark id {doc['benchmark']!r}")
    modes = [r.get("mode") for r in doc["results"]]
    if modes != list(MODES):
        raise ValueError(f"expected modes {MODES}, got {modes}")
    for r in doc["results"]:
        for field in ("n", "batch", "seconds", "graphs_per_sec"):
            value = r.get(field)
            if not isinstance(value, (int, float)) or value <= 0:
                raise ValueError(f"bad {field}={value!r} in {r['mode']}")
    for name, value in doc["speedups"].items():
        if not isinstance(value, (int, float)) or value <= 0:
            raise ValueError(f"bad speedup {name}={value!r}")


def render(doc: dict) -> str:
    lines = [
        "Engine throughput (n={n}, batch={batch}, p={p})".format(**doc["config"]),
        f"{'mode':>14} | {'seconds':>9} | graphs/sec",
        "-" * 42,
    ]
    for r in doc["results"]:
        lines.append(
            f"{r['mode']:>14} | {r['seconds']:9.4f} | {r['graphs_per_sec']:10.1f}"
        )
    lines.append("")
    for name, value in doc["speedups"].items():
        lines.append(f"{name}: {value:.2f}x")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=64, help="graph size")
    parser.add_argument("--batch", type=int, default=64, help="graphs per batch")
    parser.add_argument("--p", type=float, default=0.1, help="edge probability")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats (best-of)")
    parser.add_argument("--smoke", action="store_true",
                        help="small fast config + throughput sanity assertion")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT.name})")
    args = parser.parse_args(argv)

    if args.smoke:
        args.n, args.batch, args.repeats = 16, 16, 2

    doc = build_report(args.n, args.batch, args.p, repeats=args.repeats)
    validate_report(doc)
    print(render(doc))

    args.out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\n[report saved to {args.out}]")
    json.loads(args.out.read_text())  # round-trip sanity

    if args.smoke:
        rate = {r["mode"]: r["graphs_per_sec"] for r in doc["results"]}
        if rate["batched"] < rate["single"]:
            print("error: batched slower than single-graph loop",
                  file=sys.stderr)
            return 1
        print("smoke ok: batched >= single throughput")
    return 0


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------

class TestEngineThroughput:
    def test_report(self, record_report):
        doc = build_report(n=32, batch=16, p=0.1, repeats=2)
        validate_report(doc)
        record_report("engine_throughput", render(doc))
        from benchmarks.conftest import RESULTS_DIR

        path = RESULTS_DIR / "engine_throughput.json"
        path.write_text(json.dumps(doc, indent=2) + "\n")
        assert json.loads(path.read_text())["benchmark"] == "engine_throughput"

    def test_validate_rejects_malformed(self):
        doc = build_report(n=8, batch=4, p=0.2, repeats=1)
        bad = dict(doc)
        del bad["speedups"]
        try:
            validate_report(bad)
        except ValueError:
            pass
        else:
            raise AssertionError("validate_report accepted a malformed doc")


class TestEngineBenchmarks:
    def test_batched_early(self, benchmark):
        graphs, _ = _build_instances(32, 16, 0.1)
        benchmark(lambda: BatchedGCA(graphs).run())

    def test_single_loop(self, benchmark):
        graphs, _ = _build_instances(32, 16, 0.1)
        benchmark(lambda: [run_vectorized(g) for g in graphs])


if __name__ == "__main__":
    sys.exit(main())
