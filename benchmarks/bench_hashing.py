"""E12 (extension) -- memory-mapping congestion: hashing vs aware mapping.

Quantifies the Section 1 discussion: an algorithm-aware module mapping is
optimal when "the neighbour relations are known beforehand"; an
unfortunate mapping serialises the broadcasts; universal hashing rescues
the unfortunate case but "the congestion can only get down to a value of
O(log p)" -- i.e. it lands between the aware optimum and the adversarial
worst case.

Expected ordering of peak module congestion: aware <= hash << adversarial,
with the naive round-robin collapsing whenever p | n.
"""

import pytest

from repro.analysis.hashing import (
    UniversalHash,
    adversarial_mapping,
    aware_mapping,
    compare_mappings,
    direct_mapping,
    mapping_congestion,
)
from repro.core.machine import connected_components_interpreter
from repro.core.vectorized import run_vectorized
from repro.graphs.generators import random_graph
from repro.util.formatting import render_table

CASES = [(8, 4), (16, 4), (16, 8)]


def measured_log(n: int):
    if n <= 8:
        return connected_components_interpreter(random_graph(n, 0.4, seed=n)).access_log
    return run_vectorized(random_graph(n, 0.4, seed=n), record_access=True).access_log


class TestHashingStudy:
    def test_report(self, record_report):
        rows = []
        for n, modules in CASES:
            log = measured_log(n)
            for prof in compare_mappings(log, n, modules):
                rows.append([
                    n, modules, prof.mapping_name, prof.peak,
                    prof.total_serialised_cycles,
                ])
        record_report(
            "hashing_congestion",
            render_table(
                ["n", "modules", "mapping", "peak module load",
                 "serialised cycles"],
                rows,
                title="Memory-mapping congestion (Section 1 discussion)",
            ),
        )

    @pytest.mark.parametrize("n,modules", CASES)
    def test_expected_ordering(self, n, modules):
        profiles = {p.mapping_name: p for p in compare_mappings(measured_log(n), n, modules)}
        aware = profiles["aware"].peak
        hashed = profiles["universal-hash (median of samples)"].peak
        adversarial = profiles["adversarial"].peak
        assert aware <= hashed
        assert hashed < adversarial

    def test_naive_round_robin_collapse(self):
        """When p divides n the naive layout puts the whole hot column on
        one module -- the 'unfortunate mapping' made concrete."""
        n, modules = 8, 4
        log = measured_log(n)
        naive = mapping_congestion(log, direct_mapping(modules), modules, "direct")
        aware = mapping_congestion(log, aware_mapping(n, modules), modules, "aware")
        assert naive.peak >= 2 * aware.peak

    def test_hash_variance_bounded(self):
        """Independent hash draws land in a narrow band above the aware
        optimum -- the distributional claim behind 'universal hashing'."""
        n, modules = 8, 4
        log = measured_log(n)
        aware = mapping_congestion(log, aware_mapping(n, modules), modules, "aware")
        peaks = [
            mapping_congestion(log, UniversalHash.sample(modules, seed=k), modules, "h").peak
            for k in range(12)
        ]
        assert min(peaks) >= aware.peak          # never beats tailor-made
        assert max(peaks) <= adversarial_peak(log, n, modules)


def adversarial_peak(log, n, modules):
    return mapping_congestion(
        log, adversarial_mapping(n * (n + 1), modules), modules, "adv"
    ).peak


class TestHashingBenchmarks:
    def test_profile_evaluation(self, benchmark):
        log = measured_log(8)
        benchmark(lambda: compare_mappings(log, 8, 4))
