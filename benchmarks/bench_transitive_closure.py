"""E13 (extension / future work) -- transitive closure on the GCA.

The paper's conclusion: "Our future work will comprise the implementation
of more elaborate PRAM algorithms."  Transitive closure is the companion
problem of Hirschberg's original STOC'76 paper; here it runs as
``ceil(log2 n)`` Boolean squarings on a two-handed n x n GCA field with a
rotation-balanced access pattern (every cell read exactly twice per
sub-generation -- zero hotspots).

The bench verifies the generation formula ``log n * (n + 1)``, the
perfectly balanced congestion, and that connected components fall out of
the closure by a row minimum; it also contrasts the closure machine's
costs with the dedicated CC machine (the closure computes strictly more
-- all-pairs reachability -- for a Theta(n / log n) factor more time).
"""

import numpy as np
import pytest

from repro.core.schedule import total_generations
from repro.extensions.transitive_closure import (
    closure_generations,
    transitive_closure_gca,
    transitive_closure_reference,
)
from repro.graphs.components import canonical_labels
from repro.graphs.generators import random_graph
from repro.util.formatting import render_table

SIZES = [4, 8, 16]


class TestClosureReproduction:
    def test_report(self, record_report):
        rows = []
        for n in SIZES:
            g = random_graph(n, 0.3, seed=n)
            res = transitive_closure_gca(g)
            peak = max(
                (s.max_congestion for s in res.access_log), default=0
            )
            rows.append([
                n, res.squarings, res.total_generations,
                closure_generations(n), peak, total_generations(n),
            ])
        record_report(
            "transitive_closure",
            render_table(
                ["n", "squarings", "closure gens", "formula log n (n+1)",
                 "peak delta", "CC gens (for contrast)"],
                rows,
                title="Transitive closure on the GCA (future-work extension)",
            ),
        )

    @pytest.mark.parametrize("n", SIZES)
    def test_against_oracle(self, n):
        g = random_graph(n, 0.3, seed=n)
        res = transitive_closure_gca(g, record_access=False)
        assert np.array_equal(res.closure, transitive_closure_reference(g))

    @pytest.mark.parametrize("n", SIZES)
    def test_generation_formula(self, n):
        g = random_graph(n, 0.3, seed=n)
        assert transitive_closure_gca(g).total_generations == closure_generations(n)

    @pytest.mark.parametrize("n", SIZES)
    def test_congestion_perfectly_balanced(self, n):
        res = transitive_closure_gca(random_graph(n, 0.3, seed=n))
        multiply_subgens = [s for s in res.access_log if ".k" in s.label]
        assert all(s.max_congestion == 2 for s in multiply_subgens)

    def test_components_fall_out(self):
        g = random_graph(12, 0.15, seed=7)
        res = transitive_closure_gca(g, record_access=False)
        assert np.array_equal(res.component_labels(), canonical_labels(g))


class TestClosureBenchmarks:
    @pytest.mark.parametrize("n", [16, 64])
    def test_gca_closure(self, benchmark, n):
        graph = random_graph(n, 0.1, seed=n)
        benchmark(lambda: transitive_closure_gca(graph, record_access=False))

    @pytest.mark.parametrize("n", [64, 256])
    def test_reference_closure(self, benchmark, n):
        graph = random_graph(n, 0.05, seed=n)
        benchmark(lambda: transitive_closure_reference(graph))
