"""E26 -- chunk-parallel label propagation vs the serial contracting engine.

Times :func:`repro.hirschberg.parallel.connected_components_parallel`
(all three variants: SV hook+shortcut, FastSV grandparent hooking,
stochastic hooking) against the serial contracting engine on the same
graphs -- n = 10^6 vertices at 5x10^6 and 2x10^7 directed-edge-pair
scales -- and records:

* **correctness** -- every variant's labels are bit-identical to the
  contracting engine's canonical minimum-index labelling (itself
  oracle-verified in the test suite); rungs small enough for the Python
  union-find oracle are additionally checked exactly;
* **speedup** -- best parallel configuration vs serial contracting.  On
  hosts with 4+ cores the best parallel run must reach 2x over serial
  at the n=10^6, m>=5x10^6 rungs (``enforced: true``); on smaller hosts
  the numbers are recorded honestly with ``enforced: false`` and the
  reason -- chunk-parallelism cannot beat serial without cores;
* **variant spread** -- per-variant round counts and wall times, inline
  and over the pre-forked shm worker pool.

The committed ``BENCH_parallel.json`` doubles as CI's baseline: the
smoke variant re-runs the shared first rung and fails on a >3x
throughput drop (``--check``).

Run standalone (CI runs the smoke variant)::

    python benchmarks/bench_parallel.py             # full ladder (slow)
    python benchmarks/bench_parallel.py --smoke
    python benchmarks/bench_parallel.py --smoke --check BENCH_parallel.json

or via pytest (report + timed benchmark)::

    pytest benchmarks/bench_parallel.py --benchmark-disable
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without an installed package
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core.parallel_kernels import VARIANTS
from repro.graphs.union_find import UnionFind
from repro.hirschberg.contracting import connected_components_contracting
from repro.hirschberg.edgelist import random_edge_list
from repro.hirschberg.parallel import connected_components_parallel

#: The rungs.  The first is shared with ``--smoke`` so the committed
#: full report contains the baseline point CI's smoke ``--check``
#: compares against; the last two are the paper-scale comparison the
#: acceptance bar is defined on (n = 10^6, m >= 5x10^6).
FULL_POINTS = (
    {"n": 50_000, "m": 200_000},
    {"n": 1_000_000, "m": 5_000_000},
    {"n": 1_000_000, "m": 20_000_000},
)
SMOKE_POINTS = (FULL_POINTS[0],)

#: Largest n still verified against the union-find oracle (Python loop).
ORACLE_MAX_N = 60_000

#: ``--check`` fails when throughput drops below baseline/3.
CHECK_FACTOR = 3.0

#: Acceptance bar: best parallel config must reach this speedup over
#: serial contracting at the n=10^6 rungs -- enforced on 4+ core hosts.
SPEEDUP_THRESHOLD = 2.0
ENFORCE_MIN_CORES = 4

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"


def _best_of(fn, repeats: int) -> Dict:
    best = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        value = fn()
        seconds = time.perf_counter() - start
        if best is None or seconds < best["seconds"]:
            best = {"seconds": seconds, "value": value}
    return best


def run_point(point: Dict, seed: int = 0, repeats: int = 1,
              pool=None) -> Dict:
    """One rung: serial contracting, then every parallel variant."""
    n, m = point["n"], point["m"]
    graph = random_edge_list(n, m, seed=seed)

    serial = _best_of(lambda: connected_components_contracting(graph),
                      repeats)
    oracle = serial["value"].labels
    oracle_checked = n <= ORACLE_MAX_N
    if oracle_checked:
        uf = UnionFind(n)
        half = graph.src.size // 2
        for u, v in zip(graph.src[:half].tolist(),
                        graph.dst[:half].tolist()):
            uf.union(u, v)
        assert np.array_equal(oracle, uf.canonical_labels()), (
            f"contracting labels diverged from union-find at n={n}"
        )

    runs: List[Dict] = []
    modes = [("inline", None)]
    if pool is not None:
        modes.append(("pooled", pool))
    for variant in VARIANTS:
        for mode, mode_pool in modes:
            timing = _best_of(
                lambda v=variant, p=mode_pool: connected_components_parallel(
                    graph, variant=v, pool=p
                ),
                repeats,
            )
            detail = timing["value"]
            assert np.array_equal(detail.labels, oracle), (
                f"{variant}/{mode} labels diverged from contracting at n={n}"
            )
            runs.append({
                "variant": variant,
                "mode": mode,
                "workers": detail.workers,
                "chunks": detail.chunks,
                "rounds": detail.rounds,
                "confirm_rounds": detail.confirm_rounds,
                "seconds": timing["seconds"],
                "edges_per_sec": m / timing["seconds"],
                "matches_contracting": True,
            })

    best = min(runs, key=lambda r: r["seconds"])
    return {
        "n": n,
        "m": m,
        "contracting_seconds": serial["seconds"],
        "contracting_edges_per_sec": m / serial["seconds"],
        "components": int(np.unique(oracle).size),
        "oracle_checked": oracle_checked,
        "variants": runs,
        "best_parallel": {
            "variant": best["variant"],
            "mode": best["mode"],
            "seconds": best["seconds"],
            "edges_per_sec": best["edges_per_sec"],
            "speedup_vs_contracting": serial["seconds"] / best["seconds"],
        },
    }


def build_report(points: Sequence[Dict], repeats: int = 1,
                 seed: int = 0, use_pool: bool = True) -> Dict:
    """The full machine-readable benchmark document."""
    cores = os.cpu_count() or 1
    enforced = cores >= ENFORCE_MIN_CORES
    pool = None
    if use_pool and cores >= 2:
        from repro.serve.executor import PoolExecutor

        pool = PoolExecutor(workers=cores, calibrate=False).start()
    try:
        results = [
            run_point(p, seed=seed, repeats=repeats, pool=pool)
            for p in points
        ]
    finally:
        if pool is not None:
            pool.shutdown()
    doc = {
        "benchmark": "parallel",
        "experiment": "E26",
        "config": {
            "points": [dict(p) for p in points],
            "repeats": repeats,
            "seed": seed,
            "variants": list(VARIANTS),
        },
        "cores": cores,
        "threshold": SPEEDUP_THRESHOLD,
        "enforced": enforced,
        "results": results,
    }
    if not enforced:
        doc["reason"] = (
            f"host has {cores} core(s); chunk-parallel speedup is not "
            f"measurable below {ENFORCE_MIN_CORES} cores, numbers "
            "recorded unenforced"
        )
    return doc


def validate_report(doc: Dict) -> None:
    """Raise ``ValueError`` unless ``doc`` is a well-formed report."""
    for key in ("benchmark", "config", "results", "enforced"):
        if key not in doc:
            raise ValueError(f"report missing key {key!r}")
    if doc["benchmark"] != "parallel":
        raise ValueError(f"unexpected benchmark id {doc['benchmark']!r}")
    if not doc["enforced"] and not doc.get("reason"):
        raise ValueError("unenforced report needs a recorded reason")
    if len(doc["results"]) != len(doc["config"]["points"]):
        raise ValueError(
            f"expected {len(doc['config']['points'])} results, "
            f"got {len(doc['results'])}"
        )
    for r in doc["results"]:
        for field in ("n", "m", "contracting_seconds"):
            value = r.get(field)
            if not isinstance(value, (int, float)) or value <= 0:
                raise ValueError(f"bad {field}={value!r} in results")
        if not r.get("variants"):
            raise ValueError(f"no variant runs at n={r.get('n')}")
        seen = {v["variant"] for v in r["variants"]}
        if seen != set(VARIANTS):
            raise ValueError(f"missing variants {set(VARIANTS) - seen}")
        for v in r["variants"]:
            if not v.get("matches_contracting"):
                raise ValueError(
                    f"unverified run {v.get('variant')} at n={r.get('n')}"
                )
            if v.get("seconds", 0) <= 0:
                raise ValueError("bad variant timing")


def check_against_baseline(doc: Dict, baseline: Dict,
                           factor: float = CHECK_FACTOR) -> List[str]:
    """Regression guard: best-parallel throughput must stay within
    ``factor`` of the committed baseline on every shared (n, m) rung.

    Returns the list of violations (empty = pass).
    """
    base = {
        (r["n"], r["m"]): r["best_parallel"]["edges_per_sec"]
        for r in baseline.get("results", [])
    }
    problems = []
    overlap = False
    for r in doc["results"]:
        key = (r["n"], r["m"])
        if key not in base:
            continue
        overlap = True
        now = r["best_parallel"]["edges_per_sec"]
        if now * factor < base[key]:
            problems.append(
                f"{key}: {now:.0f} edges/s is more than {factor:.0f}x "
                f"below baseline {base[key]:.0f}"
            )
    if not overlap:
        problems.append("no overlapping (n, m) rungs with baseline")
    return problems


def enforce_speedup(doc: Dict) -> List[str]:
    """The acceptance bar, applied only when the host can express it."""
    if not doc["enforced"]:
        return []
    problems = []
    for r in doc["results"]:
        if r["n"] < 1_000_000 or r["m"] < 5_000_000:
            continue
        speedup = r["best_parallel"]["speedup_vs_contracting"]
        if speedup < doc["threshold"]:
            problems.append(
                f"(n={r['n']}, m={r['m']}): best parallel speedup "
                f"{speedup:.2f}x below the {doc['threshold']:.1f}x bar"
            )
    return problems


def render(doc: Dict) -> str:
    lines = [
        "Chunk-parallel label propagation (repeats={repeats}, "
        "seed={seed})".format(**doc["config"]),
        "{} core(s); 2x-speedup bar {}".format(
            doc["cores"],
            "enforced" if doc["enforced"]
            else f"not enforced ({doc.get('reason', '')})",
        ),
    ]
    for r in doc["results"]:
        lines.append("")
        lines.append(
            f"n={r['n']}, m={r['m']}: contracting "
            f"{r['contracting_seconds']:.3f}s "
            f"({r['contracting_edges_per_sec']:.0f} edges/s), "
            f"{r['components']} components"
            + (" [oracle]" if r["oracle_checked"] else "")
        )
        for v in r["variants"]:
            lines.append(
                f"  {v['variant']:>10} {v['mode']:>6} x{v['workers']}: "
                f"{v['seconds']:>8.3f}s, {v['rounds']:>3} rounds "
                f"(+{v['confirm_rounds']} confirm), "
                f"{v['edges_per_sec']:>12.0f} edges/s"
            )
        best = r["best_parallel"]
        lines.append(
            f"  best: {best['variant']}/{best['mode']} at "
            f"{best['seconds']:.3f}s -- "
            f"{best['speedup_vs_contracting']:.2f}x vs contracting"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="first rung only (CI-fast)")
    parser.add_argument("--repeats", type=int, default=1,
                        help="timing repeats (best-of)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--no-pool", action="store_true",
                        help="skip the pooled runs (inline variants only)")
    parser.add_argument("--check", type=Path, default=None, metavar="BASELINE",
                        help="compare against a committed report; exit 1 on "
                             f"a >{CHECK_FACTOR:.0f}x throughput drop")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT.name})")
    args = parser.parse_args(argv)

    points = SMOKE_POINTS if args.smoke else FULL_POINTS
    doc = build_report(points, repeats=args.repeats, seed=args.seed,
                       use_pool=not args.no_pool)
    validate_report(doc)
    print(render(doc))

    args.out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\n[report saved to {args.out}]")
    json.loads(args.out.read_text())  # round-trip sanity

    failures = enforce_speedup(doc)
    for problem in failures:
        print(f"error: {problem}", file=sys.stderr)
    if failures:
        return 1
    if args.check is not None:
        baseline = json.loads(args.check.read_text())
        problems = check_against_baseline(doc, baseline)
        if problems:
            for problem in problems:
                print(f"error: perf regression: {problem}", file=sys.stderr)
            return 1
        print(f"check ok: within {CHECK_FACTOR:.0f}x of {args.check}")
    return 0


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------

class TestParallelBench:
    def test_report(self, record_report):
        doc = build_report(
            [{"n": 5_000, "m": 20_000}], repeats=1, use_pool=False,
        )
        validate_report(doc)
        render_text = render(doc)
        record_report("parallel", render_text)
        from benchmarks.conftest import RESULTS_DIR

        path = RESULTS_DIR / "parallel.json"
        path.write_text(json.dumps(doc, indent=2) + "\n")
        assert json.loads(path.read_text())["benchmark"] == "parallel"

    def test_validate_rejects_unverified(self):
        doc = build_report([{"n": 1_000, "m": 3_000}], repeats=1,
                           use_pool=False)
        bad = json.loads(json.dumps(doc))
        bad["results"][0]["variants"][0]["matches_contracting"] = False
        try:
            validate_report(bad)
        except ValueError:
            pass
        else:
            raise AssertionError("validate_report accepted a malformed doc")

    def test_check_guard_catches_regression(self):
        doc = build_report([{"n": 1_000, "m": 3_000}], repeats=1,
                           use_pool=False)
        assert check_against_baseline(doc, doc) == []
        slowed = json.loads(json.dumps(doc))
        for r in slowed["results"]:
            r["best_parallel"]["edges_per_sec"] /= 10.0
        assert check_against_baseline(slowed, doc)
        assert check_against_baseline(doc, {"results": []})

    def test_speedup_bar_only_binds_enforced_reports(self):
        doc = build_report([{"n": 1_000, "m": 3_000}], repeats=1,
                           use_pool=False)
        rigged = json.loads(json.dumps(doc))
        rigged["enforced"] = True
        rigged["results"][0].update({"n": 1_000_000, "m": 5_000_000})
        rigged["results"][0]["best_parallel"]["speedup_vs_contracting"] = 0.5
        assert enforce_speedup(rigged)
        rigged["enforced"] = False
        assert enforce_speedup(rigged) == []


class TestParallelBenchmarks:
    def test_parallel_small(self, benchmark):
        graph = random_edge_list(5_000, 15_000, seed=0)
        benchmark(lambda: connected_components_parallel(graph))


if __name__ == "__main__":
    sys.exit(main())
