"""E18 (extension) -- the work-efficient edge-list variant at scale.

The paper's dense field is Theta(n^2) by design (work-optimal for dense
graphs, and matched to the FPGA architecture).  This bench shows the same
algorithm re-expressed over edge lists running at O((n + m) log n) work:
identical per-iteration labellings (verified in the tests), hundreds of
thousands of nodes in fractions of a second, against union-find as both
the oracle and the wall-clock baseline.
"""

import time

import pytest

from repro.graphs.union_find import UnionFind
from repro.hirschberg.edgelist import (
    connected_components_edgelist,
    random_edge_list,
)
from repro.util.formatting import render_table

CASES = [
    (1_000, 2_000),
    (10_000, 20_000),
    (100_000, 150_000),
]


def union_find_labels(g):
    uf = UnionFind(g.n)
    half = g.src.size // 2
    for u, v in zip(g.src[:half].tolist(), g.dst[:half].tolist()):
        uf.union(u, v)
    return uf.canonical_labels()


class TestEdgeListScaling:
    def test_report(self, record_report):
        rows = []
        for n, m in CASES:
            g = random_edge_list(n, m, seed=n)
            start = time.perf_counter()
            res = connected_components_edgelist(g)
            hirschberg_s = time.perf_counter() - start
            start = time.perf_counter()
            oracle = union_find_labels(g)
            uf_s = time.perf_counter() - start
            assert (res.labels == oracle).all()
            rows.append([
                n, g.edge_count, res.component_count, res.iterations,
                f"{hirschberg_s * 1e3:.1f}", f"{uf_s * 1e3:.1f}",
            ])
        record_report(
            "edgelist_scaling",
            render_table(
                ["n", "edges", "components", "iterations",
                 "hirschberg ms", "union-find ms"],
                rows,
                title="Edge-list Hirschberg at scale (oracle-verified)",
            ),
        )

    def test_iteration_count_stays_logarithmic(self):
        g = random_edge_list(100_000, 120_000, seed=0)
        res = connected_components_edgelist(g)
        assert res.iterations == 17  # ceil(log2(100_000))


class TestEdgeListBenchmarks:
    @pytest.mark.parametrize("n,m", CASES)
    def test_hirschberg_edgelist(self, benchmark, n, m):
        g = random_edge_list(n, m, seed=n)
        benchmark(lambda: connected_components_edgelist(g))

    @pytest.mark.parametrize("n,m", [(10_000, 20_000)])
    def test_union_find_baseline(self, benchmark, n, m):
        g = random_edge_list(n, m, seed=n)
        benchmark(lambda: union_find_labels(g))
