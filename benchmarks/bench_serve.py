"""E23/E24/E27 (harness) -- serve throughput: micro-batching server vs
naive loop, the E24 executor sections (pool vs inline, cache-hit vs
cold), and the E27 wire section (binary socket gateway at 1000
concurrent connections).

Drives the :mod:`repro.serve` request server with the mixed open-loop
workload from the acceptance criterion (sizes 8..256 drawn with a
small-request skew, sparse edge lists with a dense fraction available)
and compares it against the naive baseline: one-request-at-a-time
``connected_components(engine="auto")`` over the identical stream.

Measurement shape: each rung is timed as a **burst** -- every request
submitted up front, then all responses collected -- which is the
saturated-throughput question a batching scheduler answers ("how fast
does the backlog drain"), and the shape that is robust on a single-CPU
runner where many closed-loop client threads just thrash the GIL.
Naive and served timings are interleaved round-by-round and the medians
compared, so machine-wide jitter hits both sides equally.

Labels from the served responses are cross-checked against the
union-find oracle on every rung before any timing is reported.  A
second, non-timed overload section pushes a Poisson arrival stream with
a tiny queue and tight deadlines through the server so the shed /
deadline-miss counters in the committed report are real numbers, not
zeros.

Two E24 sections ride along with every report:

* **pool vs inline** -- the same burst workload served once with
  ``executor="inline"`` and once with ``executor="pool"`` (the
  persistent shared-memory worker pool), interleaved round-by-round.
  The >=2.5x acceptance bar only applies on hosts with 4+ cores; the
  report records ``cores`` and ``target_enforced`` so a single-core
  runner stays honest instead of asserting a speedup the hardware
  cannot produce.
* **cache-hit vs cold** -- a sequential stream with 50% duplicate
  requests served with and without the content-addressed result cache.
  Duplicates are submitted after their originals resolve (the repeat
  traffic shape the cache exists for), and every response -- hit or
  solve -- is checked against the union-find oracle.  The >=1.8x bar
  holds on any host: a hit skips the solve entirely.

The E27 **wire** section measures the asyncio socket gateway
(:mod:`repro.serve.gateway`): the open-loop Poisson workload travels the
zero-copy binary protocol over 1000 persistent loopback connections,
reporting client-side end-to-end latency percentiles (request frame
written to final label chunk read) and sustained throughput, with every
label vector of the first round oracle-checked.  An **overhead**
subsection times sequential per-request round trips -- wire over one
warm connection vs the in-process ``submit().response()`` path against
the identical server config -- and enforces the <=2x acceptance bar on
the standard serving config (2 ms batching window, which both sides
pay).  The same round trips with the batching window off are recorded
as ``overhead_unbatched`` but not enforced: that rung isolates the raw
gateway hop (framing + asyncio + loopback TCP), which on a 1-core host
costs a few hundred microseconds against a ~150 us in-process path.

The numbers are written as machine-readable JSON (``BENCH_serve.json``
at the repo root when run as a script); the committed copy doubles as
CI's performance baseline via ``--check`` (fail when any overlapping
rung's served requests/sec -- or the wire section's sustained
requests/sec -- drops more than 3x below it).

Run standalone (CI runs the smoke variant)::

    python benchmarks/bench_serve.py            # full ladder
    python benchmarks/bench_serve.py --smoke
    python benchmarks/bench_serve.py --smoke --check BENCH_serve.json

or via pytest (report + timed benchmark)::

    pytest benchmarks/bench_serve.py --benchmark-disable
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without an installed package
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.graphs.components import components_union_find
from repro.graphs.union_find import UnionFind
from repro.hirschberg.edgelist import EdgeListGraph
from repro.serve.gateway import GatewayHandle
from repro.serve.loadgen import (
    LoadSpec,
    make_workload,
    naive_seconds,
    run_open_loop,
    run_socket_open_loop,
)
from repro.serve.protocol import (
    RESPONSE_HEADER_SIZE,
    KIND_LABELS,
    decode_response_header,
    encode_graph_request,
)
from repro.serve.server import Server, ServerConfig

#: The full ladder of (request count, seed) rungs.  The first rung is
#: shared with ``--smoke`` so the committed full report contains the
#: baseline point CI's smoke ``--check`` compares against.
FULL_POINTS: Tuple[Tuple[int, int], ...] = (
    (150, 1),
    (600, 1),
    (1000, 1),
)
SMOKE_POINTS: Tuple[Tuple[int, int], ...] = ((150, 1),)

#: Interleaved naive/served rounds per rung (median reported).
FULL_ROUNDS = 5
SMOKE_ROUNDS = 3

#: ``--check`` fails when served requests/sec drop below baseline/3.
CHECK_FACTOR = 3.0

#: The acceptance bar: served throughput over the naive sequential loop.
TARGET_SPEEDUP = 3.0

#: E24 bars.  The pool bar is only enforced on hosts with enough cores
#: to physically produce it; the cache bar holds anywhere.
POOL_TARGET_SPEEDUP = 2.5
POOL_MIN_CORES = 4
CACHE_TARGET_SPEEDUP = 1.8

#: E27: concurrent persistent connections of the wire rung (shared by
#: smoke and full so CI's smoke ``--check`` overlaps the committed
#: baseline), requests offered over them, and the offered Poisson rate.
WIRE_CONNECTIONS = 1000
WIRE_COUNT = 2000
WIRE_OFFERED_RPS = 4000.0

#: E27 acceptance bar: sequential wire round trip <= 2x the in-process
#: ``submit().response()`` round trip on the standard serving config.
WIRE_OVERHEAD_TARGET = 2.0

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_serve.json"


def _spec(count: int, seed: int) -> LoadSpec:
    """The acceptance-criterion workload: sizes 8..256, small-skewed."""
    return LoadSpec(count=count, sizes=(8, 16, 32, 64, 128, 256),
                    size_skew=1.0, edge_factor=2.0, dense_fraction=0.1,
                    seed=seed)


def _oracle(graph) -> np.ndarray:
    if isinstance(graph, EdgeListGraph):
        uf = UnionFind(graph.n)
        for u, v in zip(graph.src.tolist(), graph.dst.tolist()):
            uf.union(u, v)
        return uf.canonical_labels()
    return components_union_find(graph)


def _serve_burst(graphs, config: ServerConfig):
    """One burst round: submit everything, drain, return timing + metrics."""
    with Server(config) as server:
        start = time.perf_counter()
        handles = [server.submit(g) for g in graphs]
        responses = [h.response(timeout=300.0) for h in handles]
        seconds = time.perf_counter() - start
        snapshot = server.metrics_snapshot()
    return seconds, responses, snapshot


def run_point(count: int, seed: int, rounds: int) -> dict:
    """Interleaved naive/served medians for one rung, oracle-verified."""
    graphs = make_workload(_spec(count, seed))
    config = ServerConfig(workers=1, max_wait=0.002)

    naive_s: List[float] = []
    serve_s: List[float] = []
    ratios: List[float] = []
    responses = snapshot = None
    for _ in range(rounds):
        naive = naive_seconds(graphs)
        seconds, responses, snapshot = _serve_burst(graphs, config)
        naive_s.append(naive)
        serve_s.append(seconds)
        ratios.append(naive / seconds)

    mismatches = 0
    for g, r in zip(graphs, responses):
        assert r.ok, f"request failed under benign load: {r.status}"
        if not np.array_equal(r.labels, _oracle(g)):
            mismatches += 1
    assert mismatches == 0, f"{mismatches} label mismatches vs union-find"

    naive_med = statistics.median(naive_s)
    serve_med = statistics.median(serve_s)
    latency = snapshot["latency"]
    occupancy = snapshot["batch_occupancy"]
    return {
        "count": count,
        "seed": seed,
        "rounds": rounds,
        "naive_seconds": naive_med,
        "serve_seconds": serve_med,
        # median of per-round ratios, not ratio of medians: each round
        # pairs a naive and a served timing taken back to back, so
        # machine-wide drift across rounds cancels inside each ratio
        "speedup": statistics.median(ratios),
        "requests_per_sec": count / serve_med,
        "p50_ms": latency["p50_ms"],
        "p95_ms": latency["p95_ms"],
        "p99_ms": latency["p99_ms"],
        "batches": snapshot["counters"]["batches"],
        "mean_occupancy": occupancy["mean"],
    }


def run_overload(count: int = 120, seed: int = 7) -> dict:
    """Open-loop Poisson overload: tiny queue, tight deadlines, shedding.

    Not a timing rung -- this exists so the committed report carries
    genuinely exercised shed / deadline-miss / timeout counters.
    """
    graphs = make_workload(_spec(count, seed))
    config = ServerConfig(workers=1, max_wait=0.002, max_queue=8,
                          admission="shed")
    with Server(config) as server:
        handles = run_open_loop(server, graphs, offered_rps=50_000.0,
                                deadline=0.001, seed=seed)
        responses = [h.response(timeout=60.0) for h in handles]
        snapshot = server.metrics_snapshot()
    counters = snapshot["counters"]
    return {
        "offered": count,
        "ok": sum(r.ok for r in responses),
        "shed": counters["shed"],
        "timed_out": counters["timed_out"],
        "deadline_misses": counters["deadline_misses"],
    }


def run_pool_section(rounds: int, count: int = 72, seed: int = 3) -> dict:
    """E24: the same burst served inline and on the process pool.

    The workload is batch-heavy (uniform 128/256-node draws, 30% dense)
    so flushed batches clear the measured dispatch-overhead break-even
    and actually ride the pool.  Interleaved like the main rungs; the
    pool responses are oracle-checked each round.
    """
    spec = LoadSpec(count=count, sizes=(128, 256), size_skew=0.0,
                    edge_factor=4.0, dense_fraction=0.3, seed=seed)
    graphs = make_workload(spec)
    inline_cfg = ServerConfig(workers=2, max_wait=0.005)
    pool_cfg = ServerConfig(workers=2, max_wait=0.005, executor="pool")

    inline_s: List[float] = []
    pool_s: List[float] = []
    ratios: List[float] = []
    snapshot = None
    for _ in range(rounds):
        inline_sec, _, _ = _serve_burst(graphs, inline_cfg)
        pool_sec, responses, snapshot = _serve_burst(graphs, pool_cfg)
        for g, r in zip(graphs, responses):
            assert r.ok, f"pool request failed: {r.status}"
            assert np.array_equal(r.labels, _oracle(g)), "pool mislabeled"
        inline_s.append(inline_sec)
        pool_s.append(pool_sec)
        ratios.append(inline_sec / pool_sec)

    cores = os.cpu_count() or 1
    gauges = snapshot["gauges"]
    return {
        "count": count,
        "seed": seed,
        "rounds": rounds,
        "cores": cores,
        "inline_seconds": statistics.median(inline_s),
        "pool_seconds": statistics.median(pool_s),
        "speedup": statistics.median(ratios),
        "pool_restarts": gauges["pool_restarts"],
        "dispatch_overhead_s": gauges["pool_dispatch_overhead_s"],
        "target_speedup": POOL_TARGET_SPEEDUP,
        # a 1-core runner cannot speed anything up by adding processes;
        # record the measurement, only enforce the bar with real cores
        "target_enforced": cores >= POOL_MIN_CORES,
    }


def run_cache_section(rounds: int, count: int = 24, seed: int = 2) -> dict:
    """E24: 50%-duplicate sequential stream, cold vs cached.

    Requests are submitted one at a time so each duplicate arrives after
    its original resolved -- repeat traffic, the shape the
    content-addressed cache exists for.  Solve-dominated sizes (32k-node
    sparse graphs) make the measurement about the solve a hit skips, not
    the request plumbing; duplicates re-submit the same immutable graph
    object, so the hit probe rides the memoised fingerprint.
    """
    spec = LoadSpec(count=count, sizes=(32768,), size_skew=0.0,
                    edge_factor=4.0, duplicate_fraction=0.5, seed=seed)
    graphs = make_workload(spec)
    cold_cfg = ServerConfig(workers=1, max_wait=0.0)
    cached_cfg = ServerConfig(workers=1, max_wait=0.0,
                              cache_bytes=64 << 20)

    def sequential(config: ServerConfig):
        with Server(config) as server:
            start = time.perf_counter()
            responses = [server.submit(g).response(timeout=300.0)
                         for g in graphs]
            seconds = time.perf_counter() - start
            snapshot = server.metrics_snapshot()
        return seconds, responses, snapshot

    cold_s: List[float] = []
    cached_s: List[float] = []
    ratios: List[float] = []
    snapshot = None
    for _ in range(rounds):
        cold_sec, _, _ = sequential(cold_cfg)
        cached_sec, responses, snapshot = sequential(cached_cfg)
        for g, r in zip(graphs, responses):
            assert r.ok, f"cached request failed: {r.status}"
            assert np.array_equal(r.labels, _oracle(g)), (
                "cache served wrong labels"
            )
        cold_s.append(cold_sec)
        cached_s.append(cached_sec)
        ratios.append(cold_sec / cached_sec)

    cache = snapshot["cache"]
    assert cache["hits"] > 0, "duplicate stream produced no cache hits"
    return {
        "count": count,
        "seed": seed,
        "rounds": rounds,
        "duplicate_fraction": 0.5,
        "cold_seconds": statistics.median(cold_s),
        "cached_seconds": statistics.median(cached_s),
        "speedup": statistics.median(ratios),
        "hits": cache["hits"],
        "misses": cache["misses"],
        "target_speedup": CACHE_TARGET_SPEEDUP,
    }


def _roundtrip_overhead(max_wait: float, graphs, frames,
                        rounds: int) -> dict:
    """Median per-request seconds, in-process vs wire, one config.

    Sequential round trips: the in-process side is ``submit()`` +
    ``response()``; the wire side is one warm persistent connection,
    frame written, full response read.  Interleaved per round so drift
    cancels.
    """
    import socket

    inproc_s: List[float] = []
    wire_s: List[float] = []
    with Server(ServerConfig(workers=1, max_wait=max_wait)) as server:
        with GatewayHandle(server) as gateway:
            server.submit(graphs[0]).response(timeout=30.0)  # warm
            sock = socket.create_connection(gateway.address)
            stream = sock.makefile("rwb")

            def wire_roundtrip(frame: bytes) -> None:
                stream.write(frame)
                stream.flush()
                while True:
                    header = decode_response_header(
                        stream.read(RESPONSE_HEADER_SIZE))
                    stream.read(header.payload_bytes)
                    if header.kind != KIND_LABELS or header.final:
                        return

            wire_roundtrip(frames[0])  # warm
            for _ in range(rounds):
                start = time.perf_counter()
                for g in graphs:
                    server.submit(g).response(timeout=30.0)
                inproc_s.append(
                    (time.perf_counter() - start) / len(graphs))
                start = time.perf_counter()
                for frame in frames:
                    wire_roundtrip(frame)
                wire_s.append((time.perf_counter() - start) / len(frames))
            sock.close()
    inproc = statistics.median(inproc_s)
    wire = statistics.median(wire_s)
    return {
        "requests": len(graphs),
        "rounds": rounds,
        "max_wait": max_wait,
        "inproc_ms_per_request": round(inproc * 1e3, 4),
        "wire_ms_per_request": round(wire * 1e3, 4),
        "ratio": round(wire / inproc, 4),
    }


def run_wire_section(rounds: int, connections: int = WIRE_CONNECTIONS,
                     count: int = WIRE_COUNT,
                     offered_rps: float = WIRE_OFFERED_RPS,
                     seed: int = 9) -> dict:
    """E27: the binary socket gateway under open-loop load.

    ``count`` requests arrive on a Poisson process at ``offered_rps``,
    round-robined over ``connections`` persistent loopback connections
    (pipelined -- every connection carries multiple in-flight
    requests).  Client-side end-to-end latency (frame written to final
    label chunk read) and sustained throughput are the reported
    numbers; the first round's label vectors are all oracle-checked.
    The overhead subsections compare sequential per-request round
    trips against the in-process submit path (see module docstring).
    """
    spec = LoadSpec(count=count, sizes=(8, 16, 32, 64, 128, 256),
                    size_skew=1.0, edge_factor=2.0, dense_fraction=0.0,
                    seed=seed)
    graphs = make_workload(spec)
    config = ServerConfig(workers=2, max_wait=0.002)

    seconds_r: List[float] = []
    p50_r: List[float] = []
    p99_r: List[float] = []
    ok = mismatches = 0
    wire_snapshot = None
    for rnd in range(rounds):
        verify = rnd == 0
        with Server(config) as server:
            with GatewayHandle(server) as gateway:
                start = time.perf_counter()
                results = run_socket_open_loop(
                    gateway.address, graphs, offered_rps=offered_rps,
                    connections=connections, seed=seed,
                    collect_labels=verify,
                )
                seconds = time.perf_counter() - start
                snapshot = server.metrics_snapshot()
        answered = [r for r in results if r is not None]
        oks = [r for r in answered if r.ok]
        assert len(oks) == count, (
            f"wire round {rnd}: {len(oks)}/{count} ok "
            f"({len(answered)} answered)"
        )
        if verify:
            ok = len(oks)
            for r in oks:
                if not np.array_equal(r.labels,
                                      _oracle(graphs[r.request_id])):
                    mismatches += 1
            assert mismatches == 0, (
                f"{mismatches} wire label vectors diverged from union-find"
            )
            wire_snapshot = snapshot["wire"]
        lat_ms = np.array([r.latency_seconds for r in oks]) * 1e3
        seconds_r.append(seconds)
        p50_r.append(float(np.percentile(lat_ms, 50)))
        p99_r.append(float(np.percentile(lat_ms, 99)))

    overhead_graphs = make_workload(LoadSpec(
        count=min(300, count), sizes=(8, 16, 32, 64), seed=seed + 1))
    overhead_frames = [encode_graph_request(g, request_id=i)
                       for i, g in enumerate(overhead_graphs)]
    overhead = _roundtrip_overhead(0.002, overhead_graphs,
                                   overhead_frames, rounds)
    overhead["target_ratio"] = WIRE_OVERHEAD_TARGET
    overhead["target_enforced"] = True
    # the raw gateway hop with the batching window off: recorded for
    # honesty, not enforced -- it isolates framing + asyncio + TCP
    # against a ~0.15 ms in-process path
    unbatched = _roundtrip_overhead(0.0, overhead_graphs,
                                    overhead_frames, rounds)
    unbatched["target_enforced"] = False

    seconds_med = statistics.median(seconds_r)
    return {
        "connections": connections,
        "count": count,
        "offered_rps": offered_rps,
        "rounds": rounds,
        "seed": seed,
        "seconds": seconds_med,
        "sustained_rps": count / seconds_med,
        "p50_ms": round(statistics.median(p50_r), 4),
        "p99_ms": round(statistics.median(p99_r), 4),
        "ok": ok,
        "label_mismatches": mismatches,
        "bytes_in": wire_snapshot["bytes_in"],
        "bytes_out": wire_snapshot["bytes_out"],
        "accept_to_admit_p99_ms":
            wire_snapshot["accept_to_admit"]["p99_ms"],
        "overhead": overhead,
        "overhead_unbatched": unbatched,
    }


def build_report(points: Sequence[Tuple[int, int]], rounds: int,
                 wire_connections: int = WIRE_CONNECTIONS,
                 wire_count: int = WIRE_COUNT,
                 wire_offered_rps: float = WIRE_OFFERED_RPS) -> dict:
    """The full machine-readable benchmark document."""
    results = [run_point(count, seed, rounds) for count, seed in points]
    largest = max(results, key=lambda r: r["count"])
    pool = run_pool_section(rounds)
    cache = run_cache_section(rounds)
    wire = run_wire_section(rounds, connections=wire_connections,
                            count=wire_count,
                            offered_rps=wire_offered_rps)
    return {
        "benchmark": "serve",
        "config": {
            "points": [list(p) for p in points],
            "rounds": rounds,
            "sizes": [8, 16, 32, 64, 128, 256],
            "dense_fraction": 0.1,
        },
        "results": results,
        "overload": run_overload(),
        "pool": pool,
        "cache": cache,
        "wire": wire,
        "speedups": {
            "serve_vs_naive_at_largest": largest["speedup"],
            "pool_vs_inline": pool["speedup"],
            "cache_hit_vs_cold": cache["speedup"],
        },
    }


def validate_report(doc: dict) -> None:
    """Raise ``ValueError`` unless ``doc`` is a well-formed report."""
    for key in ("benchmark", "config", "results", "overload", "pool",
                "cache", "wire", "speedups"):
        if key not in doc:
            raise ValueError(f"report missing key {key!r}")
    if doc["benchmark"] != "serve":
        raise ValueError(f"unexpected benchmark id {doc['benchmark']!r}")
    if len(doc["results"]) != len(doc["config"]["points"]):
        raise ValueError(
            f"expected {len(doc['config']['points'])} results, "
            f"got {len(doc['results'])}"
        )
    for r in doc["results"]:
        for field in ("count", "naive_seconds", "serve_seconds", "speedup",
                      "requests_per_sec"):
            value = r.get(field)
            if not isinstance(value, (int, float)) or value <= 0:
                raise ValueError(f"bad {field}={value!r} in rung {r}")
    overload = doc["overload"]
    for field in ("offered", "ok", "shed", "timed_out", "deadline_misses"):
        value = overload.get(field)
        if not isinstance(value, int) or value < 0:
            raise ValueError(f"bad overload.{field}={value!r}")
    if overload["shed"] + overload["timed_out"] == 0:
        raise ValueError("overload section exercised no backpressure path")
    pool = doc["pool"]
    for field in ("inline_seconds", "pool_seconds", "speedup"):
        value = pool.get(field)
        if not isinstance(value, (int, float)) or value <= 0:
            raise ValueError(f"bad pool.{field}={value!r}")
    if not isinstance(pool.get("cores"), int) or pool["cores"] < 1:
        raise ValueError(f"bad pool.cores={pool.get('cores')!r}")
    cache = doc["cache"]
    for field in ("cold_seconds", "cached_seconds", "speedup"):
        value = cache.get(field)
        if not isinstance(value, (int, float)) or value <= 0:
            raise ValueError(f"bad cache.{field}={value!r}")
    if not isinstance(cache.get("hits"), int) or cache["hits"] <= 0:
        raise ValueError("cache section recorded no hits")
    wire = doc["wire"]
    for field in ("connections", "count", "sustained_rps",
                  "p50_ms", "p99_ms"):
        value = wire.get(field)
        if not isinstance(value, (int, float)) or value <= 0:
            raise ValueError(f"bad wire.{field}={value!r}")
    if wire.get("label_mismatches") != 0:
        raise ValueError(
            f"wire section carries label mismatches: "
            f"{wire.get('label_mismatches')!r}"
        )
    overhead = wire.get("overhead", {})
    for field in ("inproc_ms_per_request", "wire_ms_per_request", "ratio"):
        value = overhead.get(field)
        if not isinstance(value, (int, float)) or value <= 0:
            raise ValueError(f"bad wire.overhead.{field}={value!r}")


def check_against_baseline(doc: dict, baseline: dict,
                           factor: float = CHECK_FACTOR) -> List[str]:
    """Regression guard: served requests/sec must stay within ``factor``
    of the committed baseline on every (count, seed) rung both share.

    Returns the list of violations (empty = pass).
    """
    base = {
        (r["count"], r["seed"]): r["requests_per_sec"]
        for r in baseline.get("results", [])
    }
    problems = []
    overlap = False
    for r in doc["results"]:
        key = (r["count"], r["seed"])
        if key not in base:
            continue
        overlap = True
        if r["requests_per_sec"] * factor < base[key]:
            problems.append(
                f"{key}: {r['requests_per_sec']:.0f} req/s is more than "
                f"{factor:.0f}x below baseline {base[key]:.0f}"
            )
    if not overlap:
        problems.append("no overlapping (count, seed) rungs with baseline")
    wire, base_wire = doc.get("wire"), baseline.get("wire")
    if wire and base_wire and (
        (wire["connections"], wire["count"])
        == (base_wire["connections"], base_wire["count"])
    ):
        if wire["sustained_rps"] * factor < base_wire["sustained_rps"]:
            problems.append(
                f"wire: {wire['sustained_rps']:.0f} req/s sustained is "
                f"more than {factor:.0f}x below baseline "
                f"{base_wire['sustained_rps']:.0f}"
            )
    return problems


def render(doc: dict) -> str:
    lines = [
        "Serve throughput: micro-batching server vs naive sequential loop "
        "(rounds={rounds}, median)".format(**doc["config"]),
        f"{'count':>6} | {'naive ms':>9} | {'serve ms':>9} | {'speedup':>7} "
        f"| {'req/s':>7} | {'p95 ms':>7} | occupancy",
        "-" * 72,
    ]
    for r in doc["results"]:
        lines.append(
            f"{r['count']:>6} | {r['naive_seconds'] * 1e3:>9.1f} "
            f"| {r['serve_seconds'] * 1e3:>9.1f} | {r['speedup']:>6.2f}x "
            f"| {r['requests_per_sec']:>7.0f} | {r['p95_ms']:>7.2f} "
            f"| {r['mean_occupancy']}"
        )
    o = doc["overload"]
    lines.append("")
    lines.append(
        f"overload ({o['offered']} offered, queue=8, deadline=1ms): "
        f"{o['ok']} ok, {o['shed']} shed, {o['timed_out']} timed out, "
        f"{o['deadline_misses']} deadline misses"
    )
    p = doc["pool"]
    enforced = "enforced" if p["target_enforced"] else (
        f"recorded only, needs {POOL_MIN_CORES}+ cores")
    lines.append(
        f"pool vs inline ({p['count']} requests, {p['cores']} cores): "
        f"{p['inline_seconds'] * 1e3:.1f} ms -> "
        f"{p['pool_seconds'] * 1e3:.1f} ms, {p['speedup']:.2f}x "
        f"(bar {p['target_speedup']:.1f}x {enforced})"
    )
    c = doc["cache"]
    lines.append(
        f"cache at {c['duplicate_fraction']:.0%} duplicates "
        f"({c['count']} requests, {c['hits']} hits): "
        f"{c['cold_seconds'] * 1e3:.1f} ms -> "
        f"{c['cached_seconds'] * 1e3:.1f} ms, {c['speedup']:.2f}x "
        f"(bar {c['target_speedup']:.1f}x)"
    )
    w = doc["wire"]
    lines.append(
        f"wire ({w['count']} requests over {w['connections']} "
        f"connections at {w['offered_rps']:.0f} rps offered): "
        f"{w['sustained_rps']:.0f} req/s sustained, "
        f"p50 {w['p50_ms']} ms, p99 {w['p99_ms']} ms end to end"
    )
    oh, ohu = w["overhead"], w["overhead_unbatched"]
    lines.append(
        f"wire overhead per small request: {oh['wire_ms_per_request']} ms "
        f"vs {oh['inproc_ms_per_request']} ms in-process = "
        f"{oh['ratio']:.2f}x (bar {oh['target_ratio']:.1f}x; raw hop "
        f"with batching off: {ohu['ratio']:.2f}x, recorded only)"
    )
    for name, value in doc["speedups"].items():
        lines.append(f"{name}: {value:.2f}x")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="first rung only, fewer rounds (CI-fast)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="interleaved rounds per rung (default "
                             f"{FULL_ROUNDS}, smoke {SMOKE_ROUNDS})")
    parser.add_argument("--check", type=Path, default=None, metavar="BASELINE",
                        help="compare against a committed report; exit 1 on "
                             f"a >{CHECK_FACTOR:.0f}x throughput drop")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT.name})")
    args = parser.parse_args(argv)

    points = SMOKE_POINTS if args.smoke else FULL_POINTS
    rounds = args.rounds or (SMOKE_ROUNDS if args.smoke else FULL_ROUNDS)
    doc = build_report(points, rounds=rounds)
    validate_report(doc)
    print(render(doc))

    args.out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\n[report saved to {args.out}]")
    json.loads(args.out.read_text())  # round-trip sanity

    if not args.smoke:
        speedup = doc["speedups"]["serve_vs_naive_at_largest"]
        if speedup < TARGET_SPEEDUP:
            print(f"error: served speedup {speedup:.2f}x is below the "
                  f"{TARGET_SPEEDUP:.0f}x acceptance bar", file=sys.stderr)
            return 1
        pool = doc["pool"]
        if pool["target_enforced"] and pool["speedup"] < POOL_TARGET_SPEEDUP:
            print(f"error: pool speedup {pool['speedup']:.2f}x is below "
                  f"the {POOL_TARGET_SPEEDUP:.1f}x bar on "
                  f"{pool['cores']} cores", file=sys.stderr)
            return 1
        cache = doc["cache"]
        if cache["speedup"] < CACHE_TARGET_SPEEDUP:
            print(f"error: cache-hit speedup {cache['speedup']:.2f}x is "
                  f"below the {CACHE_TARGET_SPEEDUP:.1f}x bar",
                  file=sys.stderr)
            return 1
        overhead = doc["wire"]["overhead"]
        if overhead["ratio"] > WIRE_OVERHEAD_TARGET:
            print(f"error: wire overhead {overhead['ratio']:.2f}x is "
                  f"above the {WIRE_OVERHEAD_TARGET:.1f}x bar",
                  file=sys.stderr)
            return 1
    if args.check is not None:
        baseline = json.loads(args.check.read_text())
        problems = check_against_baseline(doc, baseline)
        if problems:
            for problem in problems:
                print(f"error: perf regression: {problem}", file=sys.stderr)
            return 1
        print(f"check ok: within {CHECK_FACTOR:.0f}x of {args.check}")
    return 0


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------

#: Small wire rung for the pytest entry points: the report shape is
#: identical, only the scale differs (tier-1 must stay fast).
_TEST_WIRE = {"wire_connections": 16, "wire_count": 48,
              "wire_offered_rps": 2000.0}


class TestServe:
    def test_report(self, record_report):
        doc = build_report([(40, 1)], rounds=1, **_TEST_WIRE)
        validate_report(doc)
        record_report("serve", render(doc))
        from benchmarks.conftest import RESULTS_DIR

        path = RESULTS_DIR / "serve.json"
        path.write_text(json.dumps(doc, indent=2) + "\n")
        assert json.loads(path.read_text())["benchmark"] == "serve"

    def test_validate_rejects_malformed(self):
        doc = build_report([(20, 1)], rounds=1, **_TEST_WIRE)
        bad = dict(doc)
        del bad["overload"]
        try:
            validate_report(bad)
        except ValueError:
            pass
        else:
            raise AssertionError("validate_report accepted a malformed doc")

    def test_check_guard_catches_regression(self):
        doc = build_report([(20, 1)], rounds=1, **_TEST_WIRE)
        assert check_against_baseline(doc, doc) == []
        slowed = json.loads(json.dumps(doc))
        for r in slowed["results"]:
            r["requests_per_sec"] /= 10.0
        assert check_against_baseline(slowed, doc)

    def test_check_guard_requires_overlap(self):
        doc = build_report([(20, 1)], rounds=1, **_TEST_WIRE)
        assert check_against_baseline(doc, {"results": []})

    def test_check_guard_catches_wire_regression(self):
        doc = build_report([(20, 1)], rounds=1, **_TEST_WIRE)
        slowed = json.loads(json.dumps(doc))
        slowed["wire"]["sustained_rps"] /= 10.0
        problems = check_against_baseline(slowed, doc)
        assert any("wire" in p for p in problems)


class TestServeBenchmarks:
    def test_burst(self, benchmark):
        graphs = make_workload(_spec(30, 1))
        config = ServerConfig(workers=1, max_wait=0.002)
        benchmark(lambda: _serve_burst(graphs, config))


if __name__ == "__main__":
    sys.exit(main())
