"""Shared infrastructure for the benchmark harness.

Every bench regenerates one of the paper's tables/figures.  Besides the
pytest-benchmark timings, each bench renders its paper-vs-measured report
through :func:`record_report`, which prints it and archives it under
``benchmarks/results/`` so the artefacts survive the run (EXPERIMENTS.md
indexes them).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record_report():
    """Return a callable ``record(name, text)`` that persists a report."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def record(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[report saved to {path}]")

    return record
